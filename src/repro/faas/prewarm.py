"""Sandbox-lifecycle policies over a memory-capacity model.

The streaming replayer (:mod:`repro.traces.replay`) makes a question
meaningful that the small-trace pool studies couldn't ask: **given a
host memory budget, which sandboxes should stay resident?**  This
module answers it with pluggable policies over a snapshot-tiering
capacity model:

* a **resident** (HORSE-paused) sandbox resumes in ~132 ns — the
  paper's pausable fast path (:class:`repro.hypervisor.costs.CostModel`
  ``fast_fixed + p2sm_merge(1) + coalesced_update``);
* an evicted-but-snapshotted sandbox restores in ~1300 µs (FaaSnap-style,
  "How Low Can You Go");
* a never-seen function pays the full ~1.5 s cold boot (first touch
  captures the snapshot).

Policies decide, after each invocation, *when to unload* and *when to
pre-load* the sandbox:

* :class:`NoKeepAlive` — unload immediately; every re-arrival restores.
* :class:`FixedWindow` — classic fixed keep-alive (the OpenWhisk 10-min
  idiom, window configurable).
* :class:`HybridHistogram` — the Serverless-in-the-Wild (ATC'20)
  policy: a per-function idle-time histogram picks a prewarm window
  (head percentile, sandbox unloaded meanwhile) and a keep-alive (tail
  percentile), with out-of-bounds fallback to a fixed default and a
  pattern-change reset after consecutive cold misses.  Timer-triggered
  functions (~29 % of Azure's population) are its killer app: an
  hour-period function stays resident ~5 % of the time yet still hits
  the HORSE tier on every tick.

Memory pressure: resident sandboxes occupy an LRU; loads beyond the
budget evict the least-recently-used *idle* sandbox.  A sandbox with an
invocation in flight is **never** evicted (asserted by tests and a
recorded-violation guard); arrival-driven loads may overcommit the
budget rather than fail, speculative prewarm loads fail instead.

Determinism: cells partition functions by ``index % groups`` (a model
parameter); workers (``shards``) only distribute cells, so same seed ⇒
byte-identical output for any worker count — PR 7's contract.
"""

from __future__ import annotations

import heapq
import math
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.faas.autoscaler import PoolTargetTracker
from repro.hypervisor.costs import CostModel, cost_model_for
from repro.policyreg import PolicyRegistry
from repro.sim.units import SECOND, to_microseconds
from repro.traces.replay import ReplayConfig, ReplayStats, merged_stream

__all__ = [
    "IdleHistogram",
    "PolicyDecision",
    "PrewarmPolicy",
    "NoKeepAlive",
    "FixedWindow",
    "HybridHistogram",
    "PREWARM_POLICIES",
    "make_policy",
    "prewarm_policy_kinds",
    "register_prewarm_policy",
    "set_default_prewarm_policy",
    "default_prewarm_policy",
    "PrewarmConfig",
    "CellStats",
    "PrewarmResult",
    "run_cell",
    "run_replay",
    "render_replay",
    "counter_percentile_ns",
]


# ---------------------------------------------------------------------------
# Idle-time histogram (Serverless in the Wild, §3.3)
# ---------------------------------------------------------------------------


class IdleHistogram:
    """Fixed-width idle-gap histogram with an out-of-bounds bucket.

    ATC'20 uses 1-minute bins over a 4-hour range; we default to 1-minute
    bins over 2 hours (120 bins), enough for this replayer's period range
    and cheap to scan per decision.
    """

    __slots__ = ("bin_width_ns", "counts", "oob", "total")

    def __init__(self, bin_width_ns: int = 60 * SECOND, bins: int = 120) -> None:
        if bin_width_ns <= 0:
            raise ValueError(f"bin width must be positive, got {bin_width_ns}")
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        self.bin_width_ns = bin_width_ns
        self.counts = [0] * bins
        self.oob = 0
        self.total = 0

    def observe(self, gap_ns: int) -> None:
        if gap_ns < 0:
            raise ValueError(f"negative idle gap {gap_ns}")
        index = gap_ns // self.bin_width_ns
        if index >= len(self.counts):
            self.oob += 1
        else:
            self.counts[index] += 1
        self.total += 1

    def oob_fraction(self) -> float:
        return self.oob / self.total if self.total else 0.0

    def percentile_bin(self, pct: float) -> Optional[int]:
        """Nearest-rank bin index; ``None`` when the rank falls OOB."""
        if self.total == 0:
            return None
        rank = max(1, math.ceil(pct / 100.0 * self.total))
        seen = 0
        for index, count in enumerate(self.counts):
            if count:
                seen += count
                if seen >= rank:
                    return index
        return None

    def lower_edge_ns(self, bin_index: int) -> int:
        return bin_index * self.bin_width_ns

    def upper_edge_ns(self, bin_index: int) -> int:
        return (bin_index + 1) * self.bin_width_ns

    def reset(self) -> None:
        """Forget everything (the pattern-change escape hatch)."""
        for index in range(len(self.counts)):
            self.counts[index] = 0
        self.oob = 0
        self.total = 0


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyDecision:
    """What to do with a sandbox after an invocation completes.

    ``prewarm_ns is None`` — stay resident; unload ``keep_alive_ns``
    after the invocation ends (0 = unload immediately).

    ``prewarm_ns = P`` — unload at completion, re-load the sandbox
    ``P`` ns later (speculatively, off the critical path), then unload
    again ``keep_alive_ns`` after that load if nothing arrived.
    """

    prewarm_ns: Optional[int]
    keep_alive_ns: int


class PrewarmPolicy:
    """Per-function lifecycle decisions.  Subclasses own all state."""

    name = "abstract"

    def decision(self, fn: int) -> PolicyDecision:
        raise NotImplementedError

    def observe_gap(self, fn: int, gap_ns: int) -> None:
        """An arrival came *gap_ns* after the previous completion."""

    def record_outcome(self, fn: int, warm: bool) -> None:
        """Was the (non-concurrent) arrival served from a resident sandbox?"""


class NoKeepAlive(PrewarmPolicy):
    """Baseline: tear down at completion; every re-arrival restores."""

    name = "none"
    _DECISION = PolicyDecision(prewarm_ns=None, keep_alive_ns=0)

    def decision(self, fn: int) -> PolicyDecision:
        return self._DECISION


class FixedWindow(PrewarmPolicy):
    """Classic fixed keep-alive: resident for *window_ns* after each run."""

    def __init__(self, window_ns: int) -> None:
        if window_ns <= 0:
            raise ValueError(f"keep-alive window must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.name = f"fixed-{window_ns // SECOND}s"
        self._decision = PolicyDecision(prewarm_ns=None, keep_alive_ns=window_ns)

    def decision(self, fn: int) -> PolicyDecision:
        return self._decision


class HybridHistogram(PrewarmPolicy):
    """Serverless-in-the-Wild hybrid policy on per-function histograms.

    With enough in-range observations, the idle-gap histogram yields:

    * prewarm window = ``head_margin x lower_edge(p[head_pct])`` — the
      sandbox is unloaded for this long after each completion (a head
      at bin 0 means gaps shorter than one bin exist: stay resident);
    * keep-alive = ``tail_margin x upper_edge(p[tail_pct]) - prewarm`` —
      how long the (re)loaded sandbox waits for the next arrival.

    Fallbacks: too few observations or too many out-of-bounds gaps ⇒
    plain fixed keep-alive at ``default_keep_ns``.  After
    ``pattern_miss_limit`` consecutive cold misses the function's
    histogram resets (the ATC'20 pattern-change escape hatch).
    """

    name = "hybrid"

    def __init__(
        self,
        bin_width_ns: int = 60 * SECOND,
        bins: int = 120,
        min_observations: int = 8,
        head_pct: float = 5.0,
        tail_pct: float = 99.0,
        head_margin: float = 0.85,
        tail_margin: float = 1.15,
        oob_threshold: float = 0.5,
        pattern_miss_limit: int = 4,
        default_keep_ns: int = 600 * SECOND,
    ) -> None:
        if not 0 < head_pct <= tail_pct <= 100:
            raise ValueError(f"need 0 < head <= tail <= 100, got {head_pct}, {tail_pct}")
        if not 0 < head_margin <= 1:
            raise ValueError(f"head_margin must be in (0, 1], got {head_margin}")
        if tail_margin < 1:
            raise ValueError(f"tail_margin must be >= 1, got {tail_margin}")
        if min_observations < 1:
            raise ValueError(f"min_observations must be >= 1, got {min_observations}")
        if pattern_miss_limit < 1:
            raise ValueError(f"pattern_miss_limit must be >= 1, got {pattern_miss_limit}")
        self.bin_width_ns = bin_width_ns
        self.bins = bins
        self.min_observations = min_observations
        self.head_pct = head_pct
        self.tail_pct = tail_pct
        self.head_margin = head_margin
        self.tail_margin = tail_margin
        self.oob_threshold = oob_threshold
        self.pattern_miss_limit = pattern_miss_limit
        self.default_keep_ns = default_keep_ns
        self._fallback = PolicyDecision(prewarm_ns=None, keep_alive_ns=default_keep_ns)
        self._histograms: Dict[int, IdleHistogram] = {}
        self._cached: Dict[int, PolicyDecision] = {}
        self._misses: Dict[int, int] = {}

    def histogram(self, fn: int) -> IdleHistogram:
        hist = self._histograms.get(fn)
        if hist is None:
            hist = self._histograms[fn] = IdleHistogram(self.bin_width_ns, self.bins)
        return hist

    def observe_gap(self, fn: int, gap_ns: int) -> None:
        self.histogram(fn).observe(gap_ns)
        self._cached.pop(fn, None)

    def record_outcome(self, fn: int, warm: bool) -> None:
        if warm:
            self._misses[fn] = 0
            return
        misses = self._misses.get(fn, 0) + 1
        if misses >= self.pattern_miss_limit:
            # Pattern changed: the histogram predicts the *old* behaviour
            # (that's why we keep missing) — start over.
            hist = self._histograms.get(fn)
            if hist is not None:
                hist.reset()
            self._cached.pop(fn, None)
            misses = 0
        self._misses[fn] = misses

    def decision(self, fn: int) -> PolicyDecision:
        cached = self._cached.get(fn)
        if cached is None:
            cached = self._cached[fn] = self._compute(fn)
        return cached

    def _compute(self, fn: int) -> PolicyDecision:
        hist = self._histograms.get(fn)
        if hist is None or hist.total < self.min_observations:
            return self._fallback
        if hist.oob_fraction() > self.oob_threshold:
            # The function's gaps mostly exceed the histogram range —
            # its percentiles say nothing useful.
            return self._fallback
        head_bin = hist.percentile_bin(self.head_pct)
        tail_bin = hist.percentile_bin(self.tail_pct)
        if head_bin is None or tail_bin is None:
            # The percentile rank itself lands in the OOB tail.
            return self._fallback
        prewarm = round(self.head_margin * hist.lower_edge_ns(head_bin))
        tail = round(self.tail_margin * hist.upper_edge_ns(tail_bin))
        if prewarm <= 0:
            # Head in bin 0: sub-bin gaps exist, keep the sandbox warm.
            return PolicyDecision(
                prewarm_ns=None, keep_alive_ns=max(tail, hist.bin_width_ns)
            )
        keep = max(tail - prewarm, hist.bin_width_ns)
        return PolicyDecision(prewarm_ns=prewarm, keep_alive_ns=keep)


#: The prewarm policy axis on the shared registry convention
#: (see :mod:`repro.policyreg`): string specs, ``register_*`` /
#: ``set_default_*`` hooks, and the ``REPRO_PREWARM_POLICY`` env var.
PREWARM_POLICIES = PolicyRegistry(
    axis="prewarm", env_var="REPRO_PREWARM_POLICY", builtin="hybrid"
)


def _make_none(spec: str) -> PrewarmPolicy:
    return NoKeepAlive()


def _make_hybrid(spec: str) -> PrewarmPolicy:
    if spec == "hybrid":
        return HybridHistogram()
    try:
        bin_s = int(spec[len("hybrid-"):])
    except ValueError:
        raise ValueError(f"bad hybrid bin-width spec {spec!r}") from None
    policy = HybridHistogram(bin_width_ns=bin_s * SECOND)
    policy.name = spec
    return policy


def _make_fixed(spec: str) -> PrewarmPolicy:
    # "fixed" with no window is a spelling error, not a default.
    param = spec[len("fixed-"):] if spec.startswith("fixed-") else ""
    try:
        window_s = int(param)
    except ValueError:
        raise ValueError(f"bad fixed keep-alive spec {spec!r}") from None
    return FixedWindow(window_s * SECOND)


PREWARM_POLICIES.register("none", _make_none)
PREWARM_POLICIES.register(
    "hybrid", _make_hybrid, syntax="hybrid[-<bin_seconds>]", parameterized=True
)
PREWARM_POLICIES.register(
    "fixed", _make_fixed, syntax="fixed-<seconds>", parameterized=True
)


def make_policy(spec: str) -> PrewarmPolicy:
    """Build a policy from its CLI spelling.

    ``none`` | ``fixed-<seconds>`` (e.g. ``fixed-600``) | ``hybrid``
    | ``hybrid-<bin_seconds>`` (histogram resolution override, e.g.
    ``hybrid-10`` for 10 s bins when replaying short synthetic periods).
    A factory (not instances) because policies carry per-function state
    and must be constructed fresh inside each worker process.
    """
    return PREWARM_POLICIES.make(spec)


def prewarm_policy_kinds() -> List[str]:
    """Registered prewarm-policy spec syntaxes."""
    return PREWARM_POLICIES.kinds()


def register_prewarm_policy(family, factory, syntax=None, parameterized=False):
    """Register a new prewarm-policy family (rejects duplicates)."""
    PREWARM_POLICIES.register(
        family, factory, syntax=syntax, parameterized=parameterized
    )


def set_default_prewarm_policy(spec: str) -> str:
    """Set the process-default prewarm policy; returns the previous."""
    return PREWARM_POLICIES.set_default(spec)


def default_prewarm_policy() -> str:
    """Effective default: override > ``REPRO_PREWARM_POLICY`` > builtin."""
    return PREWARM_POLICIES.default()


# ---------------------------------------------------------------------------
# Capacity-model cell simulator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrewarmConfig:
    """One replay-under-policy run (picklable; workers rebuild policies)."""

    replay: ReplayConfig = field(default_factory=ReplayConfig)
    #: prewarm-policy spec; defaults to the process default
    #: (``REPRO_PREWARM_POLICY`` env / ``set_default_prewarm_policy``)
    policy: str = field(default_factory=default_prewarm_policy)
    memory_budget_mb: float = 4096.0
    sandbox_mb: float = 128.0
    exec_ns: int = 1_000_000          # 1 ms service time
    groups: int = 1                   # model parameter: capacity cells
    platform: str = "firecracker"
    #: latency histogram starts here (steady state): first-touch cold
    #: boots and unfilled histograms are setup, not the policy's fault
    warmup_s: float = 0.0
    #: protect hot functions from pressure eviction using the
    #: autoscaler's pool-target tracker
    #: (:class:`repro.faas.autoscaler.PoolTargetTracker`): a function
    #: whose Little's-law target is >= 1 sandbox is skipped by the LRU
    #: victim scan.  Off by default — it changes eviction order, and
    #: the policy-frontier studies pin the unprotected behaviour.
    autoscale_protect: bool = False
    #: tracker rate window (with autoscale_protect)
    protect_window_s: float = 60.0
    #: tracker safety factor over Little's law (with autoscale_protect)
    protect_headroom: float = 1.5

    def __post_init__(self) -> None:
        if self.memory_budget_mb <= 0:
            raise ValueError(
                f"memory budget must be positive, got {self.memory_budget_mb}"
            )
        if self.sandbox_mb <= 0:
            raise ValueError(f"sandbox_mb must be positive, got {self.sandbox_mb}")
        if self.exec_ns < 0:
            raise ValueError(f"exec_ns must be >= 0, got {self.exec_ns}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if not 0 <= self.warmup_s < self.replay.duration_s:
            raise ValueError(
                f"warmup_s must be in [0, duration), got {self.warmup_s}"
            )
        if self.protect_window_s <= 0:
            raise ValueError(
                f"protect_window_s must be positive, got {self.protect_window_s}"
            )
        if self.protect_headroom < 1.0:
            raise ValueError(
                f"protect_headroom must be >= 1.0, got {self.protect_headroom}"
            )
        make_policy(self.policy)      # validate the spelling up front


class _FnState:
    """Per-function sandbox state inside one cell."""

    __slots__ = (
        "resident", "has_snapshot", "busy_until", "last_end",
        "unload_at", "load_at", "post_load_keep_ns",
    )

    def __init__(self) -> None:
        self.resident = False
        self.has_snapshot = False
        self.busy_until = -1
        self.last_end = -1
        self.unload_at: Optional[int] = None
        self.load_at: Optional[int] = None
        self.post_load_keep_ns = 0


_LOAD, _UNLOAD = 0, 1


@dataclass
class CellStats:
    """Everything one cell reports (plain data: crosses the worker pool)."""

    group: int
    budget_mb: float
    events: int = 0
    warmup_events: int = 0            # arrivals before the measurement window
    concurrent_hits: int = 0          # arrival while already executing
    horse_hits: int = 0               # resident, paused -> 132 ns resume
    restores: int = 0                 # snapshot restore, ~1300 us
    cold_boots: int = 0               # first touch, ~1.5 s
    prewarm_loads: int = 0
    prewarm_failed: int = 0
    expiry_unloads: int = 0
    pressure_evictions: int = 0
    overcommit_loads: int = 0
    protected_skips: int = 0          # victims spared by autoscale_protect
    peak_resident_mb: float = 0.0
    peak_lifecycle_heap: int = 0
    peak_buffered: int = 0            # replayer merge ceiling (<= functions)
    exhausted_streams: int = 0
    latency_counts: Dict[int, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)


class _Cell:
    """One capacity cell: a function subset under one policy instance."""

    def __init__(self, config: PrewarmConfig, group: int) -> None:
        self.config = config
        self.group = group
        self.policy = make_policy(config.policy)
        costs: CostModel = cost_model_for(config.platform)
        self.horse_resume_ns = round(
            costs.fast_fixed_ns
            + costs.p2sm_merge_cost_ns(1)
            + costs.coalesced_update_ns
        )
        self.restore_ns = costs.restore_ns
        self.cold_ns = costs.cold_start_ns
        self.budget_mb = config.memory_budget_mb / config.groups
        self.warmup_ns = round(config.warmup_s * SECOND)
        self.states: Dict[int, _FnState] = {}
        #: per-function Little's-law trackers (autoscale_protect only);
        #: None keeps the legacy victim scan entirely tracker-free
        self.trackers: Optional[Dict[int, "PoolTargetTracker"]] = (
            {} if config.autoscale_protect else None
        )
        self.protect_window_ns = round(config.protect_window_s * SECOND)
        self.lru: "OrderedDict[int, None]" = OrderedDict()
        self.lifecycle: List[Tuple[int, int, int]] = []
        self._compact_at = 1024
        self.latency: Counter = Counter()
        self.stats = CellStats(group=group, budget_mb=self.budget_mb)

    # -- memory ----------------------------------------------------------

    def _resident_mb(self) -> float:
        return len(self.lru) * self.config.sandbox_mb

    def _free_for_load(self, now: int, strict: bool) -> bool:
        """Make room for one sandbox, evicting idle LRU victims.

        ``strict`` loads (speculative prewarms) fail when nothing is
        evictable; arrival loads overcommit instead — a request must
        never be refused memory the simulation can model as borrowed.
        An in-flight sandbox (``busy_until > now``) is never a victim.
        """
        need = self.config.sandbox_mb
        trackers = self.trackers
        while self._resident_mb() + need > self.budget_mb:
            victim = None
            for fn in self.lru:               # oldest first
                if self.states[fn].busy_until > now:
                    continue
                if trackers is not None:
                    tracker = trackers.get(fn)
                    if tracker is not None and tracker.target(now) >= 1:
                        # The autoscaler still wants a warm sandbox for
                        # this function — spare it, keep scanning.
                        self.stats.protected_skips += 1
                        continue
                victim = fn
                break
            if victim is None:
                if strict:
                    return False
                self.stats.overcommit_loads += 1
                return True
            self._evict(victim)
        return True

    def _evict(self, fn: int) -> None:
        state = self.states[fn]
        if not state.resident:
            self.stats.violations.append(f"evict non-resident fn {fn}")
        state.resident = False
        # A HORSE-paused sandbox's state is snapshot-backed; eviction
        # demotes it to the restore tier, never back to cold.
        state.has_snapshot = True
        state.unload_at = None
        del self.lru[fn]
        self.stats.pressure_evictions += 1

    def _track_peaks(self) -> None:
        mb = self._resident_mb()
        if mb > self.stats.peak_resident_mb:
            self.stats.peak_resident_mb = mb
        if len(self.lifecycle) > self.stats.peak_lifecycle_heap:
            self.stats.peak_lifecycle_heap = len(self.lifecycle)

    # -- lifecycle timers (lazy-cancel heap + compaction) ----------------

    def _schedule(self, when: int, kind: int, fn: int) -> None:
        state = self.states[fn]
        if kind == _UNLOAD:
            state.unload_at = when
        else:
            state.load_at = when
        heapq.heappush(self.lifecycle, (when, kind, fn))
        # Lazy cancellation: stale entries are dropped on pop.  Compact
        # when stale entries dominate so the heap stays O(live timers).
        # The threshold doubles after each compaction so the O(states)
        # live-timer count amortizes to O(1) per schedule.
        if len(self.lifecycle) > self._compact_at:
            if len(self.lifecycle) > 4 * self._live_timers():
                self._compact()
            self._compact_at = max(1024, 2 * len(self.lifecycle))

    def _live_timers(self) -> int:
        return sum(
            (state.unload_at is not None) + (state.load_at is not None)
            for state in self.states.values()
        )

    def _compact(self) -> None:
        rebuilt = []
        for fn, state in self.states.items():
            if state.unload_at is not None:
                rebuilt.append((state.unload_at, _UNLOAD, fn))
            if state.load_at is not None:
                rebuilt.append((state.load_at, _LOAD, fn))
        heapq.heapify(rebuilt)
        self.lifecycle = rebuilt

    def _drain_lifecycle(self, upto: int) -> None:
        heap = self.lifecycle
        while heap and heap[0][0] <= upto:
            when, kind, fn = heapq.heappop(heap)
            state = self.states[fn]
            if kind == _UNLOAD:
                if state.unload_at != when:
                    continue              # superseded or cancelled
                state.unload_at = None
                self._expire(when, fn)
            else:
                if state.load_at != when:
                    continue
                state.load_at = None
                self._prewarm_load(when, fn)

    def _expire(self, now: int, fn: int) -> None:
        state = self.states[fn]
        if not state.resident:
            return
        if state.busy_until > now:
            # Unloads are always (re)scheduled from the latest completion
            # time, so an in-flight expiry means the bookkeeping broke.
            self.stats.violations.append(
                f"unload while in flight: fn {fn} at {now} busy until {state.busy_until}"
            )
            return
        state.resident = False
        state.has_snapshot = True
        del self.lru[fn]
        self.stats.expiry_unloads += 1

    def _prewarm_load(self, now: int, fn: int) -> None:
        state = self.states[fn]
        if state.resident:
            return                        # an arrival beat the timer
        if not self._free_for_load(now, strict=True):
            self.stats.prewarm_failed += 1
            return
        state.resident = True
        self.lru[fn] = None
        self.stats.prewarm_loads += 1
        self._schedule(now + state.post_load_keep_ns, _UNLOAD, fn)
        self._track_peaks()

    # -- arrivals --------------------------------------------------------

    def on_arrival(self, now: int, fn: int) -> None:
        self._drain_lifecycle(now)
        state = self.states.get(fn)
        if state is None:
            state = self.states[fn] = _FnState()
        stats = self.stats
        stats.events += 1
        trackers = self.trackers
        if trackers is not None:
            tracker = trackers.get(fn)
            if tracker is None:
                tracker = trackers[fn] = PoolTargetTracker(
                    window_ns=self.protect_window_ns,
                    expected_busy_ns=max(1, self.config.exec_ns),
                    headroom=self.config.protect_headroom,
                    min_pool=0,
                    max_pool=1,
                )
            tracker.observe(now)

        concurrent = state.busy_until > now
        if not concurrent and state.last_end >= 0:
            self.policy.observe_gap(fn, now - state.last_end)

        if concurrent:
            # Sandbox is executing: the invocation piggybacks, no
            # init latency (and no idle gap to observe).
            init_ns = 0
            stats.concurrent_hits += 1
        elif state.resident:
            init_ns = self.horse_resume_ns
            stats.horse_hits += 1
            self.policy.record_outcome(fn, warm=True)
        else:
            init_ns = self.restore_ns if state.has_snapshot else self.cold_ns
            if state.has_snapshot:
                stats.restores += 1
            else:
                stats.cold_boots += 1
            self.policy.record_outcome(fn, warm=False)
            self._free_for_load(now, strict=False)
            state.resident = True
            state.has_snapshot = True     # boot/restore leaves a snapshot
            self.lru[fn] = None
        self.lru.move_to_end(fn)
        if now >= self.warmup_ns:
            self.latency[init_ns] += 1
        else:
            stats.warmup_events += 1

        start = now + init_ns
        end = max(state.busy_until, start + self.config.exec_ns)
        state.busy_until = end
        state.last_end = end

        decision = self.policy.decision(fn)
        if decision.prewarm_ns is None:
            state.load_at = None          # cancel any pending prewarm
            self._schedule(end + decision.keep_alive_ns, _UNLOAD, fn)
        else:
            state.post_load_keep_ns = decision.keep_alive_ns
            self._schedule(end, _UNLOAD, fn)
            self._schedule(end + decision.prewarm_ns, _LOAD, fn)
        self._track_peaks()

    def finish(self) -> CellStats:
        self.stats.latency_counts = dict(self.latency)
        return self.stats


def cell_indices(config: PrewarmConfig, group: int) -> List[int]:
    """Functions owned by *group*: ``index % groups == group``."""
    return list(range(group, config.replay.functions, config.groups))


def run_cell(config: PrewarmConfig, group: int) -> CellStats:
    """Run one cell to completion — a pure function of (config, group)."""
    if not 0 <= group < config.groups:
        raise ValueError(f"group {group} out of range for {config.groups}")
    cell = _Cell(config, group)
    replay_stats = ReplayStats()
    for when, fn, _seq in merged_stream(
        config.replay, replay_stats, cell_indices(config, group)
    ):
        cell.on_arrival(when, fn)
    stats = cell.finish()
    stats.peak_buffered = replay_stats.peak_buffered
    stats.exhausted_streams = replay_stats.exhausted_streams
    return stats


def _run_cell_batch(payload) -> List[CellStats]:
    """Worker entry point (module-level: must pickle under spawn)."""
    config, batch = payload
    return [run_cell(config, group) for group in batch]


@dataclass
class PrewarmResult:
    """All cells of one replay-under-policy run, merged in group order."""

    config: PrewarmConfig
    cells: List[CellStats] = field(default_factory=list)

    @property
    def events(self) -> int:
        return sum(cell.events for cell in self.cells)

    def latency_counts(self) -> Dict[int, int]:
        merged: Counter = Counter()
        for cell in self.cells:
            merged.update(cell.latency_counts)
        return dict(merged)

    def percentile_us(self, pct: float) -> float:
        return to_microseconds(counter_percentile_ns(self.latency_counts(), pct))

    def total(self, field_name: str) -> int:
        return sum(getattr(cell, field_name) for cell in self.cells)

    def violations(self) -> List[str]:
        out: List[str] = []
        for cell in self.cells:
            out.extend(cell.violations)
        return out


def counter_percentile_ns(counts: Dict[int, int], pct: float) -> int:
    """Nearest-rank percentile over a {latency_ns: count} histogram.

    Exact (not interpolated): tier latencies are discrete, and an
    interpolated value between 132 ns and 1300 µs would name a latency
    no request ever saw.
    """
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {pct}")
    total = sum(counts.values())
    if total == 0:
        return 0
    rank = max(1, math.ceil(pct / 100.0 * total))
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen >= rank:
            return value
    raise AssertionError("unreachable: rank exceeds total")


def run_replay(
    config: Optional[PrewarmConfig] = None,
    shards: int = 1,
    parallel: Optional[bool] = None,
) -> PrewarmResult:
    """Replay the full trace under the configured policy.

    ``groups`` (in *config*) is the model: how many capacity cells the
    host memory is split into.  ``shards`` is purely an execution knob
    distributing cells over worker processes; results are merged in
    group order, so output is byte-identical for any worker count.
    """
    config = config or PrewarmConfig()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    batches = [
        [group for group in range(config.groups) if group % shards == worker]
        for worker in range(min(shards, config.groups))
    ]
    payloads = [(config, batch) for batch in batches if batch]
    use_processes = shards > 1 if parallel is None else (parallel and shards > 1)
    if use_processes and len(payloads) > 1:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        with context.Pool(processes=len(payloads)) as pool:
            results = pool.map(_run_cell_batch, payloads)
    else:
        results = [_run_cell_batch(payload) for payload in payloads]
    by_group = {cell.group: cell for batch in results for cell in batch}
    return PrewarmResult(
        config=config,
        cells=[by_group[group] for group in sorted(by_group)],
    )


def render_replay(result: PrewarmResult) -> str:
    """Fixed-width, byte-stable summary (worker-count-free, like PR 7)."""
    config = result.config
    replay = config.replay
    counts = result.latency_counts()
    lines = [
        "Streaming trace replay — prewarm policy study",
        f"  functions        {replay.functions}",
        f"  duration         {replay.duration_s:.0f} s",
        f"  seed             {replay.seed}",
        f"  policy           {config.policy}",
        f"  memory budget    {config.memory_budget_mb:.0f} MB"
        f" ({config.groups} cell(s) x {config.memory_budget_mb / config.groups:.0f} MB)",
        f"  sandbox size     {config.sandbox_mb:.0f} MB",
        "",
        f"  events           {result.events}",
        f"  merge peak       {result.total('peak_buffered')}"
        f" buffered (<= {replay.functions} functions)",
        "",
        "  tier                        count",
        f"  warm (concurrent)     {result.total('concurrent_hits'):>11}",
        f"  HORSE resume          {result.total('horse_hits'):>11}",
        f"  snapshot restore      {result.total('restores'):>11}",
        f"  cold boot             {result.total('cold_boots'):>11}",
        "",
        f"  prewarm loads    {result.total('prewarm_loads')}"
        f" (failed {result.total('prewarm_failed')})",
        f"  expiry unloads   {result.total('expiry_unloads')}",
        f"  evictions        {result.total('pressure_evictions')}"
        f" (overcommit loads {result.total('overcommit_loads')})",
        f"  peak resident    {sum(c.peak_resident_mb for c in result.cells):.0f} MB",
        "",
        f"  init latency (us) over {sum(counts.values())} arrivals"
        f" (warmup {config.warmup_s:.0f} s excluded {result.total('warmup_events')})",
        f"    p50            {to_microseconds(counter_percentile_ns(counts, 50.0)):>12.3f}",
        f"    p95            {to_microseconds(counter_percentile_ns(counts, 95.0)):>12.3f}",
        f"    p99            {to_microseconds(counter_percentile_ns(counts, 99.0)):>12.3f}",
        f"    p99.9          {to_microseconds(counter_percentile_ns(counts, 99.9)):>12.3f}",
        "",
        f"  invariant violations: {len(result.violations())}",
    ]
    return "\n".join(lines)
