"""Keep-alive policies: how long an idle warm sandbox survives.

FaaS platforms keep a sandbox around after its function finishes so a
subsequent trigger gets a warm start (paper §1: "a keep-alive strategy,
which consists of keeping a sandbox active for a fixed time").  Two
policies:

* :class:`FixedKeepAlive` — the industry default (e.g. 10-20 min on
  the large providers; OpenWhisk's classic 10 min grace period);
* :class:`HybridKeepAlive` — a :class:`KeepAlivePolicy` facade over
  :class:`repro.faas.prewarm.HybridHistogram`, the full "Serverless in
  the Wild" (ATC'20) policy (binned histograms, prewarm windows,
  pattern-change reset).  Use this wherever the platform expects a
  keep-alive policy but the adaptive behaviour should come from the
  maintained implementation.

.. deprecated::
   :class:`HistogramKeepAlive` (the simplified p99-of-raw-gaps sketch
   of ATC'20) is superseded by :class:`HybridKeepAlive` /
   :class:`repro.faas.prewarm.HybridHistogram`; pool protection
   against eviction is now driven by
   :class:`repro.faas.autoscaler.PoolTargetTracker`.  Construction
   emits :class:`DeprecationWarning`; removal is scheduled for the PR
   after next (see README).
"""

from __future__ import annotations

import abc
import warnings
from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.metrics.stats import percentile
from repro.sim.units import seconds

if TYPE_CHECKING:
    from repro.faas.prewarm import HybridHistogram


class KeepAlivePolicy(abc.ABC):
    """Decides the eviction deadline of an idle warm sandbox."""

    @abc.abstractmethod
    def keep_alive_ns(self, function_name: str) -> int:
        """How long (ns) an idle sandbox of this function is retained."""

    def observe_idle_gap(self, function_name: str, gap_ns: int) -> None:
        """Feed an observed trigger-to-trigger idle gap (optional)."""


class FixedKeepAlive(KeepAlivePolicy):
    """Constant keep-alive window for every function."""

    def __init__(self, window_ns: int = seconds(600)) -> None:
        if window_ns < 0:
            raise ValueError(f"keep-alive window must be >= 0, got {window_ns}")
        self.window_ns = window_ns

    def keep_alive_ns(self, function_name: str) -> int:
        return self.window_ns


class HybridKeepAlive(KeepAlivePolicy):
    """Adaptive keep-alive driven by :class:`prewarm.HybridHistogram`.

    The legacy pool model has no unload/reload phase, so a decision's
    prewarm window (sandbox unloaded, then reloaded ahead of the
    predicted arrival) collapses onto the keep-alive axis: the sandbox
    is simply retained through ``prewarm + keep_alive``, which covers
    the same predicted-arrival horizon at a higher memory cost.
    """

    def __init__(self, policy: Optional["HybridHistogram"] = None) -> None:
        from repro.faas.prewarm import HybridHistogram

        self.policy = HybridHistogram() if policy is None else policy
        self._fn_ids: Dict[str, int] = {}

    def _fn(self, function_name: str) -> int:
        fn = self._fn_ids.get(function_name)
        if fn is None:
            fn = self._fn_ids[function_name] = len(self._fn_ids)
        return fn

    def observe_idle_gap(self, function_name: str, gap_ns: int) -> None:
        if gap_ns < 0:
            raise ValueError(f"negative idle gap {gap_ns}")
        self.policy.observe_gap(self._fn(function_name), gap_ns)

    def keep_alive_ns(self, function_name: str) -> int:
        decision = self.policy.decision(self._fn(function_name))
        return (decision.prewarm_ns or 0) + decision.keep_alive_ns


class HistogramKeepAlive(KeepAlivePolicy):
    """Per-function adaptive window from observed idle gaps.

    Until enough gaps are observed the policy falls back to a default
    window; afterwards it keeps sandboxes for the p99 idle gap plus a
    safety margin, the essence of the ATC'20 histogram policy.

    .. deprecated::
       Use :class:`repro.faas.prewarm.HybridHistogram` instead — the
       complete ATC'20 policy (prewarm windows, out-of-bounds fallback,
       pattern-change reset) with bounded per-function state.  Kept for
       the legacy pool study's comparison table.
    """

    def __init__(
        self,
        default_window_ns: int = seconds(600),
        min_observations: int = 8,
        margin: float = 1.1,
        max_window_ns: int = seconds(3600),
    ) -> None:
        warnings.warn(
            "HistogramKeepAlive is deprecated; use "
            "repro.faas.prewarm.HybridHistogram (full ATC'20 policy)",
            DeprecationWarning,
            stacklevel=2,
        )
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if margin < 1.0:
            raise ValueError(f"margin must be >= 1.0, got {margin}")
        self.default_window_ns = default_window_ns
        self.min_observations = min_observations
        self.margin = margin
        self.max_window_ns = max_window_ns
        self._gaps: Dict[str, List[int]] = defaultdict(list)

    def observe_idle_gap(self, function_name: str, gap_ns: int) -> None:
        if gap_ns < 0:
            raise ValueError(f"negative idle gap {gap_ns}")
        self._gaps[function_name].append(gap_ns)

    def keep_alive_ns(self, function_name: str) -> int:
        gaps = self._gaps.get(function_name, [])
        if len(gaps) < self.min_observations:
            return self.default_window_ns
        window = round(percentile([float(g) for g in gaps], 99) * self.margin)
        return min(window, self.max_window_ns)
