"""The trigger gateway: turns events into invocation timelines.

The gateway is the FaaS platform's front door.  ``trigger`` obtains a
sandbox through the requested start strategy, samples the function's
execution duration, optionally runs the *real* function logic, and
schedules the completion event that pauses the sandbox back into the
pool.

Per the paper's §2 setup, network/trigger transport is considered free
("we consider the data center network stack fast enough to ensure the
nanosecond-scale trigger"), so the pipeline is exactly
``initialization + execution``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.core.hot_resume import HorsePauseResume
from repro.faas.function import FunctionRegistry, FunctionSpec
from repro.faas.invocation import Invocation, StartType
from repro.faas.pool import SandboxPool
from repro.faas.startup import StartOutcome, StartStrategy
from repro.hypervisor.platform import VirtualizationPlatform
from repro.hypervisor.sandbox import Sandbox
from repro.obs.context import NULL_OBS, Observability
from repro.obs.span import OpenSpan
from repro.sim.engine import Engine
from repro.sim.tracing import NULL_TRACE, TraceLog

#: Synthetic "process" id for gateway-level spans.  Physical CPUs use
#: their core id as pid; the FaaS control plane gets its own track far
#: above any real core count.
FAAS_PID = 1_000_000


class FaaSGateway:
    """Dispatches triggers through configurable start strategies."""

    def __init__(
        self,
        engine: Engine,
        virt: VirtualizationPlatform,
        registry: FunctionRegistry,
        pool: SandboxPool,
        strategies: Dict[StartType, StartStrategy],
        rng: random.Random,
        horse: Optional[HorsePauseResume] = None,
        trace: TraceLog = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.engine = engine
        self.virt = virt
        self.registry = registry
        self.pool = pool
        self.strategies = strategies
        self.rng = rng
        self.horse = horse
        self.trace = trace
        self.obs = obs
        self.invocations: List[Invocation] = []
        #: hooks fired when an invocation completes (experiments attach)
        self.completion_hooks: List[Callable[[Invocation], None]] = []
        # Instrument handles are bound once (and rebound if the bundle's
        # tracer/registry is swapped) instead of looked up per trigger.
        self._ctr_start: Dict[str, object] = {}
        self._bind_instruments(obs)
        if obs is not NULL_OBS:
            obs.on_rebind(self._bind_instruments)

    def _bind_instruments(self, obs: Observability) -> None:
        metrics = obs.metrics
        self._ctr_trigger = metrics.counter(
            "gateway.trigger", "invocations triggered"
        )
        self._ctr_complete = metrics.counter(
            "gateway.complete", "invocations completed"
        )
        self._hist_init = metrics.histogram(
            "invocation.init_ns", help="trigger -> sandbox-ready latency"
        )
        self._hist_total = metrics.histogram(
            "invocation.total_ns", help="trigger -> function-end latency"
        )
        self._ctr_start.clear()

    def _start_counter(self, start: str):
        counter = self._ctr_start.get(start)
        if counter is None:
            counter = self._ctr_start[start] = self.obs.metrics.counter(
                f"gateway.start.{start}", f"invocations started via {start}"
            )
        return counter

    # ------------------------------------------------------------------
    def trigger(
        self,
        function_name: str,
        start_type: StartType,
        run_logic: bool = False,
        return_to_pool: bool = True,
        extra_delay_ns: int = 0,
    ) -> Invocation:
        """Fire one invocation at the current simulated instant.

        ``extra_delay_ns`` injects interference (e.g. merge-thread
        preemption) into the execution window; ``run_logic`` executes
        the real function body and stores its result.
        """
        spec = self.registry.get(function_name)
        now = self.engine.now
        invocation = Invocation(function_name=function_name, trigger_ns=now)
        self.invocations.append(invocation)

        strategy = self.strategies.get(start_type)
        if strategy is None:
            raise ValueError(
                f"no strategy configured for start type {start_type.value!r}"
            )
        # The invocation root span is opened *before* the start strategy
        # runs, so any pause/resume timelines recorded while obtaining
        # the sandbox nest underneath it.  Span work gates on the
        # tracer's own flag: a metrics-only bundle skips every span and
        # kwarg construction here and still feeds the instruments below.
        root: Optional[OpenSpan] = None
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.name_process(FAAS_PID, "faas")
            root = tracer.open_span(
                "invocation",
                now,
                category="faas",
                pid=FAAS_PID,
                tid=tracer.tid_for(f"fn:{function_name}", FAAS_PID, function_name),
                function=function_name,
                requested=start_type.value,
                invocation=invocation.invocation_id,
            )
        try:
            outcome: StartOutcome = strategy.obtain(spec, now)
        except Exception:
            if root is not None:
                root.close(now, error=True)
            raise
        invocation.start_type = outcome.start_type
        invocation.sandbox_id = outcome.sandbox.sandbox_id
        invocation.sandbox = outcome.sandbox
        invocation.sandbox_ready_ns = now + outcome.init_ns
        invocation.exec_start_ns = invocation.sandbox_ready_ns

        exec_ns = spec.workload.sample_duration_ns(self.rng)
        invocation.interference_ns = max(0, extra_delay_ns)
        invocation.exec_end_ns = (
            invocation.exec_start_ns + exec_ns + invocation.interference_ns
        )

        if run_logic:
            payload = spec.workload.example_payload(self.rng)
            try:
                invocation.result = spec.workload.execute(payload)
            except Exception as exc:  # record, don't crash the platform
                invocation.error = f"{type(exc).__name__}: {exc}"

        if root is not None:
            self._finish_invocation_obs(root, invocation, outcome)
        elif self.obs.enabled:
            self._finish_invocation_metrics(invocation, outcome)
        self.trace.record(
            now, "gateway", "trigger",
            function=function_name, start=outcome.start_type.value,
            init_ns=outcome.init_ns, invocation=invocation.invocation_id,
        )
        # The completion event is kept on the invocation so failure
        # handling (repro.resilience) can cancel it if the serving host
        # crashes before exec_end_ns.
        invocation.completion_event = self.engine.schedule_at(
            invocation.exec_end_ns,
            lambda: self._complete(spec, invocation, outcome.sandbox, return_to_pool),
            label=f"complete:{invocation.invocation_id}",
        )
        return invocation

    # ------------------------------------------------------------------
    def _finish_invocation_obs(
        self,
        root: OpenSpan,
        invocation: Invocation,
        outcome: StartOutcome,
    ) -> None:
        """Close the invocation span and feed the gateway metrics.

        The full invocation timeline (initialization end, execution end)
        is already known synchronously at trigger time — the simulator
        charges both intervals up front — so the span closes here rather
        than in ``_complete``.
        """
        start = outcome.start_type.value
        root.attrs.update(start=start, sandbox=outcome.sandbox.sandbox_id)
        invocation.record_spans(
            self.obs.tracer, pid=root.span.pid, tid=root.span.tid
        )
        root.close(invocation.exec_end_ns)
        self._finish_invocation_metrics(invocation, outcome)

    def _finish_invocation_metrics(
        self, invocation: Invocation, outcome: StartOutcome
    ) -> None:
        """Metric half of invocation finish — bound handles only."""
        self._ctr_trigger.inc()
        self._start_counter(outcome.start_type.value).inc()
        self._hist_init.observe(invocation.initialization_ns)

    # ------------------------------------------------------------------
    def _complete(
        self,
        spec: FunctionSpec,
        invocation: Invocation,
        sandbox: Sandbox,
        return_to_pool: bool,
    ) -> None:
        """Function body finished: pause the sandbox back into the pool."""
        if invocation.cancelled:
            return  # host crashed mid-execution; nothing to pause back
        now = self.engine.now
        if return_to_pool:
            if spec.is_ull and self.horse is not None:
                self.horse.pause(sandbox, now)
            else:
                self.virt.vanilla.pause(sandbox, now)
            self.pool.release(spec.name, sandbox)
        if self.obs.enabled:
            self._ctr_complete.inc()
            self._hist_total.observe(invocation.total_ns)
        self.trace.record(
            now, "gateway", "complete",
            function=spec.name, invocation=invocation.invocation_id,
        )
        for hook in self.completion_hooks:
            hook(invocation)

    # ------------------------------------------------------------------
    def completed_invocations(self, function_name: Optional[str] = None) -> List[Invocation]:
        return [
            inv
            for inv in self.invocations
            if inv.completed
            and (function_name is None or inv.function_name == function_name)
        ]
