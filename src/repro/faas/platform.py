"""The assembled FaaS platform.

:class:`FaaSPlatform` wires the virtualization substrate, the function
registry, the warm pool, the four start strategies, and the HORSE fast
path into one object experiments and examples drive.  The typical
session::

    faas = FaaSPlatform.build("firecracker", seed=42)
    faas.register(FunctionSpec("fw", FirewallWorkload(), vcpus=1))
    faas.provision_warm("fw", count=1, use_horse=True)
    invocation = faas.trigger("fw", StartType.HORSE)
    faas.engine.run(until=faas.engine.now + seconds(1))
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.core.ull_runqueue import UllRunqueueManager
from repro.faas.function import FunctionRegistry, FunctionSpec
from repro.faas.gateway import FaaSGateway
from repro.faas.invocation import Invocation, StartType
from repro.faas.keepalive import FixedKeepAlive, KeepAlivePolicy
from repro.faas.pool import SandboxPool
from repro.faas.startup import (
    ColdStart,
    HorseStart,
    RestoreStart,
    StartStrategy,
    WarmStart,
)
from repro.hypervisor.platform import VirtualizationPlatform, platform_by_name
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.obs.context import Observability, current as current_obs
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NULL_TRACE, TraceLog


class FaaSPlatform:
    """A single-host FaaS deployment over the simulated hypervisor."""

    def __init__(
        self,
        engine: Engine,
        virt: VirtualizationPlatform,
        rngs: RngRegistry,
        keepalive: Optional[KeepAlivePolicy] = None,
        horse_config: HorseConfig = HorseConfig.full(),
        trace: TraceLog = NULL_TRACE,
        obs: Optional[Observability] = None,
    ) -> None:
        self.engine = engine
        self.virt = virt
        self.rngs = rngs
        self.trace = trace
        #: Observability bundle; defaults to the active context (NULL
        #: unless the caller opted in with ``obs.activate(...)``).
        self.obs = obs if obs is not None else current_obs()
        self.virt.attach_observability(self.obs)
        self.registry = FunctionRegistry()
        self.pool = SandboxPool(
            engine,
            keepalive or FixedKeepAlive(),
            on_evict=self._release_sandbox_memory,
            trace=trace,
            obs=self.obs,
        )
        self.ull_manager = UllRunqueueManager(virt.host)
        self.horse = HorsePauseResume(
            host=virt.host,
            policy=virt.policy,
            costs=virt.costs,
            ull_manager=self.ull_manager,
            config=horse_config,
            obs=self.obs,
        )
        strategies: Dict[StartType, StartStrategy] = {
            StartType.COLD: ColdStart(virt),
            StartType.RESTORE: RestoreStart(virt),
            StartType.WARM: WarmStart(virt, self.pool),
            StartType.HORSE: HorseStart(virt, self.pool, self.horse),
        }
        self.gateway = FaaSGateway(
            engine=engine,
            virt=virt,
            registry=self.registry,
            pool=self.pool,
            strategies=strategies,
            rng=rngs.stream("gateway"),
            horse=self.horse,
            trace=trace,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        platform_name: str = "firecracker",
        seed: int = 0,
        reserved_ull_cores: int = 1,
        keepalive: Optional[KeepAlivePolicy] = None,
        horse_config: HorseConfig = HorseConfig.full(),
    ) -> "FaaSPlatform":
        """One-call construction with a named hypervisor platform."""
        engine = Engine()
        virt = platform_by_name(
            platform_name, reserved_ull_cores=reserved_ull_cores
        )
        return cls(
            engine=engine,
            virt=virt,
            rngs=RngRegistry(seed),
            keepalive=keepalive,
            horse_config=horse_config,
        )

    # ------------------------------------------------------------------
    # Deployment & provisioning
    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        self.registry.register(spec)
        if spec.provisioned_concurrency > 0:
            self.pool.mark_provisioned(spec.name, spec.provisioned_concurrency)

    def provision_warm(
        self, function_name: str, count: int, use_horse: Optional[bool] = None
    ) -> None:
        """Pre-create *count* paused sandboxes for the function.

        Provisioning happens ahead of triggers (the premium options:
        Azure Premium Functions, Lambda Provisioned Concurrency), so
        creation cost is not charged to any invocation.  ``use_horse``
        defaults to the function's uLL-ness: uLL sandboxes pause through
        the HORSE path so their P2SM state is precomputed.
        """
        if count < 1:
            raise ValueError(f"provision count must be >= 1, got {count}")
        spec = self.registry.get(function_name)
        horse_pause = spec.is_ull if use_horse is None else use_horse
        now = self.engine.now
        for _ in range(count):
            sandbox = Sandbox(
                vcpus=spec.vcpus, memory_mb=spec.memory_mb, is_ull=spec.is_ull
            )
            self.virt.host.allocate_memory(spec.memory_mb)
            self.virt.vanilla.place_initial(sandbox, now)
            if horse_pause:
                self.horse.pause(sandbox, now)
            else:
                self.virt.vanilla.pause(sandbox, now)
            self.pool.release(function_name, sandbox)

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def trigger(
        self,
        function_name: str,
        start_type: StartType,
        run_logic: bool = False,
        return_to_pool: bool = True,
        extra_delay_ns: int = 0,
    ) -> Invocation:
        return self.gateway.trigger(
            function_name,
            start_type,
            run_logic=run_logic,
            return_to_pool=return_to_pool,
            extra_delay_ns=extra_delay_ns,
        )

    # ------------------------------------------------------------------
    # Failure handling (repro.resilience)
    # ------------------------------------------------------------------
    def destroy_sandbox(self, sandbox: Sandbox) -> None:
        """Tear one sandbox down from any live state and free its memory.

        Used when an operation on the sandbox failed terminally (hung
        resume, host crash mid-execution): the sandbox is stopped, its
        HORSE artifacts and ull_runqueue assignment are detached, and
        its memory is returned to the host.
        """
        if sandbox.state is not SandboxState.STOPPED:
            sandbox.transition(SandboxState.STOPPED)
        self._release_sandbox_memory("", sandbox)

    def fail_all_pooled(self) -> int:
        """Destroy every idle pooled sandbox (node crash); returns the
        number destroyed."""
        destroyed = 0
        for sandboxes in self.pool.drain_all().values():
            for sandbox in sandboxes:
                self.destroy_sandbox(sandbox)
                destroyed += 1
        return destroyed

    # ------------------------------------------------------------------
    def _release_sandbox_memory(self, _function: str, sandbox: Sandbox) -> None:
        # Evicted sandboxes may still be tied to an ull_runqueue with
        # live P2SM state; detach before dropping the memory.
        self.ull_manager.unassign(sandbox)
        sandbox.clear_horse_artifacts()
        self.virt.host.release_memory(sandbox.memory_mb)

    def __repr__(self) -> str:
        return (
            f"FaaSPlatform({self.virt.name}, functions={len(self.registry)}, "
            f"pooled={self.pool.total_size()})"
        )
