"""Shard front-end: routing at the gateway-dispatch boundary.

In the sharded cluster model (DESIGN.md §12) the only cross-shard
messages are gateway dispatches: a request arrives at the front-end
router, is assigned to one failure-domain cell, and is delivered to
that cell's resilient gateway after the fixed dispatch hop.  HORSE's
premise — the gateway/transport hop has a known minimum latency — is
what makes the partition safe to run in parallel: that minimum is the
conservative lookahead window (:func:`repro.sim.sharding.windowed_run`).

:func:`plan_arrivals` draws the global arrival schedule and the routing
decisions from dedicated seeded streams, so the routed plan is a pure
function of ``(config-shaped arguments, seed)``: every worker layout
sees the identical per-cell delivery streams.  The inter-arrival and
uLL-class draws deliberately mirror the legacy chaos study's stream
(``fork("chaos-arrivals").stream("times")``) so the sharded study's
offered load is shaped identically; routing draws come from their own
forked stream and cannot perturb the arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.rng import RngRegistry
from repro.sim.units import microseconds, milliseconds

#: Minimum gateway-dispatch latency (front-end hop, ns): every routed
#: request reaches its cell this long after submission.  This is the
#: conservative lookahead — a cell at local time T cannot receive a
#: dispatch below T + this, so it may simulate that far unsynchronized.
DISPATCH_LATENCY_NS: int = microseconds(100)


@dataclass(frozen=True)
class RoutedArrival:
    """One request as the front-end router sees it."""

    index: int
    #: submission instant at the front-end (global clock, ns)
    submit_ns: int
    #: delivery instant at the cell gateway (submit + dispatch hop)
    deliver_ns: int
    #: failure-domain cell the router chose
    group: int
    function: str
    priority: int


def plan_arrivals(
    requests: int,
    groups: int,
    mean_interarrival_ms: float,
    ull_fraction: float,
    seed: int,
) -> Dict[int, List[RoutedArrival]]:
    """Draw and route the full arrival schedule, grouped by cell.

    Returns ``{group: [RoutedArrival, ...]}`` with every group present
    (possibly empty) and each group's list in ascending delivery order.
    Arrival times and the uLL draw replicate the legacy chaos stream;
    the group comes from an independent ``shard-router`` stream so the
    same seed offers the same load whether or not it is sharded.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    arrivals = RngRegistry(seed).fork("chaos-arrivals").stream("times")
    router = RngRegistry(seed).fork("shard-router").stream("route")
    mean_gap_ns = milliseconds(mean_interarrival_ms)
    plan: Dict[int, List[RoutedArrival]] = {g: [] for g in range(groups)}
    t = 0
    for index in range(requests):
        t += max(1, round(arrivals.expovariate(1.0 / mean_gap_ns)))
        ull = arrivals.random() < ull_fraction
        group = router.randrange(groups)
        plan[group].append(
            RoutedArrival(
                index=index,
                submit_ns=t,
                deliver_ns=t + DISPATCH_LATENCY_NS,
                group=group,
                function="firewall" if ull else "background",
                priority=1 if ull else 0,
            )
        )
    return plan
