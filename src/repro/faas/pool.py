"""The warm sandbox pool.

Holds paused, initialized sandboxes per function.  A warm start is a
pool hit; provisioned concurrency keeps the pool from ever emptying for
subscribed functions; the keep-alive policy evicts idle non-provisioned
sandboxes after their window.

The pool only *stores* — pausing/resuming is the caller's job (the
platform picks the vanilla or the HORSE path per sandbox), so the pool
never depends on which resume machinery is in use.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Deque, Dict, List, Optional

from repro.faas.keepalive import KeepAlivePolicy
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.obs.context import NULL_OBS, Observability
from repro.sim.engine import Engine
from repro.sim.event import Event
from repro.sim.tracing import NULL_TRACE, TraceLog


def _pool_handles(metrics):
    """Registry-cached (hit, miss, evict) counters for the hot paths."""
    return (
        metrics.counter("pool.hit", "warm-pool hits"),
        metrics.counter("pool.miss", "warm-pool misses (no idle sandbox)"),
        metrics.counter("pool.evict", "keep-alive evictions"),
    )


class SandboxPool:
    """Per-function store of paused warm sandboxes with keep-alive."""

    def __init__(
        self,
        engine: Engine,
        keepalive: KeepAlivePolicy,
        on_evict: Optional[Callable[[str, Sandbox], None]] = None,
        trace: TraceLog = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        self._engine = engine
        self._keepalive = keepalive
        self._on_evict = on_evict
        self._trace = trace
        self.obs = obs
        self._idle: Dict[str, Deque[Sandbox]] = defaultdict(deque)
        #: sandbox_id -> pending eviction event (cancelled on acquire)
        self._eviction_events: Dict[str, Event] = {}
        #: functions whose sandboxes are never evicted
        self._provisioned: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def mark_provisioned(self, function_name: str, count: int) -> None:
        """Exempt up to *count* sandboxes of this function from eviction."""
        if count < 0:
            raise ValueError(f"negative provisioned count {count}")
        self._provisioned[function_name] = count

    def provisioned_count(self, function_name: str) -> int:
        return self._provisioned.get(function_name, 0)

    def size(self, function_name: str) -> int:
        return len(self._idle.get(function_name, ()))

    def total_size(self) -> int:
        return sum(len(q) for q in self._idle.values())

    def idle_sandboxes(self, function_name: str) -> List[Sandbox]:
        return list(self._idle.get(function_name, ()))

    # ------------------------------------------------------------------
    def acquire(self, function_name: str) -> Optional[Sandbox]:
        """Take a warm (paused) sandbox, FIFO; None on pool miss."""
        queue = self._idle.get(function_name)
        if not queue:
            self.misses += 1
            if self.obs.enabled:
                self.obs.metrics.bound("pool", _pool_handles)[1].inc()
            return None
        sandbox = queue.popleft()
        event = self._eviction_events.pop(sandbox.sandbox_id, None)
        if event is not None:
            event.cancel()
        self.hits += 1
        if self.obs.enabled:
            self.obs.metrics.bound("pool", _pool_handles)[0].inc()
        self._trace.record(
            self._engine.now, "pool", "acquire",
            function=function_name, sandbox=sandbox.sandbox_id,
        )
        return sandbox

    def release(self, function_name: str, sandbox: Sandbox) -> None:
        """Return a *paused* sandbox to the pool; arms keep-alive unless
        the function's provisioned quota covers it."""
        if sandbox.state is not SandboxState.PAUSED:
            raise ValueError(
                f"pool only stores paused sandboxes; {sandbox.sandbox_id} "
                f"is {sandbox.state.value}"
            )
        queue = self._idle[function_name]
        queue.append(sandbox)
        self._trace.record(
            self._engine.now, "pool", "release",
            function=function_name, sandbox=sandbox.sandbox_id,
        )
        if len(queue) <= self.provisioned_count(function_name):
            return  # inside the always-warm quota: no eviction timer
        window = self._keepalive.keep_alive_ns(function_name)
        event = self._engine.schedule_after(
            window,
            lambda: self._evict(function_name, sandbox),
            label=f"keepalive-evict:{sandbox.sandbox_id}",
        )
        self._eviction_events[sandbox.sandbox_id] = event

    def drain_all(self) -> Dict[str, List[Sandbox]]:
        """Remove every idle sandbox (host crash / shutdown).

        Cancels all armed eviction timers and returns the drained
        sandboxes per function, still PAUSED — disposing of them
        (state transition, memory release) is the caller's job.
        """
        drained: Dict[str, List[Sandbox]] = {
            name: list(queue) for name, queue in self._idle.items() if queue
        }
        self._idle.clear()
        for event in self._eviction_events.values():
            event.cancel()
        self._eviction_events.clear()
        if drained:
            self._trace.record(
                self._engine.now, "pool", "drain",
                sandboxes=sum(len(v) for v in drained.values()),
            )
        return drained

    def _evict(self, function_name: str, sandbox: Sandbox) -> None:
        queue = self._idle.get(function_name)
        if not queue or sandbox not in queue:
            return  # acquired (and maybe re-released) in the meantime
        queue.remove(sandbox)
        self._eviction_events.pop(sandbox.sandbox_id, None)
        sandbox.transition(SandboxState.STOPPED)
        self.evictions += 1
        if self.obs.enabled:
            self.obs.metrics.bound("pool", _pool_handles)[2].inc()
            self.obs.tracer.record_instant(
                "pool.evict",
                self._engine.now,
                category="pool",
                function=function_name,
                sandbox=sandbox.sandbox_id,
            )
        self._trace.record(
            self._engine.now, "pool", "evict",
            function=function_name, sandbox=sandbox.sandbox_id,
        )
        if self._on_evict is not None:
            self._on_evict(function_name, sandbox)

    # ------------------------------------------------------------------
    # Invariants (repro.check)
    # ------------------------------------------------------------------
    def invariant_violations(self) -> List[str]:
        """Pool accounting problems, as messages (empty = sound).

        The pool's contract: it stores only PAUSED sandboxes, stores
        each at most once, and every armed eviction timer points at a
        sandbox that is actually idle in the pool.
        """
        violations: List[str] = []
        seen: Dict[str, str] = {}
        for function_name, queue in self._idle.items():
            for sandbox in queue:
                if sandbox.state is not SandboxState.PAUSED:
                    violations.append(
                        f"pool[{function_name}]: {sandbox.sandbox_id} is "
                        f"{sandbox.state.value}, pool only stores paused"
                    )
                if sandbox.sandbox_id in seen:
                    violations.append(
                        f"pool: {sandbox.sandbox_id} pooled under both "
                        f"{seen[sandbox.sandbox_id]!r} and {function_name!r}"
                    )
                seen[sandbox.sandbox_id] = function_name
        for sandbox_id, event in self._eviction_events.items():
            if event.cancelled:
                continue
            if sandbox_id not in seen:
                violations.append(
                    f"pool: eviction timer armed for {sandbox_id} which is "
                    f"not idle in the pool"
                )
        for function_name, count in self._provisioned.items():
            if count < 0:
                violations.append(
                    f"pool[{function_name}]: negative provisioned count {count}"
                )
        return violations

    def __repr__(self) -> str:
        sizes = {name: len(q) for name, q in self._idle.items() if q}
        return f"SandboxPool({sizes}, hits={self.hits}, misses={self.misses})"
