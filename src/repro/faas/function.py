"""Function specifications and the registry tenants deploy into.

A :class:`FunctionSpec` is what a tenant ships: a workload body plus
the sandbox shape it runs in (vCPUs, memory) and its latency class.
The registry is the platform's catalog, keyed by function name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.workloads.base import Workload


@dataclass(frozen=True)
class FunctionSpec:
    """One deployed function."""

    name: str
    workload: Workload
    vcpus: int = 1
    memory_mb: int = 512
    #: Tenant subscribed to provisioned concurrency (always-warm pool).
    provisioned_concurrency: int = 0
    #: Resource tag this function needs on its host ("" = any host;
    #: e.g. "gpu" restricts placement to hosts tagged via
    #: :meth:`~repro.faas.cluster.FaaSCluster.tag_accelerator`).
    accelerator: str = ""

    def __post_init__(self) -> None:
        if self.accelerator != self.accelerator.strip():
            raise ValueError(
                f"{self.name}: accelerator tag {self.accelerator!r} "
                "has surrounding whitespace"
            )
        if self.vcpus < 1:
            raise ValueError(f"{self.name}: vcpus must be >= 1, got {self.vcpus}")
        if self.memory_mb < 1:
            raise ValueError(
                f"{self.name}: memory_mb must be >= 1, got {self.memory_mb}"
            )
        if self.provisioned_concurrency < 0:
            raise ValueError(
                f"{self.name}: provisioned_concurrency must be >= 0, "
                f"got {self.provisioned_concurrency}"
            )

    @property
    def is_ull(self) -> bool:
        return self.workload.is_ull


class FunctionRegistry:
    """Name -> spec catalog with registration validation."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionSpec] = {}

    def register(self, spec: FunctionSpec) -> None:
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        self._functions[spec.name] = spec

    def get(self, name: str) -> FunctionSpec:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def __len__(self) -> int:
        return len(self._functions)

    def names(self) -> List[str]:
        return sorted(self._functions)

    def ull_functions(self) -> List[FunctionSpec]:
        return [f for f in self._functions.values() if f.is_ull]
