"""Trigger transport models (the paper's §2 network assumption).

The paper "consider[s] the data center network stack fast enough to
ensure the nanosecond-scale trigger of functions" and therefore
triggers on the node where the function runs.  This module makes that
assumption an explicit, swappable model so the sensitivity can be
studied: how fast must the trigger path be before sandbox
initialization — the thing HORSE fixes — dominates again?

Models (latency drawn per trigger):

* ``LOCAL``       — same-node trigger, ~0 ns (the paper's setting);
* ``NANO_FABRIC`` — nanoPU-class network stack, ~100s of ns;
* ``KERNEL_BYPASS`` — DPDK/RDMA-class RPC, ~2 us;
* ``TCP``         — conventional kernel TCP RPC, ~30 us.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.sim.units import microseconds, nanoseconds


class TransportKind(enum.Enum):
    LOCAL = "local"
    NANO_FABRIC = "nano-fabric"
    KERNEL_BYPASS = "kernel-bypass"
    TCP = "tcp"


@dataclass(frozen=True)
class TransportModel:
    """Latency envelope of one trigger-delivery path."""

    kind: TransportKind
    base_ns: int
    jitter_rel: float = 0.1

    def __post_init__(self) -> None:
        if self.base_ns < 0:
            raise ValueError(f"negative base latency {self.base_ns}")
        if self.jitter_rel < 0:
            raise ValueError(f"negative jitter {self.jitter_rel}")

    def sample_ns(self, rng: random.Random) -> int:
        """Draw one trigger-delivery latency."""
        if self.base_ns == 0:
            return 0
        jitter = rng.gauss(0.0, self.base_ns * self.jitter_rel)
        return max(0, round(self.base_ns + jitter))


LOCAL = TransportModel(TransportKind.LOCAL, base_ns=0)
NANO_FABRIC = TransportModel(TransportKind.NANO_FABRIC, base_ns=nanoseconds(350))
KERNEL_BYPASS = TransportModel(TransportKind.KERNEL_BYPASS, base_ns=microseconds(2))
TCP = TransportModel(TransportKind.TCP, base_ns=microseconds(30))

ALL_TRANSPORTS = (LOCAL, NANO_FABRIC, KERNEL_BYPASS, TCP)


def transport_by_name(name: str) -> TransportModel:
    for model in ALL_TRANSPORTS:
        if model.kind.value == name.lower():
            return model
    raise ValueError(
        f"unknown transport {name!r}; expected one of "
        f"{[m.kind.value for m in ALL_TRANSPORTS]}"
    )
