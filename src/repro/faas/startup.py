"""Sandbox start strategies: cold, restore, warm, and HORSE.

These are the four ways the evaluation obtains a ready sandbox
(Table 1, Figure 1, Figure 4):

* **cold** — build a sandbox from scratch: VMM setup, guest boot,
  language-runtime init, function load (~1.5 s total);
* **restore** — FaaSnap-style snapshot restore (~1300 us);
* **warm** — resume a paused pool sandbox through the *vanilla*
  resume path (~1.1 us at 1 vCPU, grows with vCPUs);
* **horse** — resume through the HORSE fast path (~130-150 ns, flat).

Each strategy returns the ready sandbox plus the initialization
duration in simulated ns; the gateway stitches those into invocation
timelines.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.core.hot_resume import HorsePauseResume
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.pool import SandboxPool
from repro.hypervisor.platform import VirtualizationPlatform
from repro.hypervisor.sandbox import Sandbox, SandboxState


class PoolMissError(Exception):
    """A warm-path strategy found no pooled sandbox for the function."""


@dataclass
class StartOutcome:
    """A ready (RUNNING) sandbox and how long readiness took."""

    sandbox: Sandbox
    init_ns: int
    start_type: StartType


class StartStrategy(abc.ABC):
    """Obtains a ready sandbox for one function trigger."""

    start_type: StartType

    @abc.abstractmethod
    def obtain(self, spec: FunctionSpec, now_ns: int) -> StartOutcome:
        """Produce a RUNNING sandbox for *spec*; charges init time."""


class ColdStart(StartStrategy):
    """Boot a brand-new sandbox (paper's *cold* scenario)."""

    start_type = StartType.COLD

    def __init__(self, virt: VirtualizationPlatform) -> None:
        self.virt = virt

    def obtain(self, spec: FunctionSpec, now_ns: int) -> StartOutcome:
        sandbox = Sandbox(
            vcpus=spec.vcpus, memory_mb=spec.memory_mb, is_ull=spec.is_ull
        )
        self.virt.host.allocate_memory(spec.memory_mb)
        self.virt.vanilla.place_initial(sandbox, now_ns)
        return StartOutcome(
            sandbox=sandbox,
            init_ns=self.virt.costs.cold_start_ns,
            start_type=self.start_type,
        )


class RestoreStart(StartStrategy):
    """FaaSnap-style restore from a per-function snapshot."""

    start_type = StartType.RESTORE

    def __init__(self, virt: VirtualizationPlatform) -> None:
        self.virt = virt

    def _snapshot_name(self, spec: FunctionSpec) -> str:
        return f"faasnap:{spec.name}"

    def ensure_snapshot(self, spec: FunctionSpec, now_ns: int) -> None:
        """Capture the function's template snapshot once (offline work,
        not charged to any invocation)."""
        name = self._snapshot_name(spec)
        if name in self.virt.snapshots:
            return
        template = Sandbox(
            vcpus=spec.vcpus, memory_mb=spec.memory_mb, is_ull=spec.is_ull
        )
        self.virt.host.allocate_memory(spec.memory_mb)
        self.virt.vanilla.place_initial(template, now_ns)
        self.virt.snapshots.snapshot(name, template)
        # The template itself is torn down after snapshotting.
        self.virt.vanilla.pause(template, now_ns)
        template.transition(SandboxState.STOPPED)
        self.virt.host.release_memory(spec.memory_mb)

    def obtain(self, spec: FunctionSpec, now_ns: int) -> StartOutcome:
        self.ensure_snapshot(spec, now_ns)
        sandbox, restore_ns = self.virt.snapshots.restore(self._snapshot_name(spec))
        self.virt.host.allocate_memory(spec.memory_mb)
        self.virt.vanilla.place_initial(sandbox, now_ns)
        return StartOutcome(
            sandbox=sandbox, init_ns=restore_ns, start_type=self.start_type
        )


class WarmStart(StartStrategy):
    """Resume a pooled sandbox through the vanilla resume path."""

    start_type = StartType.WARM

    def __init__(self, virt: VirtualizationPlatform, pool: SandboxPool) -> None:
        self.virt = virt
        self.pool = pool

    def obtain(self, spec: FunctionSpec, now_ns: int) -> StartOutcome:
        sandbox = self.pool.acquire(spec.name)
        if sandbox is None:
            raise PoolMissError(
                f"no warm sandbox pooled for {spec.name!r}; provision first"
            )
        result = self.virt.vanilla.resume(sandbox, now_ns)
        return StartOutcome(
            sandbox=sandbox, init_ns=result.total_ns, start_type=self.start_type
        )


class HorseStart(StartStrategy):
    """Resume a pooled uLL sandbox through the HORSE fast path."""

    start_type = StartType.HORSE

    def __init__(
        self,
        virt: VirtualizationPlatform,
        pool: SandboxPool,
        horse: HorsePauseResume,
    ) -> None:
        self.virt = virt
        self.pool = pool
        self.horse = horse

    def obtain(self, spec: FunctionSpec, now_ns: int) -> StartOutcome:
        sandbox = self.pool.acquire(spec.name)
        if sandbox is None:
            raise PoolMissError(
                f"no HORSE-paused sandbox pooled for {spec.name!r}; "
                "provision first"
            )
        result = self.horse.resume(sandbox, now_ns)
        return StartOutcome(
            sandbox=sandbox, init_ns=result.total_ns, start_type=self.start_type
        )
