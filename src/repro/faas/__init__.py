"""FaaS platform layer: functions, triggers, pools, start strategies."""

from repro.faas.autoscaler import AutoscalerConfig, PoolAutoscaler
from repro.faas.cluster import (
    FaaSCluster,
    LeastLoadedPlacement,
    NodeHealth,
    NoHealthyHostError,
    PlacementPolicy,
    RoundRobinPlacement,
    WarmAffinityPlacement,
    plan_start,
)
from repro.faas.function import FunctionRegistry, FunctionSpec
from repro.faas.gateway import FaaSGateway
from repro.faas.invocation import Invocation, StartType
from repro.faas.keepalive import (
    FixedKeepAlive,
    HistogramKeepAlive,
    HybridKeepAlive,
    KeepAlivePolicy,
)
from repro.faas.platform import FaaSPlatform
from repro.faas.pool import SandboxPool
from repro.faas.prewarm import (
    FixedWindow,
    HybridHistogram,
    IdleHistogram,
    NoKeepAlive,
    PolicyDecision,
    PrewarmConfig,
    PrewarmPolicy,
    PrewarmResult,
    make_policy,
    render_replay,
    run_replay,
)
from repro.faas.startup import (
    ColdStart,
    HorseStart,
    PoolMissError,
    RestoreStart,
    StartOutcome,
    StartStrategy,
    WarmStart,
)
from repro.faas.transport import (
    ALL_TRANSPORTS,
    KERNEL_BYPASS,
    LOCAL,
    NANO_FABRIC,
    TCP,
    TransportKind,
    TransportModel,
    transport_by_name,
)

__all__ = [
    "AutoscalerConfig",
    "PoolAutoscaler",
    "FaaSCluster",
    "LeastLoadedPlacement",
    "NodeHealth",
    "NoHealthyHostError",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "WarmAffinityPlacement",
    "plan_start",
    "ALL_TRANSPORTS",
    "KERNEL_BYPASS",
    "LOCAL",
    "NANO_FABRIC",
    "TCP",
    "TransportKind",
    "TransportModel",
    "transport_by_name",
    "FunctionRegistry",
    "FunctionSpec",
    "FaaSGateway",
    "Invocation",
    "StartType",
    "FixedKeepAlive",
    "HistogramKeepAlive",
    "HybridKeepAlive",
    "KeepAlivePolicy",
    "FaaSPlatform",
    "SandboxPool",
    "FixedWindow",
    "HybridHistogram",
    "IdleHistogram",
    "NoKeepAlive",
    "PolicyDecision",
    "PrewarmConfig",
    "PrewarmPolicy",
    "PrewarmResult",
    "make_policy",
    "render_replay",
    "run_replay",
    "ColdStart",
    "HorseStart",
    "PoolMissError",
    "RestoreStart",
    "StartOutcome",
    "StartStrategy",
    "WarmStart",
]
