"""Multi-host FaaS cluster (extension beyond the paper's single node).

The paper evaluates one server; a deployable platform schedules
sandboxes across many.  :class:`FaaSCluster` runs one
:class:`~repro.faas.platform.FaaSPlatform` per host over a shared
engine and routes each trigger with a pluggable placement policy.
Functions are registered (and optionally pre-warmed) on every host, so
any host can serve any function — the provisioned-concurrency model.

Placement policies:

* ``round-robin`` — cycle hosts (baseline);
* ``least-loaded`` — host with the fewest in-flight invocations;
* ``warm-affinity`` — prefer hosts with a pooled warm sandbox for the
  function, falling back to least-loaded (avoids needless cold starts).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.hot_resume import HorseConfig
from repro.faas.function import FunctionSpec
from repro.faas.invocation import Invocation, StartType
from repro.faas.platform import FaaSPlatform
from repro.hypervisor.platform import platform_by_name
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class PlacementPolicy(abc.ABC):
    """Chooses the host index for one trigger."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, cluster: "FaaSCluster", function_name: str) -> int:
        """Return the index of the host to route to."""


class RoundRobinPlacement(PlacementPolicy):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, cluster: "FaaSCluster", function_name: str) -> int:
        index = self._next % len(cluster.hosts)
        self._next += 1
        return index


class LeastLoadedPlacement(PlacementPolicy):
    name = "least-loaded"

    def choose(self, cluster: "FaaSCluster", function_name: str) -> int:
        return min(
            range(len(cluster.hosts)),
            key=lambda i: (cluster.in_flight[i], i),
        )


class WarmAffinityPlacement(PlacementPolicy):
    name = "warm-affinity"

    def __init__(self) -> None:
        self._fallback = LeastLoadedPlacement()

    def choose(self, cluster: "FaaSCluster", function_name: str) -> int:
        warm = [
            i
            for i, host in enumerate(cluster.hosts)
            if host.pool.size(function_name) > 0
        ]
        if warm:
            return min(warm, key=lambda i: (cluster.in_flight[i], i))
        return self._fallback.choose(cluster, function_name)


@dataclass
class ClusterStats:
    triggers: int = 0
    per_host_triggers: Dict[int, int] = field(default_factory=dict)
    cold_fallbacks: int = 0


class FaaSCluster:
    """A fleet of single-host platforms behind one routing layer."""

    def __init__(
        self,
        hosts: int,
        platform_name: str = "firecracker",
        seed: int = 0,
        placement: Optional[PlacementPolicy] = None,
        horse_config: HorseConfig = HorseConfig.full(),
    ) -> None:
        if hosts < 1:
            raise ValueError(f"cluster needs >= 1 host, got {hosts}")
        self.engine = Engine()
        root = RngRegistry(seed)
        self.hosts: List[FaaSPlatform] = [
            FaaSPlatform(
                engine=self.engine,
                virt=platform_by_name(platform_name),
                rngs=root.fork(f"host-{index}"),
                horse_config=horse_config,
            )
            for index in range(hosts)
        ]
        self.placement = placement or WarmAffinityPlacement()
        self.in_flight: Dict[int, int] = {i: 0 for i in range(hosts)}
        self.stats = ClusterStats()

    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        """Deploy the function on every host."""
        for host in self.hosts:
            host.register(spec)

    def provision_warm(
        self, function_name: str, per_host: int, use_horse: Optional[bool] = None
    ) -> None:
        for host in self.hosts:
            host.provision_warm(function_name, count=per_host, use_horse=use_horse)

    # ------------------------------------------------------------------
    def trigger(
        self, function_name: str, start_type: StartType, **kwargs
    ) -> Invocation:
        """Route one trigger; warm-path misses fall back to cold on the
        chosen host (counted in stats)."""
        index = self.placement.choose(self, function_name)
        host = self.hosts[index]
        self.stats.triggers += 1
        self.stats.per_host_triggers[index] = (
            self.stats.per_host_triggers.get(index, 0) + 1
        )
        effective = start_type
        if (
            start_type in (StartType.WARM, StartType.HORSE)
            and host.pool.size(function_name) == 0
        ):
            effective = StartType.COLD
            self.stats.cold_fallbacks += 1
        self.in_flight[index] += 1
        invocation = host.trigger(function_name, effective, **kwargs)
        self.engine.schedule_at(
            invocation.exec_end_ns,
            lambda: self._finish(index),
            label=f"cluster-finish:{invocation.invocation_id}",
        )
        return invocation

    def _finish(self, index: int) -> None:
        self.in_flight[index] -= 1

    # ------------------------------------------------------------------
    def total_pooled(self, function_name: str) -> int:
        return sum(host.pool.size(function_name) for host in self.hosts)

    def __repr__(self) -> str:
        return (
            f"FaaSCluster(hosts={len(self.hosts)}, "
            f"placement={self.placement.name}, triggers={self.stats.triggers})"
        )
