"""Multi-host FaaS cluster (extension beyond the paper's single node).

The paper evaluates one server; a deployable platform schedules
sandboxes across many.  :class:`FaaSCluster` runs one
:class:`~repro.faas.platform.FaaSPlatform` per host over a shared
engine and routes each trigger with a pluggable placement policy.
Functions are registered (and optionally pre-warmed) on every host, so
any host can serve any function — the provisioned-concurrency model.

Placement policies:

* ``round-robin`` — cycle hosts (baseline);
* ``least-loaded`` — host with the fewest in-flight invocations;
* ``warm-affinity`` — prefer hosts with a pooled warm sandbox for the
  function, falling back to least-loaded (avoids needless cold starts).

Every policy chooses among the cluster's *routable* hosts only: nodes
marked down (crashed) are skipped, as is any node vetoed by the
cluster's ``host_gate`` (the resilience layer installs a per-node
circuit breaker there).  Warm-path misses never silently cold-start:
the degradation from the requested start type is explicit, counted per
transition in :class:`ClusterStats` and traceable per trigger.
"""

from __future__ import annotations

import abc
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.core.hot_resume import HorseConfig
from repro.faas.function import FunctionSpec
from repro.faas.invocation import Invocation, StartType
from repro.faas.platform import FaaSPlatform
from repro.hypervisor.platform import platform_by_name
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


class NoHealthyHostError(Exception):
    """Every host is down, excluded, or gated — nothing can serve."""


@dataclass
class NodeHealth:
    """One host's availability, as the control plane sees it."""

    up: bool = True
    crashes: int = 0
    recoveries: int = 0
    last_change_ns: int = 0


def plan_start(
    host: FaaSPlatform, function_name: str, requested: StartType
) -> Tuple[StartType, Optional[str]]:
    """The degradation decision for one trigger on one host.

    Warm-path requests (HORSE hot resume, vanilla warm resume) need a
    pooled sandbox; when the host's pool is empty the trigger falls
    through to a cold start.  Returns ``(effective, reason)`` where
    *reason* is None for an undegraded start and a ``"<from>->cold"``
    tag otherwise — callers must surface it, never swallow it.
    """
    if (
        requested in (StartType.WARM, StartType.HORSE)
        and host.pool.size(function_name) == 0
    ):
        return StartType.COLD, f"{requested.value}->cold"
    return requested, None


class PlacementPolicy(abc.ABC):
    """Chooses the host index for one trigger."""

    name: str = "abstract"

    def choose(self, cluster: "FaaSCluster", function_name: str) -> int:
        """Return the index of the host to route to.

        Only routable hosts (healthy, not excluded, not vetoed by the
        host gate) are returned; raises :class:`NoHealthyHostError`
        when there are none.
        """
        return self.choose_from(
            cluster, function_name, cluster.routable_hosts()
        )

    @abc.abstractmethod
    def choose_from(
        self, cluster: "FaaSCluster", function_name: str, candidates: List[int]
    ) -> int:
        """Pick one of *candidates* (a non-empty, ascending routable
        list).  Callers that already computed routability — the
        resilient gateway checks it on every launch attempt — use this
        directly to avoid recomputing it inside the policy.
        """


class RoundRobinPlacement(PlacementPolicy):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose_from(
        self, cluster: "FaaSCluster", function_name: str, candidates: List[int]
    ) -> int:
        index = candidates[self._next % len(candidates)]
        self._next += 1
        return index


def _least_loaded_of(cluster: "FaaSCluster", candidates: List[int]) -> int:
    """Lowest in-flight count among *candidates*, lowest index on ties.

    Candidates arrive in ascending index order, so a strict ``<`` on the
    in-flight count preserves the ``min`` over ``(in_flight, i)`` tuple
    semantics without allocating a key tuple per host.  Placement runs
    once per launch attempt — including every retry of the chaos study's
    no-host rewait loop — so this is a hot path.
    """
    in_flight = cluster.in_flight
    best = candidates[0]
    best_load = in_flight[best]
    for i in candidates:
        load = in_flight[i]
        if load < best_load:
            best = i
            best_load = load
    return best


class LeastLoadedPlacement(PlacementPolicy):
    name = "least-loaded"

    def choose_from(
        self, cluster: "FaaSCluster", function_name: str, candidates: List[int]
    ) -> int:
        return _least_loaded_of(cluster, candidates)


class WarmAffinityPlacement(PlacementPolicy):
    name = "warm-affinity"

    def choose_from(
        self, cluster: "FaaSCluster", function_name: str, candidates: List[int]
    ) -> int:
        hosts = cluster.hosts
        warm = [i for i in candidates if hosts[i].pool.size(function_name) > 0]
        return _least_loaded_of(cluster, warm if warm else candidates)


@dataclass
class ClusterStats:
    triggers: int = 0
    per_host_triggers: Dict[int, int] = field(default_factory=dict)
    cold_fallbacks: int = 0
    #: explicit degradations, counted per transition tag ("horse->cold")
    degraded: Dict[str, int] = field(default_factory=dict)
    #: host crashes / recoveries observed by the routing layer
    crashes: int = 0
    recoveries: int = 0


class FaaSCluster:
    """A fleet of single-host platforms behind one routing layer."""

    def __init__(
        self,
        hosts: int,
        platform_name: str = "firecracker",
        seed: int = 0,
        placement: Optional[PlacementPolicy] = None,
        horse_config: HorseConfig = HorseConfig.full(),
        engine: Optional[Engine] = None,
    ) -> None:
        if hosts < 1:
            raise ValueError(f"cluster needs >= 1 host, got {hosts}")
        # Several clusters may share one engine (the sharded control
        # plane runs one cluster per gateway shard on the cell's clock).
        self.engine = engine if engine is not None else Engine()
        root = RngRegistry(seed)
        self.hosts: List[FaaSPlatform] = [
            FaaSPlatform(
                engine=self.engine,
                virt=platform_by_name(platform_name),
                rngs=root.fork(f"host-{index}"),
                horse_config=horse_config,
            )
            for index in range(hosts)
        ]
        self.placement = placement or WarmAffinityPlacement()
        self.in_flight: Dict[int, int] = {i: 0 for i in range(hosts)}
        self.stats = ClusterStats()
        self.health: List[NodeHealth] = [NodeHealth() for _ in range(hosts)]
        #: Optional routing veto consulted per host (the resilience
        #: layer points this at its per-node circuit breakers).
        self.host_gate: Optional[Callable[[int], bool]] = None
        self._excluded: Set[int] = set()
        #: host index -> accelerator tags ("gpu", ...).  Empty dict =
        #: homogeneous cluster; dispatch policies skip the eligibility
        #: filter entirely then, keeping the common path allocation-free.
        self.accelerators: Dict[int, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Health & routability
    # ------------------------------------------------------------------
    def routable_or_empty(self) -> List[int]:
        """Hosts a trigger may be routed to right now — empty when none.

        The resilient gateway checks routability on every attempt and
        capacity wake; returning an empty list lets it branch instead
        of paying exception machinery when nothing is routable.
        """
        gate = self.host_gate
        excluded = self._excluded
        return [
            i
            for i, health in enumerate(self.health)
            if health.up
            and i not in excluded
            and (gate is None or gate(i))
        ]

    def routable_hosts(self) -> List[int]:
        """Hosts a trigger may be routed to right now.

        Raises :class:`NoHealthyHostError` when empty so no caller can
        accidentally treat "nowhere to go" as index 0.
        """
        candidates = self.routable_or_empty()
        if not candidates:
            raise NoHealthyHostError(
                f"no routable host ({len(self.hosts)} total)"
            )
        return candidates

    @contextmanager
    def excluding(self, *indices: int) -> Iterator[None]:
        """Temporarily hide hosts from routing (hedged requests must
        land on a different node than their primary)."""
        previous = self._excluded
        self._excluded = previous | set(indices)
        try:
            yield
        finally:
            self._excluded = previous

    def mark_down(self, index: int, now_ns: Optional[int] = None) -> None:
        """Take a host out of routing (crash detected)."""
        health = self.health[index]
        if not health.up:
            return
        health.up = False
        health.crashes += 1
        health.last_change_ns = self.engine.now if now_ns is None else now_ns
        self.stats.crashes += 1

    def mark_up(self, index: int, now_ns: Optional[int] = None) -> None:
        """Return a recovered host to routing."""
        health = self.health[index]
        if health.up:
            return
        health.up = True
        health.recoveries += 1
        health.last_change_ns = self.engine.now if now_ns is None else now_ns
        self.stats.recoveries += 1

    def crash_host(self, index: int, now_ns: Optional[int] = None) -> int:
        """Crash one host: mark it down and destroy its warm pool.

        Returns the number of pooled sandboxes lost.  In-flight
        invocations on the host are the resilience layer's problem (it
        tracks them and re-dispatches); the cluster only owns routing
        state and pooled capacity.
        """
        self.mark_down(index, now_ns)
        return self.hosts[index].fail_all_pooled()

    def recover_host(self, index: int, now_ns: Optional[int] = None) -> None:
        """Bring a crashed host back (empty-pooled until re-warmed)."""
        self.mark_up(index, now_ns)

    # ------------------------------------------------------------------
    def tag_accelerator(self, index: int, *tags: str) -> None:
        """Attach accelerator tags ("gpu", ...) to one host.

        A function whose spec names an ``accelerator`` is only eligible
        for hosts carrying that tag.  Tags survive crash/recovery — the
        hardware does not un-plug when the node reboots.
        """
        if not 0 <= index < len(self.hosts):
            raise ValueError(
                f"host index {index} out of range (cluster has "
                f"{len(self.hosts)} hosts)"
            )
        cleaned = tuple(sorted({t.strip() for t in tags if t.strip()}))
        if not cleaned:
            raise ValueError("tag_accelerator needs at least one tag")
        existing = self.accelerators.get(index, ())
        self.accelerators[index] = tuple(sorted(set(existing) | set(cleaned)))

    # ------------------------------------------------------------------
    def register(self, spec: FunctionSpec) -> None:
        """Deploy the function on every host."""
        for host in self.hosts:
            host.register(spec)

    def provision_warm(
        self, function_name: str, per_host: int, use_horse: Optional[bool] = None
    ) -> None:
        for host in self.hosts:
            host.provision_warm(function_name, count=per_host, use_horse=use_horse)

    # ------------------------------------------------------------------
    def trigger(
        self, function_name: str, start_type: StartType, **kwargs
    ) -> Invocation:
        """Route one trigger via the placement policy."""
        index = self.placement.choose(self, function_name)
        return self.trigger_on(index, function_name, start_type, **kwargs)

    def trigger_on(
        self, index: int, function_name: str, start_type: StartType, **kwargs
    ) -> Invocation:
        """Fire one trigger on a specific host.

        Warm-path pool misses degrade to cold *explicitly*: the
        transition is counted in ``stats.degraded`` (and the legacy
        ``cold_fallbacks`` counter) and recorded on the host's trace —
        never silently.
        """
        if not self.health[index].up:
            raise NoHealthyHostError(f"host {index} is down")
        host = self.hosts[index]
        self.stats.triggers += 1
        self.stats.per_host_triggers[index] = (
            self.stats.per_host_triggers.get(index, 0) + 1
        )
        effective, degraded = plan_start(host, function_name, start_type)
        if degraded is not None:
            self.stats.degraded[degraded] = self.stats.degraded.get(degraded, 0) + 1
            self.stats.cold_fallbacks += 1
            if host.obs.enabled:
                host.obs.metrics.counter(
                    f"cluster.degrade.{degraded}",
                    "warm-path miss degraded to cold",
                ).inc()
            host.trace.record(
                self.engine.now, "cluster", "degrade",
                function=function_name, host=index, transition=degraded,
            )
        self.in_flight[index] += 1
        try:
            invocation = host.trigger(function_name, effective, **kwargs)
        except BaseException:
            # A failed trigger (injected resume fault, pool error) must
            # not leak in-flight accounting — placement would otherwise
            # see a phantom load on this host forever.
            self.in_flight[index] -= 1
            raise
        self.engine.schedule_at(
            invocation.exec_end_ns,
            lambda: self._finish(index),
            label=f"cluster-finish:{invocation.invocation_id}",
            transient=True,
        )
        return invocation

    def _finish(self, index: int) -> None:
        self.in_flight[index] -= 1

    # ------------------------------------------------------------------
    def total_pooled(self, function_name: str) -> int:
        return sum(host.pool.size(function_name) for host in self.hosts)

    def __repr__(self) -> str:
        up = sum(h.up for h in self.health)
        return (
            f"FaaSCluster(hosts={len(self.hosts)}, up={up}, "
            f"placement={self.placement.name}, triggers={self.stats.triggers})"
        )
