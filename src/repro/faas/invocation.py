"""Invocation records: the latency pipeline of one function trigger.

The paper's metrics all derive from two intervals:

* **initialization** — trigger to sandbox-ready (the cost of cold boot,
  snapshot restore, warm resume, or HORSE hot resume);
* **execution** — the function body's runtime.

``init_percentage`` (initialization as a share of the whole pipeline)
is the quantity of Table 1, Figure 1 and Figure 4.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_invocation_seq = itertools.count()


class StartType(enum.Enum):
    """How the sandbox for an invocation was obtained."""

    COLD = "cold"
    RESTORE = "restore"
    WARM = "warm"
    HORSE = "horse"


@dataclass(slots=True)
class Invocation:
    """Timeline and outcome of one trigger."""

    function_name: str
    trigger_ns: int
    start_type: Optional[StartType] = None
    invocation_id: int = field(default_factory=lambda: next(_invocation_seq))
    sandbox_id: Optional[str] = None
    sandbox_ready_ns: Optional[int] = None
    exec_start_ns: Optional[int] = None
    exec_end_ns: Optional[int] = None
    #: Delay injected by interference (e.g. merge-thread preemption).
    interference_ns: int = 0
    result: Any = None
    error: Optional[str] = None
    #: True once the invocation was abandoned (e.g. its host crashed
    #: mid-execution); a cancelled invocation never counts as completed.
    cancelled: bool = False
    #: The sandbox serving this invocation (set by the gateway) — lets
    #: failure handling above the start-strategy layer reclaim it.
    sandbox: Any = field(default=None, repr=False, compare=False)
    #: The gateway's scheduled completion event, cancellable by the
    #: resilience layer when the serving host crashes mid-execution.
    completion_event: Any = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.exec_end_ns is not None and not self.cancelled

    @property
    def initialization_ns(self) -> int:
        """Trigger -> sandbox ready (the paper's 'Initialization')."""
        if self.sandbox_ready_ns is None:
            raise ValueError(f"invocation {self.invocation_id} has no ready time")
        return self.sandbox_ready_ns - self.trigger_ns

    @property
    def execution_ns(self) -> int:
        if self.exec_start_ns is None or self.exec_end_ns is None:
            raise ValueError(f"invocation {self.invocation_id} not executed")
        return self.exec_end_ns - self.exec_start_ns

    @property
    def total_ns(self) -> int:
        """Trigger -> function end: the full pipeline."""
        if self.exec_end_ns is None:
            raise ValueError(f"invocation {self.invocation_id} not completed")
        return self.exec_end_ns - self.trigger_ns

    def record_spans(self, tracer: Any, pid: int = 0, tid: int = 0) -> None:
        """Emit the two pipeline intervals as spans on *tracer*.

        Called by the gateway while its ``invocation`` root span is
        still open, so both children parent to it implicitly.  *tracer*
        is duck-typed (:class:`repro.obs.span.Tracer`) to keep this
        module free of an obs dependency.
        """
        tracer.record_span(
            "initialization",
            self.trigger_ns,
            self.initialization_ns,
            category="faas",
            pid=pid,
            tid=tid,
            start=self.start_type.value if self.start_type else "?",
        )
        tracer.record_span(
            "execution",
            self.exec_start_ns,
            self.execution_ns,
            category="faas",
            pid=pid,
            tid=tid,
            interference_ns=self.interference_ns,
        )

    @property
    def init_percentage(self) -> float:
        """Initialization share of the pipeline, in percent (Fig. 1/4)."""
        total = self.total_ns
        if total == 0:
            return 0.0
        return 100.0 * self.initialization_ns / total

    def __repr__(self) -> str:
        start = self.start_type.value if self.start_type else "?"
        status = "done" if self.completed else "in-flight"
        return (
            f"Invocation(#{self.invocation_id} {self.function_name} "
            f"{start} {status})"
        )
