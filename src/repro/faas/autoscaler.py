"""Provisioned-concurrency autoscaler.

The premium always-warm options the paper leans on (Lambda Provisioned
Concurrency, Azure Premium, Alibaba Provisioned Mode) let tenants fix a
pool size; providers additionally auto-scale that target from observed
traffic.  This autoscaler closes that loop for the reproduction's
platform: it watches per-function trigger rates over a sliding window
and resizes the warm pool toward

    target = ceil(rate * expected_busy_time * headroom)

(Little's law with a safety factor), clamped to [min, max].  Scaling
up provisions HORSE-paused sandboxes ahead of demand; scaling down
lets keep-alive evict the excess by lowering the protected quota.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.faas.platform import FaaSPlatform
from repro.sim.event import Event, EventPriority
from repro.sim.units import SECOND, seconds


@dataclass(frozen=True)
class AutoscalerConfig:
    window_ns: int = seconds(10)        # rate-estimation window
    period_ns: int = seconds(2)         # reconciliation period
    headroom: float = 1.5               # safety factor over Little's law
    min_pool: int = 1
    max_pool: int = 32

    def __post_init__(self) -> None:
        if self.window_ns <= 0 or self.period_ns <= 0:
            raise ValueError("window and period must be positive")
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {self.headroom}")
        if not 0 <= self.min_pool <= self.max_pool:
            raise ValueError(
                f"bad pool bounds [{self.min_pool}, {self.max_pool}]"
            )


class PoolTargetTracker:
    """Engine-free sliding-window rate → Little's-law pool target.

    The pure core of the autoscaler, shared with the prewarm replayer's
    budget protection (:mod:`repro.faas.prewarm`): callers pass the
    current instant explicitly, so the tracker works against any clock
    (sim engine, replay stream) without holding a platform reference.
    """

    __slots__ = (
        "window_ns",
        "expected_busy_ns",
        "headroom",
        "min_pool",
        "max_pool",
        "_arrivals",
    )

    def __init__(
        self,
        window_ns: int,
        expected_busy_ns: int,
        headroom: float = 1.5,
        min_pool: int = 0,
        max_pool: int = 32,
    ) -> None:
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        if expected_busy_ns <= 0:
            raise ValueError(
                f"expected busy time must be positive, got {expected_busy_ns}"
            )
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {headroom}")
        if not 0 <= min_pool <= max_pool:
            raise ValueError(f"bad pool bounds [{min_pool}, {max_pool}]")
        self.window_ns = window_ns
        self.expected_busy_ns = expected_busy_ns
        self.headroom = headroom
        self.min_pool = min_pool
        self.max_pool = max_pool
        self._arrivals: Deque[int] = deque()

    def observe(self, now_ns: int) -> None:
        """Record one arrival at *now_ns*."""
        self._arrivals.append(now_ns)
        self._expire(now_ns)

    def _expire(self, now_ns: int) -> None:
        horizon = now_ns - self.window_ns
        arrivals = self._arrivals
        while arrivals and arrivals[0] < horizon:
            arrivals.popleft()

    def rate_per_second(self, now_ns: int) -> float:
        self._expire(now_ns)
        return len(self._arrivals) / (self.window_ns / SECOND)

    def target(self, now_ns: int) -> int:
        """Little's law with headroom, clamped to the pool bounds."""
        rate = self.rate_per_second(now_ns)
        busy_s = self.expected_busy_ns / SECOND
        raw = math.ceil(rate * busy_s * self.headroom)
        return max(self.min_pool, min(self.max_pool, raw))


class PoolAutoscaler:
    """Sliding-window rate tracker + periodic pool reconciliation."""

    def __init__(
        self,
        faas: FaaSPlatform,
        function_name: str,
        expected_busy_ns: int,
        config: AutoscalerConfig = AutoscalerConfig(),
    ) -> None:
        self.faas = faas
        self.function_name = function_name
        self.expected_busy_ns = expected_busy_ns
        self.config = config
        self.tracker = PoolTargetTracker(
            window_ns=config.window_ns,
            expected_busy_ns=expected_busy_ns,
            headroom=config.headroom,
            min_pool=config.min_pool,
            max_pool=config.max_pool,
        )
        self._tick_event: Optional[Event] = None
        self._running = False
        self.reconciliations = 0
        self.scale_ups = 0
        self.current_target = config.min_pool

    # ------------------------------------------------------------------
    def observe_trigger(self) -> None:
        """Record one trigger at the current instant."""
        self.tracker.observe(self.faas.engine.now)

    def observed_rate_per_second(self) -> float:
        return self.tracker.rate_per_second(self.faas.engine.now)

    def desired_pool_size(self) -> int:
        """Little's law with headroom, clamped to the config bounds."""
        return self.tracker.target(self.faas.engine.now)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _schedule_tick(self) -> None:
        self._tick_event = self.faas.engine.schedule_after(
            self.config.period_ns,
            self._reconcile,
            priority=EventPriority.BACKGROUND,
            label=f"autoscale:{self.function_name}",
        )

    def _reconcile(self) -> None:
        if not self._running:
            return
        self.reconciliations += 1
        target = self.desired_pool_size()
        self.current_target = target
        pooled = self.faas.pool.size(self.function_name)
        if pooled < target:
            self.faas.provision_warm(self.function_name, count=target - pooled)
            self.scale_ups += 1
        # Scale-down: shrink the protected quota; keep-alive evicts the
        # rest naturally (no abrupt teardown of warm capacity).
        self.faas.pool.mark_provisioned(self.function_name, target)
        self._schedule_tick()
