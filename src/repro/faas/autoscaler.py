"""Provisioned-concurrency autoscaler.

The premium always-warm options the paper leans on (Lambda Provisioned
Concurrency, Azure Premium, Alibaba Provisioned Mode) let tenants fix a
pool size; providers additionally auto-scale that target from observed
traffic.  This autoscaler closes that loop for the reproduction's
platform: it watches per-function trigger rates over a sliding window
and resizes the warm pool toward

    target = ceil(rate * expected_busy_time * headroom)

(Little's law with a safety factor), clamped to [min, max].  Scaling
up provisions HORSE-paused sandboxes ahead of demand; scaling down
lets keep-alive evict the excess by lowering the protected quota.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.faas.platform import FaaSPlatform
from repro.sim.event import Event, EventPriority
from repro.sim.units import SECOND, seconds


@dataclass(frozen=True)
class AutoscalerConfig:
    window_ns: int = seconds(10)        # rate-estimation window
    period_ns: int = seconds(2)         # reconciliation period
    headroom: float = 1.5               # safety factor over Little's law
    min_pool: int = 1
    max_pool: int = 32

    def __post_init__(self) -> None:
        if self.window_ns <= 0 or self.period_ns <= 0:
            raise ValueError("window and period must be positive")
        if self.headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {self.headroom}")
        if not 0 <= self.min_pool <= self.max_pool:
            raise ValueError(
                f"bad pool bounds [{self.min_pool}, {self.max_pool}]"
            )


class PoolAutoscaler:
    """Sliding-window rate tracker + periodic pool reconciliation."""

    def __init__(
        self,
        faas: FaaSPlatform,
        function_name: str,
        expected_busy_ns: int,
        config: AutoscalerConfig = AutoscalerConfig(),
    ) -> None:
        if expected_busy_ns <= 0:
            raise ValueError(
                f"expected busy time must be positive, got {expected_busy_ns}"
            )
        self.faas = faas
        self.function_name = function_name
        self.expected_busy_ns = expected_busy_ns
        self.config = config
        self._arrivals: Deque[int] = deque()
        self._tick_event: Optional[Event] = None
        self._running = False
        self.reconciliations = 0
        self.scale_ups = 0
        self.current_target = config.min_pool

    # ------------------------------------------------------------------
    def observe_trigger(self) -> None:
        """Record one trigger at the current instant."""
        self._arrivals.append(self.faas.engine.now)
        self._expire_old()

    def _expire_old(self) -> None:
        horizon = self.faas.engine.now - self.config.window_ns
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()

    def observed_rate_per_second(self) -> float:
        self._expire_old()
        window_s = self.config.window_ns / SECOND
        return len(self._arrivals) / window_s

    def desired_pool_size(self) -> int:
        """Little's law with headroom, clamped to the config bounds."""
        rate = self.observed_rate_per_second()
        busy_s = self.expected_busy_ns / SECOND
        raw = math.ceil(rate * busy_s * self.config.headroom)
        return max(self.config.min_pool, min(self.config.max_pool, raw))

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None

    def _schedule_tick(self) -> None:
        self._tick_event = self.faas.engine.schedule_after(
            self.config.period_ns,
            self._reconcile,
            priority=EventPriority.BACKGROUND,
            label=f"autoscale:{self.function_name}",
        )

    def _reconcile(self) -> None:
        if not self._running:
            return
        self.reconciliations += 1
        target = self.desired_pool_size()
        self.current_target = target
        pooled = self.faas.pool.size(self.function_name)
        if pooled < target:
            self.faas.provision_warm(self.function_name, count=target - pooled)
            self.scale_ups += 1
        # Scale-down: shrink the protected quota; keep-alive evicts the
        # rest naturally (no abrupt teardown of warm capacity).
        self.faas.pool.mark_provisioned(self.function_name, target)
        self._schedule_tick()
