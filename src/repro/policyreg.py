"""One convention for every policy axis: a string-spec registry.

The repo grew three pluggable axes — event schedulers
(:mod:`repro.sim.schedulers`), prewarm/keep-alive policies
(:mod:`repro.faas.prewarm`) and dispatch policies
(:mod:`repro.resilience.policies`) — and, historically, three slightly
different selection shapes.  :class:`PolicyRegistry` is the shared
mechanism behind all of them:

* **string specs** — a policy is named by a string, either an exact
  family name (``"hybrid"``, ``"pull"``) or a parameterized form the
  family factory parses itself (``"hybrid-10"``, ``"pull-4"``);
* **registration** — ``register(family, factory)`` adds a family;
  factories receive the *full* spec string so parameter syntax stays
  the family's own business (and so error messages can be precise);
* **process default** — ``default()`` resolves, in order, the
  ``set_default()`` override, the axis's ``REPRO_*`` environment
  variable (ignored if it names an unknown policy — batch sweeps must
  not die on a stale env), then the built-in;
* **discovery** — ``kinds()`` lists the registered spec syntaxes, which
  is what ``repro list --policies`` prints.

Determinism note: registries hold *factories*, not instances — every
``make()`` returns a fresh policy object so two simulations never share
mutable policy state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class _Family:
    name: str
    factory: Callable[[str], object]
    syntax: str
    #: when True, specs of the shape ``"<name>-<param>"`` also route to
    #: this family's factory (which parses — and may reject — the param)
    parameterized: bool


class PolicyRegistry:
    """String-spec → factory registry for one policy axis."""

    def __init__(self, axis: str, env_var: str, builtin: str) -> None:
        self.axis = axis
        self.env_var = env_var
        self._builtin = builtin
        self._families: Dict[str, _Family] = {}
        self._override: Optional[str] = None

    # ------------------------------------------------------------------
    def register(
        self,
        family: str,
        factory: Callable[[str], object],
        syntax: Optional[str] = None,
        parameterized: bool = False,
    ) -> None:
        """Add a policy family.  Rejects duplicate names: silently
        replacing a family would make ``make()`` results depend on
        import order."""
        if not family or family != family.strip():
            raise ValueError(f"bad {self.axis} policy family name {family!r}")
        if family in self._families:
            raise ValueError(
                f"{self.axis} policy {family!r} is already registered"
            )
        self._families[family] = _Family(
            name=family,
            factory=factory,
            syntax=syntax or family,
            parameterized=parameterized,
        )

    def make(self, spec: str) -> object:
        """Instantiate a fresh policy from a spec string."""
        family = self._families.get(spec)
        if family is None:
            # Parameterized form: the longest registered family that
            # prefixes "<family>-" wins (longest so e.g. a future
            # "pull-batch" family shadows "pull" + param "batch-...").
            best = None
            for candidate in self._families.values():
                if candidate.parameterized and spec.startswith(
                    candidate.name + "-"
                ):
                    if best is None or len(candidate.name) > len(best.name):
                        best = candidate
            family = best
        if family is None:
            raise ValueError(
                f"unknown {self.axis} policy {spec!r} "
                f"(want {' | '.join(self.kinds())})"
            )
        return family.factory(spec)

    def kinds(self) -> List[str]:
        """Registered spec syntaxes, sorted (stable for docs/CLI)."""
        return sorted(f.syntax for f in self._families.values())

    def families(self) -> List[str]:
        return sorted(self._families)

    # ------------------------------------------------------------------
    def set_default(self, spec: str) -> str:
        """Set the process-default spec; returns the previous effective
        default.  Validates eagerly — a typo should fail at the call
        site, not inside the first simulation that resolves it."""
        self.make(spec)
        previous = self.default()
        self._override = spec
        return previous

    def default(self) -> str:
        """Effective default: override > env var > builtin.

        The env var is read lazily (tests monkeypatch it) and ignored
        when invalid — same contract as ``REPRO_SIM_SCHEDULER``.
        """
        if self._override is not None:
            return self._override
        env = os.environ.get(self.env_var, "").strip()
        if env:
            try:
                self.make(env)
            except ValueError:
                return self._builtin
            return env
        return self._builtin
