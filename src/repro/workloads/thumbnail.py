"""Long-running workload: the SEBS thumbnail generator (paper §5.4).

The colocation study triggers "the thumbnail generator from the SEBS
benchmark suite, which generates thumbnails from images stored on an
Amazon S3 bucket".  We implement a real (if tiny) nearest-neighbour
downscaler over an in-memory object store standing in for S3, with the
duration envelope of the paper's long-running class (> 1 s; fetch +
decode + scale + store phases).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.base import Workload, WorkloadCategory
from repro.sim.units import milliseconds


@dataclass(frozen=True)
class Image:
    """A trivially-encoded grayscale image: row-major pixel bytes."""

    width: int
    height: int
    pixels: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(f"bad dimensions {self.width}x{self.height}")
        if len(self.pixels) != self.width * self.height:
            raise ValueError(
                f"pixel buffer has {len(self.pixels)} entries for "
                f"{self.width}x{self.height}"
            )

    def at(self, x: int, y: int) -> int:
        return self.pixels[y * self.width + x]


class ObjectStore:
    """In-memory stand-in for the S3 bucket SEBS reads and writes."""

    def __init__(self) -> None:
        self._objects: Dict[str, Image] = {}

    def put(self, key: str, image: Image) -> None:
        self._objects[key] = image

    def get(self, key: str) -> Image:
        try:
            return self._objects[key]
        except KeyError:
            raise KeyError(f"no object {key!r} in bucket") from None

    def __contains__(self, key: str) -> bool:
        return key in self._objects

    def keys(self) -> List[str]:
        return sorted(self._objects)


@dataclass(frozen=True)
class ThumbnailRequest:
    source_key: str
    target_key: str
    target_width: int
    target_height: int


class ThumbnailWorkload(Workload):
    """Nearest-neighbour downscale: bucket -> thumbnail -> bucket."""

    name = "thumbnail"
    category = WorkloadCategory.LONG_RUNNING

    def __init__(
        self,
        store: ObjectStore | None = None,
        mean_duration_ns: int = milliseconds(1800),
        sigma: float = 0.18,
    ) -> None:
        self.store = store if store is not None else ObjectStore()
        self.mean_duration_ns = mean_duration_ns
        self.sigma = sigma

    # ------------------------------------------------------------------
    def execute(self, payload: ThumbnailRequest) -> Image:
        if not isinstance(payload, ThumbnailRequest):
            raise TypeError(
                f"thumbnail expects ThumbnailRequest, got {type(payload)}"
            )
        if payload.target_width <= 0 or payload.target_height <= 0:
            raise ValueError("thumbnail dimensions must be positive")
        source = self.store.get(payload.source_key)
        pixels: List[int] = []
        for y in range(payload.target_height):
            src_y = min(source.height - 1, y * source.height // payload.target_height)
            for x in range(payload.target_width):
                src_x = min(
                    source.width - 1, x * source.width // payload.target_width
                )
                pixels.append(source.at(src_x, src_y))
        thumbnail = Image(
            width=payload.target_width,
            height=payload.target_height,
            pixels=tuple(pixels),
        )
        self.store.put(payload.target_key, thumbnail)
        return thumbnail

    def sample_duration_ns(self, rng: random.Random) -> int:
        # Log-normal service time: heavy right tail, as image sizes vary.
        import math

        mu = math.log(self.mean_duration_ns) - 0.5 * self.sigma**2
        return max(round(milliseconds(200)), round(rng.lognormvariate(mu, self.sigma)))

    def example_payload(self, rng: random.Random) -> ThumbnailRequest:
        key = f"images/img-{rng.randint(0, 9999):04d}.raw"
        if key not in self.store:
            width = rng.randint(64, 256)
            height = rng.randint(64, 256)
            self.store.put(
                key,
                Image(
                    width=width,
                    height=height,
                    pixels=tuple(rng.randint(0, 255) for _ in range(width * height)),
                ),
            )
        return ThumbnailRequest(
            source_key=key,
            target_key=key.replace("images/", "thumbs/"),
            target_width=32,
            target_height=32,
        )
