"""Workload interface.

A workload couples two things:

* **real function logic** — ``execute(payload)`` actually computes the
  function's result (the firewall really consults an allow list, the
  NAT really rewrites headers, ...), so correctness is testable;
* **a duration envelope** — ``sample_duration_ns(rng)`` draws the
  simulated execution time charged on the sandbox, calibrated to the
  paper's measured means (Table 1: 17 us / 1.5 us / 0.7 us for the
  three uLL categories; >1 s for the long-running thumbnail class).

Separating the two lets the latency pipeline stay calibrated while the
logic stays real — the substitution rule of DESIGN.md §2.
"""

from __future__ import annotations

import abc
import enum
import random
from typing import Any


class WorkloadCategory(enum.Enum):
    """The paper's workload classes."""

    CATEGORY_1 = "category-1"     # uLL, <= 20 us (stateless firewall)
    CATEGORY_2 = "category-2"     # uLL, ~1 us (NAT)
    CATEGORY_3 = "category-3"     # uLL, 100s of ns (array filter)
    LONG_RUNNING = "long-running" # > 1 s (thumbnail generator)
    BACKGROUND = "background"     # continuous CPU hog (sysbench)

    @property
    def is_ull(self) -> bool:
        return self in (
            WorkloadCategory.CATEGORY_1,
            WorkloadCategory.CATEGORY_2,
            WorkloadCategory.CATEGORY_3,
        )


class Workload(abc.ABC):
    """One deployable function body."""

    #: Unique registry name, e.g. ``"firewall"``.
    name: str = "abstract"
    category: WorkloadCategory = WorkloadCategory.CATEGORY_1

    @abc.abstractmethod
    def execute(self, payload: Any) -> Any:
        """Run the real function logic on *payload*."""

    @abc.abstractmethod
    def sample_duration_ns(self, rng: random.Random) -> int:
        """Draw one simulated execution duration (ns)."""

    @abc.abstractmethod
    def example_payload(self, rng: random.Random) -> Any:
        """Produce a representative payload for drivers and examples."""

    @property
    def is_ull(self) -> bool:
        return self.category.is_ull

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, {self.category.value})"


def truncated_normal_ns(
    rng: random.Random, mean_ns: float, rel_std: float, floor_ns: float
) -> int:
    """Draw a normal duration with relative std, floored (no negative
    or absurdly small times)."""
    value = rng.gauss(mean_ns, mean_ns * rel_std)
    return round(max(floor_ns, value))
