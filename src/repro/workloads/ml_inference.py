"""uLL ML-inference workload (paper §1's motivation list).

The introduction cites "machine learning (ML) inference tasks" among
the ultra-low-latency services (e.g. Cloudflare's per-request model
scoring).  This workload implements a real, tiny fixed-weight MLP —
one hidden ReLU layer and a sigmoid output — over a small feature
vector, the shape of per-request scoring models (bot detection, fraud
flags) that run in the microsecond range.

It is an *extension* beyond the paper's three evaluated categories; its
duration envelope sits in the Category-1 range (<= 20 us).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.sim.units import microseconds

INPUT_FEATURES = 8
HIDDEN_UNITS = 6


@dataclass(frozen=True)
class InferenceRequest:
    """One scoring request: a fixed-width feature vector."""

    features: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.features) != INPUT_FEATURES:
            raise ValueError(
                f"expected {INPUT_FEATURES} features, got {len(self.features)}"
            )


@dataclass(frozen=True)
class InferenceResult:
    score: float
    flagged: bool


def _deterministic_weights(seed: int, rows: int, cols: int) -> List[List[float]]:
    """Small fixed weight matrix derived from a seed (the 'shipped
    model'); deterministic so results are testable."""
    rng = random.Random(seed)
    return [
        [rng.uniform(-1.0, 1.0) for _ in range(cols)] for _ in range(rows)
    ]


class MlInferenceWorkload(Workload):
    """Fixed 8-6-1 MLP with ReLU hidden layer and sigmoid output."""

    name = "ml-inference"
    category = WorkloadCategory.CATEGORY_1

    def __init__(
        self,
        model_seed: int = 1234,
        threshold: float = 0.5,
        mean_duration_ns: int = microseconds(12),
    ) -> None:
        self.hidden_weights = _deterministic_weights(
            model_seed, HIDDEN_UNITS, INPUT_FEATURES
        )
        self.hidden_bias = _deterministic_weights(model_seed + 1, 1, HIDDEN_UNITS)[0]
        self.output_weights = _deterministic_weights(
            model_seed + 2, 1, HIDDEN_UNITS
        )[0]
        self.output_bias = _deterministic_weights(model_seed + 3, 1, 1)[0][0]
        self.threshold = threshold
        self.mean_duration_ns = mean_duration_ns

    # ------------------------------------------------------------------
    def execute(self, payload: InferenceRequest) -> InferenceResult:
        if not isinstance(payload, InferenceRequest):
            raise TypeError(
                f"inference expects InferenceRequest, got {type(payload)}"
            )
        hidden = []
        for weights, bias in zip(self.hidden_weights, self.hidden_bias):
            activation = sum(
                w * x for w, x in zip(weights, payload.features)
            ) + bias
            hidden.append(max(0.0, activation))  # ReLU
        logit = sum(
            w * h for w, h in zip(self.output_weights, hidden)
        ) + self.output_bias
        score = 1.0 / (1.0 + math.exp(-logit))
        return InferenceResult(score=score, flagged=score >= self.threshold)

    def sample_duration_ns(self, rng: random.Random) -> int:
        value = truncated_normal_ns(
            rng, self.mean_duration_ns, rel_std=0.1, floor_ns=microseconds(6)
        )
        return min(value, microseconds(20))

    def example_payload(self, rng: random.Random) -> InferenceRequest:
        return InferenceRequest(
            features=tuple(rng.uniform(-2.0, 2.0) for _ in range(INPUT_FEATURES))
        )
