"""Function bodies used by the evaluation: the three uLL categories,
the long-running thumbnail generator, and the sysbench CPU hog."""

from repro.workloads.array_filter import ARRAY_SIZE, ArrayFilterWorkload, FilterRequest
from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.workloads.firewall import FirewallDecision, FirewallWorkload, RequestHeader
from repro.workloads.ml_inference import (
    InferenceRequest,
    InferenceResult,
    MlInferenceWorkload,
)
from repro.workloads.nat import NatError, NatRule, NatWorkload
from repro.workloads.orderbook import (
    MarketState,
    Order,
    OrderRiskWorkload,
    RiskDecision,
    RiskVerdict,
    Side,
)
from repro.workloads.sysbench import (
    PrimeRequest,
    SysbenchCpuWorkload,
    primes_up_to,
)
from repro.workloads.thumbnail import (
    Image,
    ObjectStore,
    ThumbnailRequest,
    ThumbnailWorkload,
)


def ull_workloads() -> list[Workload]:
    """The paper's three uLL categories, in order (§2)."""
    return [FirewallWorkload(), NatWorkload(), ArrayFilterWorkload()]


__all__ = [
    "ARRAY_SIZE",
    "ArrayFilterWorkload",
    "FilterRequest",
    "Workload",
    "WorkloadCategory",
    "truncated_normal_ns",
    "FirewallDecision",
    "FirewallWorkload",
    "RequestHeader",
    "InferenceRequest",
    "InferenceResult",
    "MlInferenceWorkload",
    "NatError",
    "NatRule",
    "NatWorkload",
    "MarketState",
    "Order",
    "OrderRiskWorkload",
    "RiskDecision",
    "RiskVerdict",
    "Side",
    "PrimeRequest",
    "SysbenchCpuWorkload",
    "primes_up_to",
    "Image",
    "ObjectStore",
    "ThumbnailRequest",
    "ThumbnailWorkload",
    "ull_workloads",
]
