"""uLL finance workload (paper §1's motivation list).

The introduction cites "finance microservices" among ultra-low-latency
services (risk checks and order validation on the trading hot path run
in single-digit microseconds).  This workload implements a real
pre-trade risk check against an in-memory limit order book: price-band
validation, max order size, and a notional-exposure cap.

It is an *extension* beyond the paper's three evaluated categories; its
duration envelope sits in the Category-2 range (~1-2 us).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.sim.units import nanoseconds


class Side(enum.Enum):
    BUY = "buy"
    SELL = "sell"


@dataclass(frozen=True)
class Order:
    symbol: str
    side: Side
    price: float
    quantity: int

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValueError(f"price must be positive, got {self.price}")
        if self.quantity <= 0:
            raise ValueError(f"quantity must be positive, got {self.quantity}")

    @property
    def notional(self) -> float:
        return self.price * self.quantity


@dataclass(frozen=True)
class MarketState:
    """Reference prices per symbol (mid of the book's top level)."""

    mid_prices: Dict[str, float]

    def mid(self, symbol: str) -> Optional[float]:
        return self.mid_prices.get(symbol)


class RiskVerdict(enum.Enum):
    ACCEPT = "accept"
    REJECT_UNKNOWN_SYMBOL = "reject-unknown-symbol"
    REJECT_PRICE_BAND = "reject-price-band"
    REJECT_MAX_QUANTITY = "reject-max-quantity"
    REJECT_NOTIONAL_CAP = "reject-notional-cap"


@dataclass(frozen=True)
class RiskDecision:
    verdict: RiskVerdict

    @property
    def accepted(self) -> bool:
        return self.verdict is RiskVerdict.ACCEPT


DEFAULT_MARKET = MarketState(
    mid_prices={"ACME": 100.0, "GLOBEX": 42.5, "INITECH": 7.25}
)


class OrderRiskWorkload(Workload):
    """Pre-trade risk: price band, size limit, notional exposure cap."""

    name = "order-risk"
    category = WorkloadCategory.CATEGORY_2

    def __init__(
        self,
        market: MarketState = DEFAULT_MARKET,
        price_band: float = 0.05,          # +/- 5 % around mid
        max_quantity: int = 10_000,
        notional_cap: float = 1_000_000.0,
        mean_duration_ns: int = nanoseconds(1800),
    ) -> None:
        if not 0 < price_band < 1:
            raise ValueError(f"price band must be in (0, 1), got {price_band}")
        self.market = market
        self.price_band = price_band
        self.max_quantity = max_quantity
        self.notional_cap = notional_cap
        self.mean_duration_ns = mean_duration_ns

    # ------------------------------------------------------------------
    def execute(self, payload: Order) -> RiskDecision:
        if not isinstance(payload, Order):
            raise TypeError(f"risk check expects Order, got {type(payload)}")
        mid = self.market.mid(payload.symbol)
        if mid is None:
            return RiskDecision(RiskVerdict.REJECT_UNKNOWN_SYMBOL)
        low = mid * (1.0 - self.price_band)
        high = mid * (1.0 + self.price_band)
        if not low <= payload.price <= high:
            return RiskDecision(RiskVerdict.REJECT_PRICE_BAND)
        if payload.quantity > self.max_quantity:
            return RiskDecision(RiskVerdict.REJECT_MAX_QUANTITY)
        if payload.notional > self.notional_cap:
            return RiskDecision(RiskVerdict.REJECT_NOTIONAL_CAP)
        return RiskDecision(RiskVerdict.ACCEPT)

    def sample_duration_ns(self, rng: random.Random) -> int:
        return truncated_normal_ns(
            rng, self.mean_duration_ns, rel_std=0.12, floor_ns=nanoseconds(900)
        )

    def example_payload(self, rng: random.Random) -> Order:
        symbol = rng.choice(sorted(self.market.mid_prices))
        mid = self.market.mid_prices[symbol]
        return Order(
            symbol=symbol,
            side=rng.choice(list(Side)),
            price=round(mid * rng.uniform(0.93, 1.07), 2),
            quantity=rng.randint(1, 2_000),
        )
