"""Category-3 uLL workload: array index filter (paper §2).

"Given an array composed of 3000 integers, they retrieve the indexes
of all the elements in the array that are larger than an integer
parameter passed during the workload trigger.  Such operations are
used during image transformation operations."  Envelope: hundreds of
ns, mean 0.7 us (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.sim.units import nanoseconds

ARRAY_SIZE = 3000


@dataclass(frozen=True)
class FilterRequest:
    """The trigger payload: the array and the threshold parameter."""

    values: Sequence[int]
    threshold: int


class ArrayFilterWorkload(Workload):
    """Return the indexes of all elements strictly above the threshold."""

    name = "array-filter"
    category = WorkloadCategory.CATEGORY_3

    def __init__(self, mean_duration_ns: int = nanoseconds(700)) -> None:
        self.mean_duration_ns = mean_duration_ns

    def execute(self, payload: FilterRequest) -> List[int]:
        if not isinstance(payload, FilterRequest):
            raise TypeError(f"filter expects FilterRequest, got {type(payload)}")
        return [
            index
            for index, value in enumerate(payload.values)
            if value > payload.threshold
        ]

    def sample_duration_ns(self, rng: random.Random) -> int:
        return truncated_normal_ns(
            rng, self.mean_duration_ns, rel_std=0.15, floor_ns=nanoseconds(300)
        )

    def example_payload(self, rng: random.Random) -> FilterRequest:
        return FilterRequest(
            values=[rng.randint(0, 4096) for _ in range(ARRAY_SIZE)],
            threshold=rng.randint(0, 4096),
        )
