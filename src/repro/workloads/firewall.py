"""Category-1 uLL workload: a stateless firewall (paper §2).

"We implement a stateless firewall that takes a request header as
input and determines whether the request should go through by querying
a static allow list."  Execution time envelope: <= 20 us, mean 17 us.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.sim.units import microseconds


@dataclass(frozen=True)
class RequestHeader:
    """Minimal L3/L4 request header, the firewall's input."""

    src_ip: str
    dst_ip: str
    dst_port: int
    protocol: str = "tcp"

    def __post_init__(self) -> None:
        if not 0 <= self.dst_port <= 65535:
            raise ValueError(f"invalid port {self.dst_port}")


@dataclass(frozen=True)
class FirewallDecision:
    allowed: bool
    rule: str


class FirewallWorkload(Workload):
    """Allow-list firewall: permit iff (src subnet, port) is listed."""

    name = "firewall"
    category = WorkloadCategory.CATEGORY_1

    #: Default static allow list: (source /24 prefix, destination port).
    DEFAULT_ALLOW: FrozenSet[tuple[str, int]] = frozenset(
        {
            ("10.0.0", 443),
            ("10.0.0", 80),
            ("10.0.1", 443),
            ("192.168.1", 22),
            ("172.16.0", 8080),
        }
    )

    def __init__(
        self,
        allow_list: Iterable[tuple[str, int]] | None = None,
        mean_duration_ns: int = microseconds(17),
    ) -> None:
        self.allow_list: FrozenSet[tuple[str, int]] = (
            frozenset(allow_list) if allow_list is not None else self.DEFAULT_ALLOW
        )
        self.mean_duration_ns = mean_duration_ns

    # ------------------------------------------------------------------
    def execute(self, payload: RequestHeader) -> FirewallDecision:
        if not isinstance(payload, RequestHeader):
            raise TypeError(f"firewall expects RequestHeader, got {type(payload)}")
        prefix = payload.src_ip.rsplit(".", 1)[0]
        key = (prefix, payload.dst_port)
        if key in self.allow_list:
            return FirewallDecision(allowed=True, rule=f"allow {prefix}/24:{payload.dst_port}")
        return FirewallDecision(allowed=False, rule="default-deny")

    def sample_duration_ns(self, rng: random.Random) -> int:
        # Mean 17 us, clipped at the category's 20 us envelope.
        value = truncated_normal_ns(
            rng, self.mean_duration_ns, rel_std=0.08, floor_ns=microseconds(10)
        )
        return min(value, microseconds(20))

    def example_payload(self, rng: random.Random) -> RequestHeader:
        allowed = rng.random() < 0.5
        if allowed and self.allow_list:
            prefix, port = rng.choice(sorted(self.allow_list))
            return RequestHeader(
                src_ip=f"{prefix}.{rng.randint(1, 254)}",
                dst_ip="10.9.9.9",
                dst_port=port,
            )
        return RequestHeader(
            src_ip=f"203.0.{rng.randint(0, 255)}.{rng.randint(1, 254)}",
            dst_ip="10.9.9.9",
            dst_port=rng.choice([25, 445, 3389]),
        )
