"""Category-2 uLL workload: a NAT (paper §2).

"We implement a NAT that changes a request header based on
pre-registered routing rules."  Execution envelope: ~1 us class,
mean 1.5 us (Table 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Tuple

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.workloads.firewall import RequestHeader
from repro.sim.units import microseconds, nanoseconds


@dataclass(frozen=True)
class NatRule:
    """Rewrite rule: traffic to (dst_ip, dst_port) goes to the target."""

    target_ip: str
    target_port: int

    def __post_init__(self) -> None:
        if not 0 <= self.target_port <= 65535:
            raise ValueError(f"invalid target port {self.target_port}")


class NatError(Exception):
    """No routing rule matched the request."""


class NatWorkload(Workload):
    """Destination NAT over a static rule table."""

    name = "nat"
    category = WorkloadCategory.CATEGORY_2

    DEFAULT_RULES: Mapping[Tuple[str, int], NatRule] = {
        ("198.51.100.10", 80): NatRule("10.0.0.10", 8080),
        ("198.51.100.10", 443): NatRule("10.0.0.10", 8443),
        ("198.51.100.20", 80): NatRule("10.0.0.20", 8080),
        ("198.51.100.30", 53): NatRule("10.0.0.53", 5353),
    }

    def __init__(
        self,
        rules: Mapping[Tuple[str, int], NatRule] | None = None,
        mean_duration_ns: int = nanoseconds(1500),
    ) -> None:
        self.rules: Dict[Tuple[str, int], NatRule] = dict(
            rules if rules is not None else self.DEFAULT_RULES
        )
        self.mean_duration_ns = mean_duration_ns

    # ------------------------------------------------------------------
    def execute(self, payload: RequestHeader) -> RequestHeader:
        if not isinstance(payload, RequestHeader):
            raise TypeError(f"NAT expects RequestHeader, got {type(payload)}")
        rule = self.rules.get((payload.dst_ip, payload.dst_port))
        if rule is None:
            raise NatError(
                f"no NAT rule for {payload.dst_ip}:{payload.dst_port}"
            )
        return replace(payload, dst_ip=rule.target_ip, dst_port=rule.target_port)

    def sample_duration_ns(self, rng: random.Random) -> int:
        return truncated_normal_ns(
            rng, self.mean_duration_ns, rel_std=0.12, floor_ns=nanoseconds(800)
        )

    def example_payload(self, rng: random.Random) -> RequestHeader:
        (dst_ip, dst_port) = rng.choice(sorted(self.rules))
        return RequestHeader(
            src_ip=f"203.0.113.{rng.randint(1, 254)}",
            dst_ip=dst_ip,
            dst_port=dst_port,
        )
