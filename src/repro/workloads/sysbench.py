"""Background CPU-intensive workload (paper §5.2 uses sysbench).

The overhead study keeps "10 1-vCPU sandboxes (each running a
CPU-intensive application with sysbench)" busy while uLL sandboxes are
paused and resumed.  sysbench's CPU test verifies primality of integers
up to a bound; we implement the same kernel.  As a continuous hog it
has no natural per-invocation duration — ``sample_duration_ns`` draws
one verification round's length.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.workloads.base import Workload, WorkloadCategory, truncated_normal_ns
from repro.sim.units import milliseconds


@dataclass(frozen=True)
class PrimeRequest:
    """One sysbench round: verify primes up to *limit*."""

    limit: int


def primes_up_to(limit: int) -> List[int]:
    """Trial-division prime enumeration, the sysbench CPU kernel."""
    if limit < 2:
        return []
    found: List[int] = []
    for candidate in range(2, limit + 1):
        is_prime = True
        divisor = 2
        while divisor * divisor <= candidate:
            if candidate % divisor == 0:
                is_prime = False
                break
            divisor += 1
        if is_prime:
            found.append(candidate)
    return found


class SysbenchCpuWorkload(Workload):
    """sysbench-style prime verification rounds."""

    name = "sysbench-cpu"
    category = WorkloadCategory.BACKGROUND

    def __init__(self, mean_round_ns: int = milliseconds(100)) -> None:
        self.mean_round_ns = mean_round_ns

    def execute(self, payload: PrimeRequest) -> int:
        if not isinstance(payload, PrimeRequest):
            raise TypeError(f"sysbench expects PrimeRequest, got {type(payload)}")
        return len(primes_up_to(payload.limit))

    def sample_duration_ns(self, rng: random.Random) -> int:
        return truncated_normal_ns(
            rng, self.mean_round_ns, rel_std=0.05, floor_ns=milliseconds(50)
        )

    def example_payload(self, rng: random.Random) -> PrimeRequest:
        return PrimeRequest(limit=rng.randint(1_000, 10_000))
