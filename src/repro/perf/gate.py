"""Sim-kernel performance gate (the engine behind ``repro bench``).

Benchmarks the hot paths the reproduction's wall-clock lives on and
gates CI on regressions against a committed baseline:

* ``calibration`` — a fixed pure-Python spin loop.  Its score measures
  the *machine*, not the repo: the regression check normalizes every
  other bench by the calibration ratio between the baseline machine and
  the current one, so a slower CI runner does not read as a regression.
* ``engine_heap_chaos`` / ``engine_calendar_chaos`` — event throughput
  of the two schedulers on the chaos profile: a closed-loop driver
  holding a cluster-scale outstanding set (tens of thousands of pending
  events, the regime the ROADMAP's cluster studies run in) with the
  chaos study's delay mix (same-instant wake-ups, µs-scale request
  steps, ms-scale background timers).  The committed baseline pins the
  calendar scheduler at ≥2× the heap on this profile.
* ``p2sm_merge`` — the P²SM precompute + merge pipeline on the real
  linked-list structures (elements merged per second).
* ``coalesced_load`` — the fused load-update path: precompute the
  n-fold affine composition and apply it (fused updates per second).
* ``chaos_e2e`` / ``cluster_study_e2e`` — end-to-end wall-clock of the
  chaos study and the cluster placement study at reduced size.  For
  these, "events" are completed client requests / function triggers.
* ``chaos_e2e_obs_on`` — the same chaos study with a live metric
  registry attached, so the ``obs.enabled`` guards take the
  instrumented branch.  Its ratio against ``chaos_e2e`` is the
  observability overhead ``--max-obs-overhead`` gates.
* ``cluster_sharded`` / ``cluster_sharded_serial`` — the sharded chaos
  study (DESIGN.md §12) at 4 worker processes vs 1.  Identical model,
  identical results (that is the shard-invariance contract); only the
  worker layout differs, so their events/sec ratio is the parallel
  scaling ``--require-shard-speedup`` gates.  The rows carry extra
  ``shards`` and ``cores`` fields; the gate skips itself (loudly) on
  machines with fewer cores than workers, where real scaling is
  physically unmeasurable.

Output rows follow the ``BENCH_sim_kernel.json`` schema::

    {"bench": str, "events_per_sec": float, "wall_s": float,
     "seed": int, "py": "3.12", "scheduler": "calendar", "obs": "off"}

``scheduler`` records what the bench actually ran on: the engine
benches pin their kind, benches that never touch the engine say
``"none"``, and end-to-end benches inherit the process default.
``obs`` is ``"on"`` only for the obs-enabled variants.

Noise protocol: each micro-bench runs R rounds and reports the best
(minimum wall time) — the standard estimator for the noise floor on a
shared machine.  The two ratio-gated pairs (heap/calendar, obs
off/on) interleave their rounds round-robin so a CPU-contention burst
cannot land on one side of the ratio only; the obs pair additionally
takes the smaller of two slowdown estimators (paired-ratio median,
best-on/best-off) since noise can only inflate either one — see
:func:`_chaos_pair`.  ``--check`` applies the
calibration normalization and a relative tolerance (default 15 %);
``--require-speedup`` additionally gates the calendar/heap ratio and
``--max-obs-overhead`` the obs-on/obs-off ratio, both
machine-independent.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

#: Default baseline path, resolved relative to the working directory
#: (CI runs from the repo root).
BENCH_BASELINE = "BENCH_sim_kernel.json"

_PY = f"{sys.version_info.major}.{sys.version_info.minor}"


# ----------------------------------------------------------------------
# Workload generators (deterministic per seed)
# ----------------------------------------------------------------------
def _chaos_deltas(n: int, seed: int) -> List[int]:
    """The chaos profile's inter-event delay mix (ns)."""
    rng = random.Random(seed)
    out: List[int] = []
    for _ in range(n):
        r = rng.random()
        if r < 0.40:
            out.append(0)  # same-instant hops (wake-ups, spawns)
        elif r < 0.85:
            out.append(rng.randrange(1_000, 100_000))  # request path
        else:
            out.append(rng.randrange(1_000_000, 10_000_000))  # background
    return out


def _drive_engine(
    kind: str, outstanding: int, deltas: List[int], spread: int, seed: int
) -> float:
    """One closed-loop run; returns events/sec."""
    from repro.sim.engine import Engine

    engine = Engine(scheduler=kind)
    pending = iter(deltas[outstanding:])
    schedule = engine.schedule_transient_after

    def tick() -> None:
        delay = next(pending, None)
        if delay is not None:
            schedule(delay, tick)

    rng = random.Random(seed ^ 1)
    for _ in range(outstanding):
        engine.schedule_transient_after(rng.randrange(spread), tick)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    return engine.events_executed / elapsed


#: Interleaved-pair measurement cache, keyed on (quick, seed).  The
#: speedup and obs-overhead gates are *ratios* of two wall-clock
#: measurements; running the two sides as separate back-to-back benches
#: lets a noise burst land on one side only and swing the ratio past
#: the gate budget.  Round-robin interleaving gives both sides of each
#: ratio the same quiet windows, so best-of-rounds converges on the
#: code difference rather than the neighbours' CPU bursts.  Requesting
#: either member of a pair measures both (the partner is cached).
_PAIR_CACHE: Dict[tuple, Dict[str, Dict[str, object]]] = {}


def _engine_pair(quick: bool, seed: int) -> Dict[str, Dict[str, object]]:
    key = ("engine", quick, seed)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    outstanding = 8192 if quick else 32768
    n_events = 150_000 if quick else 500_000
    rounds = 3 if quick else 5
    # Initial events spread so steady-state density matches the closed
    # loop's own (~0.4 events/µs of simulated time).
    spread = outstanding * 2500
    deltas = _chaos_deltas(n_events, seed)
    best = {"heap": 0.0, "calendar": 0.0}
    for _ in range(rounds):
        for kind in best:
            best[kind] = max(
                best[kind],
                _drive_engine(kind, outstanding, deltas, spread, seed),
            )
    pair = {
        kind: {
            "events_per_sec": eps,
            "wall_s": n_events / eps,
            "scheduler": kind,
        }
        for kind, eps in best.items()
    }
    _PAIR_CACHE[key] = pair
    return pair


def bench_engine_heap(quick: bool, seed: int) -> Dict[str, object]:
    return dict(_engine_pair(quick, seed)["heap"])


def bench_engine_calendar(quick: bool, seed: int) -> Dict[str, object]:
    return dict(_engine_pair(quick, seed)["calendar"])


def bench_calibration(quick: bool, seed: int) -> Dict[str, object]:
    """Fixed integer-arithmetic spin; measures the interpreter+machine."""
    iterations = 2_000_000 if quick else 5_000_000
    rounds = 3
    best = float("inf")
    for _ in range(rounds):
        accumulator = seed & 0xFFFF
        start = time.perf_counter()
        for i in range(iterations):
            accumulator = (accumulator * 31 + i) & 0xFFFFFFFF
        best = min(best, time.perf_counter() - start)
    return {
        "events_per_sec": iterations / best,
        "wall_s": best,
        "scheduler": "none",
    }


def bench_p2sm_merge(quick: bool, seed: int) -> Dict[str, float]:
    from repro.core.linked_list import SortedLinkedList
    from repro.core.p2sm import P2SMState

    size_b, size_a = 256, 64
    iterations = 60 if quick else 300
    best_timed = float("inf")
    merged = 0
    for _ in range(3):  # best-of-rounds: identical work, min wall
        rng = random.Random(seed)
        target: SortedLinkedList[float] = SortedLinkedList(
            key=lambda value: value
        )
        base_values = sorted(rng.uniform(0, 1000) for _ in range(size_b))
        for value in base_values:
            target.insert_sorted(value)
        merged = 0
        timed = 0.0
        for _ in range(iterations):
            values_a = [rng.uniform(0, 1000) for _ in range(size_a)]
            start = time.perf_counter()
            state = P2SMState(values_a, target)  # precompute phase
            report = state.merge()  # Algorithm 1
            timed += time.perf_counter() - start
            merged += report.merged_elements
            for value in values_a:  # untimed restore to steady state
                target.remove(value)
        best_timed = min(best_timed, timed)
    return {
        "events_per_sec": merged / best_timed,
        "wall_s": best_timed,
        "scheduler": "none",
    }


def bench_coalesced_load(quick: bool, seed: int) -> Dict[str, float]:
    from repro.core.coalesce import AffineUpdate

    iterations = 50_000 if quick else 200_000
    vcpus = 32
    update = AffineUpdate(alpha=0.9785, beta=1.5)
    best = float("inf")
    for _ in range(3):  # best-of-rounds: identical work, min wall
        load = float(seed % 97) + 1.0
        start = time.perf_counter()
        for _ in range(iterations):
            load = update.compose_n(vcpus).apply(load) % 1000.0
        best = min(best, time.perf_counter() - start)
    return {
        "events_per_sec": iterations / best,
        "wall_s": best,
        "scheduler": "none",
    }


def _chaos_pair(quick: bool, seed: int) -> Dict[str, Dict[str, object]]:
    """Interleaved obs-off/obs-on chaos study wall clock.

    The obs-on rounds use the null tracer + a real
    :class:`MetricRegistry`: every ``obs.enabled`` guard takes the
    instrumented branch and every counter/histogram update does real
    work, without the unbounded span-retention cost of a full tracer.
    """
    key = ("chaos", quick, seed)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.experiments.chaos import ChaosConfig, run_chaos
    from repro.obs import MetricRegistry, NULL_TRACER, Observability, activate

    config = ChaosConfig(hosts=2, requests=400 if quick else 1200, seed=seed)
    # Five rounds even in quick mode: the median needs enough paired
    # samples to discard two noisy rounds, and the quick study is cheap.
    rounds = 5
    walls_off: List[float] = []
    walls_on: List[float] = []
    ratios: List[float] = []
    outcomes = 0
    for _ in range(rounds):
        start = time.perf_counter()
        result = run_chaos(config)
        wall_off = time.perf_counter() - start
        with activate(Observability(NULL_TRACER, MetricRegistry())):
            start = time.perf_counter()
            result = run_chaos(config)
            wall_on = time.perf_counter() - start
        walls_off.append(wall_off)
        walls_on.append(wall_on)
        ratios.append(wall_on / wall_off)
        outcomes = len(result.outcomes)
    requests = config.requests * outcomes
    best_off = min(walls_off)
    # The gate reads the obs overhead as the eps ratio of the two rows,
    # so the on-row is derived from the off-best and a slowdown
    # estimate.  Two estimators, take the smaller:
    #
    # * the *median* of the per-round paired ratios — each ratio
    #   compares two runs from the same window, and the median discards
    #   rounds where a burst straddled the pair boundary;
    # * *best-on over best-off* — each min independently converges to
    #   that variant's noise-free floor given enough rounds.
    #
    # Noise on a shared machine only ever inflates a wall clock, so
    # each estimator errs high when its assumption breaks (a majority
    # of noisy rounds for the median, too few clean rounds for the
    # mins).  A real instrumentation regression shifts the whole obs-on
    # distribution and therefore moves *both* estimators; taking the
    # min keeps the gate from tripping when only one is contaminated.
    slowdown = min(sorted(ratios)[len(ratios) // 2], min(walls_on) / best_off)
    pair = {
        "off": {"events_per_sec": requests / best_off, "wall_s": best_off},
        "on": {
            "events_per_sec": requests / (best_off * slowdown),
            "wall_s": best_off * slowdown,
            "obs": "on",
        },
    }
    _PAIR_CACHE[key] = pair
    return pair


def bench_chaos_e2e(quick: bool, seed: int) -> Dict[str, object]:
    return dict(_chaos_pair(quick, seed)["off"])


def bench_chaos_e2e_obs_on(quick: bool, seed: int) -> Dict[str, object]:
    """The chaos study with live metrics attached (obs-enabled path).

    The machine-independent ratio against ``chaos_e2e`` is what
    ``--max-obs-overhead`` gates; see :func:`_chaos_pair` for why the
    two variants are measured interleaved.
    """
    return dict(_chaos_pair(quick, seed)["on"])


def _available_cores() -> int:
    """CPU cores this process may use (affinity-aware where possible)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


#: Worker count for the parallel side of the sharded pair — matches the
#: CI runner's core count; the speedup gate skips below this.
_SHARD_WORKERS = 4


def _sharded_pair(quick: bool, seed: int) -> Dict[str, Dict[str, object]]:
    """Interleaved serial/parallel sharded-study wall clock.

    Both sides run the identical model (one mode, 8 cells) — the
    shard-invariance contract guarantees identical results — so the
    events/sec ratio isolates the worker-process scaling.  Rounds are
    interleaved like the other ratio pairs: a contention burst lands on
    both sides of the ratio or neither.
    """
    key = ("sharded", quick, seed)
    cached = _PAIR_CACHE.get(key)
    if cached is not None:
        return cached
    from repro.experiments.sharded_chaos import (
        ShardedChaosConfig,
        run_sharded_chaos,
    )

    config = ShardedChaosConfig(
        groups=8, hosts=2, requests=2400 if quick else 6000, seed=seed
    )
    rounds = 2 if quick else 3
    best = {"serial": float("inf"), "parallel": float("inf")}
    events = 0
    for _ in range(rounds):
        for side, shards in (("serial", 1), ("parallel", _SHARD_WORKERS)):
            start = time.perf_counter()
            result = run_sharded_chaos(
                config, shards=shards, modes=("breaker",)
            )
            best[side] = min(best[side], time.perf_counter() - start)
            events = result.events_executed
    cores = _available_cores()
    pair = {
        side: {
            "events_per_sec": events / wall,
            "wall_s": wall,
            "shards": 1 if side == "serial" else _SHARD_WORKERS,
            "cores": cores,
        }
        for side, wall in best.items()
    }
    _PAIR_CACHE[key] = pair
    return pair


def bench_cluster_sharded(quick: bool, seed: int) -> Dict[str, object]:
    """The sharded chaos study on 4 worker processes.

    Its ratio against ``cluster_sharded_serial`` is what
    ``--require-shard-speedup`` gates; see :func:`_sharded_pair`.
    """
    return dict(_sharded_pair(quick, seed)["parallel"])


def bench_cluster_sharded_serial(quick: bool, seed: int) -> Dict[str, object]:
    return dict(_sharded_pair(quick, seed)["serial"])


def bench_cluster_study_e2e(quick: bool, seed: int) -> Dict[str, object]:
    from repro.experiments.cluster_study import run_cluster_study

    best = float("inf")
    triggers = 0
    for _ in range(3):  # best-of-rounds: identical work, min wall
        start = time.perf_counter()
        result = run_cluster_study(
            hosts=2, functions=4, duration_s=30.0 if quick else 120.0,
            seed=seed,
        )
        best = min(best, time.perf_counter() - start)
        triggers = sum(
            result.outcome(policy).triggers for policy in result.policies()
        )
    return {"events_per_sec": triggers / best, "wall_s": best}


def bench_replay_e2e(quick: bool, seed: int) -> Dict[str, object]:
    """Streaming trace replay + hybrid prewarm policy, end to end.

    Measures replayed arrivals per second through the full stack:
    per-function arrival generators, the bounded-memory heap merge, and
    the capacity-model cell simulator (histograms, LRU, lifecycle
    timers).  Scale is chosen so the quick mode stays near a second.
    """
    from repro.faas.prewarm import PrewarmConfig, run_replay
    from repro.traces.replay import ReplayConfig

    config = PrewarmConfig(
        replay=ReplayConfig(
            functions=2000 if quick else 10000,
            duration_s=900.0 if quick else 1800.0,
            seed=seed,
        ),
        policy="hybrid",
        memory_budget_mb=8192.0 if quick else 32768.0,
    )
    best = float("inf")
    events = 0
    for _ in range(3):  # best-of-rounds: identical work, min wall
        start = time.perf_counter()
        result = run_replay(config)
        best = min(best, time.perf_counter() - start)
        events = result.events
    # No Engine involved: the replayer is its own event loop.
    return {"events_per_sec": events / best, "wall_s": best, "scheduler": "none"}


BENCHES: Dict[str, Callable[[bool, int], Dict[str, object]]] = {
    "calibration": bench_calibration,
    "engine_heap_chaos": bench_engine_heap,
    "engine_calendar_chaos": bench_engine_calendar,
    "p2sm_merge": bench_p2sm_merge,
    "coalesced_load": bench_coalesced_load,
    "chaos_e2e": bench_chaos_e2e,
    "chaos_e2e_obs_on": bench_chaos_e2e_obs_on,
    "cluster_study_e2e": bench_cluster_study_e2e,
    "replay_e2e": bench_replay_e2e,
    "cluster_sharded_serial": bench_cluster_sharded_serial,
    "cluster_sharded": bench_cluster_sharded,
}


def run_benches(
    quick: bool = False,
    seed: int = 7,
    only: Optional[Sequence[str]] = None,
    log: Callable[[str], None] = lambda line: None,
) -> List[Dict[str, object]]:
    """Run the suite; returns rows in the BENCH_sim_kernel schema."""
    names = list(BENCHES) if only is None else list(only)
    for name in names:
        if name not in BENCHES:
            raise ValueError(
                f"unknown bench {name!r}; choose from {', '.join(BENCHES)}"
            )
    from repro.sim.engine import default_scheduler

    rows: List[Dict[str, object]] = []
    for name in names:
        log(f"running {name} ...")
        measured = BENCHES[name](quick, seed)
        row: Dict[str, object] = {
            "bench": name,
            "events_per_sec": round(float(measured["events_per_sec"]), 1),
            "wall_s": round(float(measured["wall_s"]), 4),
            "seed": seed,
            "py": _PY,
            # Benches that never touch the engine report "none";
            # the engine benches pin their own kind; everything
            # else runs on the process default.
            "scheduler": measured.get("scheduler", default_scheduler()),
            "obs": measured.get("obs", "off"),
        }
        # The sharded pair additionally records its worker layout and
        # the machine's core budget (the speedup gate is core-aware).
        for extra in ("shards", "cores"):
            if extra in measured:
                row[extra] = measured[extra]
        rows.append(row)
        log(
            f"  {name}: {rows[-1]['events_per_sec']:,.0f} events/s "
            f"({rows[-1]['wall_s']:.3f} s)"
        )
    return rows


# ----------------------------------------------------------------------
# Regression check
# ----------------------------------------------------------------------
def check_against_baseline(
    rows: List[Dict[str, object]],
    baseline_rows: List[Dict[str, object]],
    tolerance: float = 0.15,
    require_speedup: Optional[float] = None,
    max_obs_overhead: Optional[float] = None,
    require_shard_speedup: Optional[float] = None,
    log: Callable[[str], None] = print,
) -> bool:
    """True when no bench regressed beyond *tolerance*.

    Scores are normalized by the calibration ratio between the two
    machines before comparison; the optional calendar/heap speedup,
    obs-overhead, and shard-speedup gates are pure same-machine ratios
    and need no normalization.  The shard-speedup gate skips (with a
    log line, never a failure) when the machine has fewer cores than
    the parallel side's workers — on such machines the ratio measures
    the core budget, not the code.
    """
    current = {str(row["bench"]): row for row in rows}
    baseline = {str(row["bench"]): row for row in baseline_rows}
    factor = 1.0
    if "calibration" in current and "calibration" in baseline:
        factor = float(current["calibration"]["events_per_sec"]) / float(
            baseline["calibration"]["events_per_sec"]
        )
        log(f"calibration factor (this machine / baseline): {factor:.3f}")
    ok = True
    for name, row in current.items():
        if name == "calibration" or name not in baseline:
            continue
        measured = float(row["events_per_sec"])
        expected = float(baseline[name]["events_per_sec"]) * factor
        floor = expected * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSED"
        if measured < floor:
            ok = False
        log(
            f"{name:24s} {measured:14,.0f} ev/s vs normalized baseline "
            f"{expected:14,.0f} (floor {floor:14,.0f}) {verdict}"
        )
    if require_speedup is not None:
        heap = current.get("engine_heap_chaos")
        calendar = current.get("engine_calendar_chaos")
        if heap is None or calendar is None:
            log("speedup gate skipped: engine benches not in this run")
        else:
            ratio = float(calendar["events_per_sec"]) / float(
                heap["events_per_sec"]
            )
            verdict = "ok" if ratio >= require_speedup else "BELOW TARGET"
            if ratio < require_speedup:
                ok = False
            log(
                f"calendar/heap speedup {ratio:.2f}x "
                f"(required {require_speedup:.2f}x) {verdict}"
            )
    if max_obs_overhead is not None:
        obs_off = current.get("chaos_e2e")
        obs_on = current.get("chaos_e2e_obs_on")
        if obs_off is None or obs_on is None:
            log("obs-overhead gate skipped: chaos_e2e benches not in this run")
        else:
            overhead = 1.0 - float(obs_on["events_per_sec"]) / float(
                obs_off["events_per_sec"]
            )
            verdict = "ok" if overhead <= max_obs_overhead else "OVER BUDGET"
            if overhead > max_obs_overhead:
                ok = False
            log(
                f"obs-enabled chaos overhead {overhead * 100:.2f}% "
                f"(budget {max_obs_overhead * 100:.2f}%) {verdict}"
            )
    if require_shard_speedup is not None:
        serial = current.get("cluster_sharded_serial")
        sharded = current.get("cluster_sharded")
        if serial is None or sharded is None:
            log("shard-speedup gate skipped: sharded benches not in this run")
        else:
            cores = int(sharded.get("cores", _available_cores()))
            workers = int(sharded.get("shards", _SHARD_WORKERS))
            if cores < workers:
                log(
                    f"shard-speedup gate skipped: {cores} core(s) available, "
                    f"{workers} workers needed to measure scaling"
                )
            else:
                ratio = float(sharded["events_per_sec"]) / float(
                    serial["events_per_sec"]
                )
                verdict = (
                    "ok" if ratio >= require_shard_speedup else "BELOW TARGET"
                )
                if ratio < require_shard_speedup:
                    ok = False
                log(
                    f"sharded/serial speedup {ratio:.2f}x at {workers} workers "
                    f"on {cores} cores (required {require_shard_speedup:.2f}x) "
                    f"{verdict}"
                )
    return ok


# ----------------------------------------------------------------------
# Entry point (shared by benchmarks/perf_gate.py and ``repro bench``)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description="sim-kernel benchmarks and the CI regression gate",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sizes/rounds (the CI configuration)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--benches", type=str, default=None, metavar="A,B,...",
        help=f"comma-separated subset of: {', '.join(BENCHES)}",
    )
    parser.add_argument(
        "--write", type=str, default=None, metavar="PATH",
        help="write rows as JSON (use to refresh the committed baseline)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help=f"compare against the baseline (default {BENCH_BASELINE})",
    )
    parser.add_argument(
        "--baseline", type=str, default=BENCH_BASELINE, metavar="PATH",
        help="baseline JSON for --check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed relative regression after normalization (default 0.15)",
    )
    parser.add_argument(
        "--require-speedup", type=float, default=None, metavar="X",
        help="fail unless calendar/heap events/sec ratio is >= X",
    )
    parser.add_argument(
        "--max-obs-overhead", type=float, default=None, metavar="F",
        help="fail if the obs-enabled chaos run is more than F (fraction, "
        "e.g. 0.05) slower than the obs-off run",
    )
    parser.add_argument(
        "--require-shard-speedup", type=float, default=None, metavar="X",
        help="fail unless cluster_sharded/cluster_sharded_serial events/sec "
        "is >= X (skipped when the machine has fewer cores than workers)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    only = args.benches.split(",") if args.benches else None
    try:
        rows = run_benches(quick=args.quick, seed=args.seed, only=only, log=print)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(json.dumps(rows, indent=2))
    if args.write:
        with open(args.write, "w") as handle:
            json.dump(rows, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.write}")
    if args.check:
        try:
            with open(args.baseline) as handle:
                baseline_rows = json.load(handle)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        ok = check_against_baseline(
            rows,
            baseline_rows,
            tolerance=args.tolerance,
            require_speedup=args.require_speedup,
            max_obs_overhead=args.max_obs_overhead,
            require_shard_speedup=args.require_shard_speedup,
        )
        return 0 if ok else 1
    if (
        args.require_speedup is not None
        or args.max_obs_overhead is not None
        or args.require_shard_speedup is not None
    ):
        ok = check_against_baseline(
            rows, [], tolerance=args.tolerance,
            require_speedup=args.require_speedup,
            max_obs_overhead=args.max_obs_overhead,
            require_shard_speedup=args.require_shard_speedup,
        )
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
