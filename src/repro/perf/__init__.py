"""Performance gate: sim-kernel benchmarks and the regression check.

See :mod:`repro.perf.gate` for the benchmark definitions and the
``BENCH_sim_kernel.json`` schema, ``benchmarks/perf_gate.py`` for the
standalone entry point, and ``repro bench`` for the CLI front end.
"""

from repro.perf.gate import (
    BENCH_BASELINE,
    run_benches,
    check_against_baseline,
    main,
)

__all__ = ["BENCH_BASELINE", "run_benches", "check_against_baseline", "main"]
