"""Resilience invariants, as ``repro.check``-style checkers.

Each factory returns a ``Checker`` (``f(now_ns) -> list[str]``) that
plugs straight into a :class:`repro.check.InvariantRegistry`:

* :func:`breaker_checker` — every per-node circuit breaker only ever
  walks legal state-machine edges, with monotone timestamps;
* :func:`request_ledger_checker` — no request is both shed and
  completed, shed requests never launched attempts, retry and hedge
  budgets are respected;
* :func:`all_resolved_checker` — end-of-run "no lost invocations": a
  drained engine must leave every request in a terminal state
  (COMPLETED, SHED, or FAILED);
* :func:`cluster_accounting_checker` — per-host in-flight counts are
  never negative and down hosts are not routed to.
"""

from __future__ import annotations

from typing import List, Optional

from repro.check.invariants import Checker, InvariantRegistry, Trigger
from repro.faas.cluster import FaaSCluster
from repro.obs.context import Observability
from repro.resilience.gateway import ResilientGateway


def breaker_checker(gateway: ResilientGateway) -> Checker:
    """Circuit-breaker state-machine legality across all hosts."""

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        for breaker in gateway.breakers.values():
            problems.extend(breaker.invariant_violations())
        return problems

    return check


def request_ledger_checker(gateway: ResilientGateway) -> Checker:
    """Ledger soundness: shed/completed exclusivity and budgets."""

    def check(_now_ns: int) -> List[str]:
        # Breaker problems are the breaker checker's job; filter them
        # out so one corruption is not double-reported.
        return [
            message
            for message in gateway.invariant_violations()
            if message.startswith(("request ", "gateway:"))
        ]

    return check


def all_resolved_checker(gateway: ResilientGateway) -> Checker:
    """End-of-run: every submitted request reached a terminal state."""

    def check(_now_ns: int) -> List[str]:
        return gateway.unresolved_violations()

    return check


def cluster_accounting_checker(cluster: FaaSCluster) -> Checker:
    """Routing-layer accounting: in-flight counts stay non-negative."""

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        for index, count in cluster.in_flight.items():
            if count < 0:
                problems.append(
                    f"host {index}: negative in-flight count {count}"
                )
        for index, health in enumerate(cluster.health):
            if health.crashes < health.recoveries:
                problems.append(
                    f"host {index}: {health.recoveries} recoveries exceed "
                    f"{health.crashes} crashes"
                )
        return problems

    return check


def resilience_registry(
    gateway: ResilientGateway,
    obs: Optional[Observability] = None,
) -> InvariantRegistry:
    """A registry with every resilience checker registered.

    The ledger and breaker checkers run at boundaries during the run;
    :func:`all_resolved_checker` is meaningful only once the engine has
    drained, so callers invoke it via
    ``registry.report("resilience.all_resolved", ...)`` (or simply call
    the checker) at end of run — registering it mid-run would flag
    ordinary in-flight work as lost.
    """
    registry = InvariantRegistry(obs=obs)
    registry.register(
        "resilience.breaker", breaker_checker(gateway), Trigger.BOUNDARY
    )
    registry.register(
        "resilience.ledger", request_ledger_checker(gateway), Trigger.BOUNDARY
    )
    registry.register(
        "resilience.cluster",
        cluster_accounting_checker(gateway.cluster),
        Trigger.BOUNDARY,
    )
    return registry
