"""Failure domains: seeded, replayable infrastructure failures.

The injector models two independent failure domains over a
:class:`~repro.faas.cluster.FaaSCluster`:

* **node crashes** — whole hosts die and later recover.  Up-times are
  exponential draws from a per-host seeded stream; crash and recovery
  events go through the sim engine at ``EventPriority.FAILURE`` so a
  crash landing on the same nanosecond as user work strikes first and
  replays identically;
* **resume faults** — individual pause/resume operations fail via the
  hypervisor fault hooks: transient command errors (retryable), slow
  resumes (latency spike), and hung resumes (permanent stall the
  caller must time out).  Fault probability is per-host: a configurable
  fraction of hosts are *flaky* and concentrate most of the faults,
  which is exactly the asymmetry a circuit breaker exists to exploit.

Everything derives from ``(seed, FailureConfig)``; two same-seed runs
crash the same hosts at the same nanoseconds and fail the same resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faas.cluster import FaaSCluster
from repro.hypervisor.pause_resume import (
    RESUME_FAULT_HUNG,
    RESUME_FAULT_SLOW,
    RESUME_FAULT_TRANSIENT,
    ResumeFault,
)
from repro.hypervisor.sandbox import Sandbox
from repro.sim.event import EventPriority
from repro.sim.rng import RngRegistry
from repro.sim.units import milliseconds, seconds

#: Every injectable failure kind, in documentation order.
FAILURE_KINDS: Tuple[str, ...] = (
    "node_crash",
    RESUME_FAULT_TRANSIENT,
    RESUME_FAULT_SLOW,
    RESUME_FAULT_HUNG,
)


@dataclass(frozen=True)
class FailureConfig:
    """One knob (``failure_rate``) plus its decomposition.

    ``failure_rate`` in [0, 1) scales both domains: per-resume fault
    probability on flaky hosts is ``min(0.9, failure_rate *
    flaky_bias)`` (and ``failure_rate * calm_factor`` elsewhere), and
    mean host up-time is ``crash_mtbf_base_s / failure_rate``.
    """

    failure_rate: float = 0.1
    #: fraction of hosts that are flaky (at least one when rate > 0)
    flaky_fraction: float = 0.25
    #: fault-probability multiplier on flaky hosts
    flaky_bias: float = 6.0
    #: fault-probability multiplier on calm hosts
    calm_factor: float = 0.2
    #: relative weights of the three resume-fault kinds
    transient_weight: float = 0.5
    slow_weight: float = 0.3
    hung_weight: float = 0.2
    #: mean up-time = crash_mtbf_base_s / failure_rate
    crash_mtbf_base_s: float = 1.0
    #: mean down-time after a crash (jittered +/- 50 %)
    recovery_ms: float = 400.0
    #: stall added by a slow resume (jittered 0.5x - 1.5x)
    slow_stall_us: float = 200.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.transient_weight + self.slow_weight + self.hung_weight <= 0:
            raise ValueError("resume-fault weights must sum > 0")

    def resume_fault_probability(self, flaky: bool) -> float:
        scale = self.flaky_bias if flaky else self.calm_factor
        return min(0.9, self.failure_rate * scale)

    def mean_uptime_ns(self) -> Optional[int]:
        if self.failure_rate == 0.0:
            return None
        return seconds(self.crash_mtbf_base_s / self.failure_rate)


class FailureInjector:
    """Applies a :class:`FailureConfig` to one cluster, deterministically.

    Usage::

        injector = FailureInjector(cluster, config, seed=7)
        injector.schedule_crashes(until_ns=seconds(10))
        # hooks installed; run the engine

    ``on_crash`` / ``on_recover`` listeners fire as ``f(index, now_ns)``
    — the resilient gateway uses them to fail in-flight work and to
    re-warm recovered hosts.
    """

    def __init__(
        self,
        cluster: FaaSCluster,
        config: FailureConfig,
        seed: int = 0,
        domain: int = 0,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.seed = seed
        #: failure-domain id — the shard unit in sharded runs.  Purely
        #: a label (trace records, repr); per-domain independence comes
        #: from the caller seeding each domain's injector separately.
        self.domain = domain
        self._rngs = RngRegistry(seed).fork("resilience-failures")
        self.fired: Dict[str, int] = {kind: 0 for kind in FAILURE_KINDS}
        self.on_crash: List[Callable[[int, int], None]] = []
        self.on_recover: List[Callable[[int, int], None]] = []
        self.flaky_hosts = self._pick_flaky_hosts()
        self._install_resume_hooks()

    # ------------------------------------------------------------------
    def _pick_flaky_hosts(self) -> Tuple[int, ...]:
        """Deterministically choose which hosts concentrate faults."""
        if self.config.failure_rate == 0.0:
            return ()
        count = len(self.cluster.hosts)
        flaky_count = max(1, round(count * self.config.flaky_fraction))
        rng = self._rngs.stream("flaky-pick")
        return tuple(sorted(rng.sample(range(count), flaky_count)))

    def _install_resume_hooks(self) -> None:
        for index, host in enumerate(self.cluster.hosts):
            hook = self._make_resume_hook(index)
            host.virt.vanilla.fault_hook = hook
            host.horse.fault_hook = hook

    def _make_resume_hook(self, index: int):
        probability = self.config.resume_fault_probability(
            index in self.flaky_hosts
        )
        rng = self._rngs.stream(f"resume:{index}")
        weights = (
            (RESUME_FAULT_TRANSIENT, self.config.transient_weight),
            (RESUME_FAULT_SLOW, self.config.slow_weight),
            (RESUME_FAULT_HUNG, self.config.hung_weight),
        )
        total_weight = sum(weight for _, weight in weights)

        def hook(sandbox: Sandbox, now_ns: int) -> Optional[ResumeFault]:
            if probability <= 0.0 or rng.random() >= probability:
                return None
            pick = rng.random() * total_weight
            cursor = 0.0
            kind = weights[-1][0]
            for candidate, weight in weights:
                cursor += weight
                if pick < cursor:
                    kind = candidate
                    break
            self.fired[kind] += 1
            if kind == RESUME_FAULT_SLOW:
                stall = round(
                    self.config.slow_stall_us * 1000 * (0.5 + rng.random())
                )
                return ResumeFault(kind, stall_ns=stall)
            return ResumeFault(kind)

        return hook

    # ------------------------------------------------------------------
    def schedule_crashes(self, until_ns: int) -> int:
        """Pre-schedule every crash/recovery up to *until_ns*.

        All times are drawn up front from per-host streams, so the
        schedule is a pure function of ``(seed, config)`` regardless of
        what the workload does.  Returns the number of crashes planned.
        """
        mean_up_ns = self.config.mean_uptime_ns()
        if mean_up_ns is None:
            return 0
        engine = self.cluster.engine
        recovery_ns = milliseconds(self.config.recovery_ms)
        planned = 0
        for index in range(len(self.cluster.hosts)):
            rng = self._rngs.stream(f"crash:{index}")
            t = engine.now
            while True:
                t += max(1, round(rng.expovariate(1.0 / mean_up_ns)))
                if t >= until_ns:
                    break
                engine.schedule_at(
                    t,
                    lambda i=index: self._crash(i),
                    priority=EventPriority.FAILURE,
                    label=f"node-crash:{index}",
                )
                planned += 1
                t += max(1, round(recovery_ns * (0.5 + rng.random())))
                engine.schedule_at(
                    t,
                    lambda i=index: self._recover(i),
                    priority=EventPriority.FAILURE,
                    label=f"node-recover:{index}",
                )
        return planned

    def _crash(self, index: int) -> None:
        now = self.cluster.engine.now
        if not self.cluster.health[index].up:
            return  # already down (overlapping draw); recovery pending
        lost = self.cluster.crash_host(index, now)
        self.fired["node_crash"] += 1
        host = self.cluster.hosts[index]
        if host.obs.enabled:
            host.obs.metrics.counter(
                "failures.node_crash", "injected node crashes"
            ).inc()
            host.obs.tracer.record_instant(
                "node.crash", now, category="resilience",
                host=index, pooled_lost=lost,
            )
        host.trace.record(
            now, "failures", "crash",
            host=index, pooled_lost=lost, domain=self.domain,
        )
        for listener in self.on_crash:
            listener(index, now)

    def _recover(self, index: int) -> None:
        now = self.cluster.engine.now
        if self.cluster.health[index].up:
            return
        self.cluster.recover_host(index, now)
        host = self.cluster.hosts[index]
        if host.obs.enabled:
            host.obs.tracer.record_instant(
                "node.recover", now, category="resilience", host=index,
            )
        host.trace.record(
            now, "failures", "recover", host=index, domain=self.domain
        )
        for listener in self.on_recover:
            listener(index, now)

    def __repr__(self) -> str:
        return (
            f"FailureInjector(rate={self.config.failure_rate}, "
            f"domain={self.domain}, flaky={list(self.flaky_hosts)}, "
            f"fired={self.fired})"
        )


@dataclass(frozen=True)
class GatewayFailureConfig:
    """Crash/recovery schedule for *gateway shards* (control plane).

    Mirrors the host-level knob decomposition: mean shard up-time is
    ``mtbf_base_s / gateway_failure_rate`` and recovery (the window the
    replacement takes to come up and replay its log) is jittered around
    ``recovery_ms``.  Rate 0 disables the domain entirely — the
    zero-failure oracle twin runs with the exact same arrival stream
    and host schedule, just no gateway crashes.
    """

    gateway_failure_rate: float = 0.1
    #: mean up-time = mtbf_base_s / gateway_failure_rate
    mtbf_base_s: float = 1.0
    #: mean control-plane recovery window (jittered +/- 50 %)
    recovery_ms: float = 400.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.gateway_failure_rate < 1.0:
            raise ValueError(
                f"gateway_failure_rate must be in [0, 1), got "
                f"{self.gateway_failure_rate}"
            )

    def mean_uptime_ns(self) -> Optional[int]:
        if self.gateway_failure_rate == 0.0:
            return None
        return seconds(self.mtbf_base_s / self.gateway_failure_rate)


class GatewayFailureInjector:
    """Crashes and recovers whole gateway shards, deterministically.

    The gateway failure domain is independent of the host domain: its
    RNG registry is forked under its own label, so enabling (or
    disabling) gateway crashes perturbs no host-level draw — the
    property the exactly-once differential oracle relies on.

    Crash/recovery events target the control plane
    (:meth:`~repro.controlplane.ControlPlane.crash_shard` /
    :meth:`~repro.controlplane.ControlPlane.recover_shard`); the plane
    fences the dead incarnation, replays the intent log into the
    replacement, and drains the frontend parking lot.
    """

    def __init__(
        self,
        plane,
        config: GatewayFailureConfig,
        seed: int = 0,
        domain: int = 0,
    ) -> None:
        self.plane = plane
        self.config = config
        self.seed = seed
        self.domain = domain
        self._rngs = RngRegistry(seed).fork("gateway-failures")
        self.crashes = 0
        self.recoveries = 0
        self.on_crash: List[Callable[[int, int], None]] = []
        self.on_recover: List[Callable[[int, int], None]] = []

    def schedule_crashes(self, until_ns: int) -> int:
        """Pre-schedule every shard crash/recovery up to *until_ns*.

        Same shape as the host injector: all times drawn up front from
        per-shard streams, crashes only before the horizon, the paired
        recovery scheduled unconditionally (a shard never stays down
        forever — required for the final drain to resolve parked and
        re-dispatched work).  Returns the number of crashes planned.
        """
        mean_up_ns = self.config.mean_uptime_ns()
        if mean_up_ns is None:
            return 0
        engine = self.plane.engine
        recovery_ns = milliseconds(self.config.recovery_ms)
        planned = 0
        for index in range(len(self.plane.shards)):
            rng = self._rngs.stream(f"crash:{index}")
            t = engine.now
            while True:
                t += max(1, round(rng.expovariate(1.0 / mean_up_ns)))
                if t >= until_ns:
                    break
                engine.schedule_at(
                    t,
                    lambda i=index: self._crash(i),
                    priority=EventPriority.FAILURE,
                    label=f"gateway-crash:{index}",
                )
                planned += 1
                t += max(1, round(recovery_ns * (0.5 + rng.random())))
                engine.schedule_at(
                    t,
                    lambda i=index: self._recover(i),
                    priority=EventPriority.FAILURE,
                    label=f"gateway-recover:{index}",
                )
        return planned

    def _crash(self, index: int) -> None:
        now = self.plane.engine.now
        if not self.plane.crash_shard(index, now):
            return  # already down (overlapping draw); recovery pending
        self.crashes += 1
        for listener in self.on_crash:
            listener(index, now)

    def _recover(self, index: int) -> None:
        if self.plane.shards[index].down is False:
            return
        now = self.plane.engine.now
        self.plane.recover_shard(index, now)
        self.recoveries += 1
        for listener in self.on_recover:
            listener(index, now)

    def __repr__(self) -> str:
        return (
            f"GatewayFailureInjector(rate={self.config.gateway_failure_rate}, "
            f"shards={len(self.plane.shards)}, crashes={self.crashes}, "
            f"recoveries={self.recoveries})"
        )
