"""repro.resilience — failure domains and the machinery to survive them.

The HORSE paper evaluates a healthy single node; a deployable platform
must keep its latency promises while nodes crash, resumes hang, and
load spikes.  This package adds both sides of that story:

* :mod:`repro.resilience.failures` — seeded, replayable infrastructure
  failures: node crashes/recoveries through the sim engine, and
  transient / slow / hung resume faults through the hypervisor fault
  hooks (flaky hosts concentrate faults, the asymmetry breakers exploit);
* :mod:`repro.resilience.retry` — capped exponential backoff with full
  jitter, plus hedged (tied) requests for uLL functions;
* :mod:`repro.resilience.breaker` — per-node circuit breakers
  (closed / open / half-open) steering placement away from sick hosts;
* :mod:`repro.resilience.degradation` — the hot → warm → cold fallback
  ladder and a load-shedding admission controller with reserved
  headroom for high-priority (uLL) work;
* :mod:`repro.resilience.gateway` — :class:`ResilientGateway`, the
  request layer composing all of the above over a
  :class:`~repro.faas.cluster.FaaSCluster`;
* :mod:`repro.resilience.checks` — ``repro.check`` checkers proving a
  chaos run sound (legal breaker transitions, no request both shed and
  completed, no lost invocations).
"""

from repro.resilience.breaker import (
    LEGAL_TRANSITIONS,
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.checks import (
    all_resolved_checker,
    breaker_checker,
    cluster_accounting_checker,
    request_ledger_checker,
    resilience_registry,
)
from repro.resilience.degradation import (
    DEGRADATION_LADDER,
    AdmissionConfig,
    AdmissionController,
    DegradationStats,
    degrade,
    ladder_level,
    plan_with_ladder,
)
from repro.resilience.failures import (
    FAILURE_KINDS,
    FailureConfig,
    FailureInjector,
    GatewayFailureConfig,
    GatewayFailureInjector,
)
from repro.resilience.gateway import (
    Attempt,
    Request,
    RequestState,
    ResilienceConfig,
    ResilientGateway,
)
from repro.resilience.policies import (
    DeadlineAwarePolicy,
    DispatchPolicy,
    MqfqStickyPolicy,
    PullQueuePolicy,
    PushPlacementPolicy,
    default_dispatch_policy,
    dispatch_policy_kinds,
    eligible_candidates,
    make_dispatch_policy,
    register_dispatch_policy,
    set_default_dispatch_policy,
)
from repro.resilience.retry import HedgePolicy, RetryPolicy

__all__ = [
    "LEGAL_TRANSITIONS",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "all_resolved_checker",
    "breaker_checker",
    "cluster_accounting_checker",
    "request_ledger_checker",
    "resilience_registry",
    "DEGRADATION_LADDER",
    "AdmissionConfig",
    "AdmissionController",
    "DegradationStats",
    "degrade",
    "ladder_level",
    "plan_with_ladder",
    "FAILURE_KINDS",
    "FailureConfig",
    "FailureInjector",
    "GatewayFailureConfig",
    "GatewayFailureInjector",
    "Attempt",
    "Request",
    "RequestState",
    "ResilienceConfig",
    "ResilientGateway",
    "DeadlineAwarePolicy",
    "DispatchPolicy",
    "MqfqStickyPolicy",
    "PullQueuePolicy",
    "PushPlacementPolicy",
    "default_dispatch_policy",
    "dispatch_policy_kinds",
    "eligible_candidates",
    "make_dispatch_policy",
    "register_dispatch_policy",
    "set_default_dispatch_policy",
    "HedgePolicy",
    "RetryPolicy",
]
