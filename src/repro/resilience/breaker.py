"""Per-node circuit breakers (closed / open / half-open).

A breaker guards one host.  Consecutive attempt failures trip it OPEN;
while open, routing skips the host entirely (no request pays the cost
of discovering the same sick node again).  After ``open_ns`` of
simulated time the breaker admits a bounded number of HALF_OPEN probe
attempts: one success re-closes it, one failure re-opens it.

State machine (the only legal edges — checked by
``invariant_violations`` and the ``repro.check`` breaker checker)::

    CLOSED ──failures >= threshold──▶ OPEN
    OPEN ──open_ns elapsed──▶ HALF_OPEN
    HALF_OPEN ──probe success──▶ CLOSED
    HALF_OPEN ──probe failure──▶ OPEN

Every transition is timestamped and kept, so a chaos run can be audited
(and exported as ``repro.obs`` instants) after the fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.context import NULL_OBS, Observability
from repro.sim.units import milliseconds


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Legal state-machine edges; anything else is an invariant violation.
LEGAL_TRANSITIONS = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
}


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Tunables for one circuit breaker."""

    #: consecutive failures that trip CLOSED -> OPEN
    failure_threshold: int = 3
    #: how long an OPEN breaker rejects before probing (simulated ns)
    open_ns: int = milliseconds(500)
    #: concurrent probe attempts allowed while HALF_OPEN
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.open_ns < 0:
            raise ValueError(f"open_ns must be >= 0, got {self.open_ns}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass(frozen=True, slots=True)
class BreakerTransition:
    """One audited state change."""

    now_ns: int
    source: BreakerState
    target: BreakerState
    reason: str


class CircuitBreaker:
    """One host's breaker; all times are simulated nanoseconds."""

    __slots__ = (
        "config", "name", "obs", "state", "consecutive_failures",
        "opened_at_ns", "probes_in_flight", "transitions",
        "successes", "failures",
    )

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        name: str = "",
        obs: Observability = NULL_OBS,
    ) -> None:
        self.config = config
        self.name = name
        self.obs = obs
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ns: Optional[int] = None
        self.probes_in_flight = 0
        self.transitions: List[BreakerTransition] = []
        self.successes = 0
        self.failures = 0

    # ------------------------------------------------------------------
    def _transition(self, target: BreakerState, now_ns: int, reason: str) -> None:
        record = BreakerTransition(now_ns, self.state, target, reason)
        self.transitions.append(record)
        self.state = target
        if self.obs.enabled:
            self.obs.metrics.counter(
                f"breaker.transition.{target.value}",
                "circuit breaker state entries",
            ).inc()
            self.obs.tracer.record_instant(
                "breaker.transition",
                now_ns,
                category="resilience",
                breaker=self.name,
                source=record.source.value,
                target=target.value,
                reason=reason,
            )

    # ------------------------------------------------------------------
    def allow(self, now_ns: int) -> bool:
        """May an attempt be routed through this breaker right now?

        An OPEN breaker whose cool-down elapsed lazily moves to
        HALF_OPEN here, so callers never need a timer event per breaker.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            assert self.opened_at_ns is not None
            if now_ns - self.opened_at_ns >= self.config.open_ns:
                self._transition(
                    BreakerState.HALF_OPEN, now_ns, "open interval elapsed"
                )
                self.probes_in_flight = 0
                return True
            return False
        return self.probes_in_flight < self.config.half_open_probes

    def force_open(self, now_ns: int, reason: str = "forced open") -> None:
        """Trip the breaker administratively (CLOSED -> OPEN).

        The control plane uses this for conservative post-recovery
        rebuilds: a replacement gateway shard cannot know which hosts
        its predecessor's breakers were guarding (breaker state is not
        in the intent log by design), so it re-opens every breaker and
        lets the half-open probes rediscover health.  No-op unless the
        breaker is CLOSED — an already-OPEN breaker is already cautious.
        """
        if self.state is not BreakerState.CLOSED:
            return
        self._transition(BreakerState.OPEN, now_ns, reason)
        self.opened_at_ns = now_ns
        self.consecutive_failures = 0

    def on_attempt(self, now_ns: int) -> None:
        """An attempt was actually launched through this breaker."""
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight += 1

    def record_success(self, now_ns: int) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(BreakerState.CLOSED, now_ns, "probe succeeded")
            self.opened_at_ns = None

    def record_failure(self, now_ns: int) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self.probes_in_flight = max(0, self.probes_in_flight - 1)
            self._transition(BreakerState.OPEN, now_ns, "probe failed")
            self.opened_at_ns = now_ns
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._transition(
                BreakerState.OPEN,
                now_ns,
                f"{self.consecutive_failures} consecutive failures",
            )
            self.opened_at_ns = now_ns

    # ------------------------------------------------------------------
    @property
    def open_count(self) -> int:
        """Times this breaker entered OPEN."""
        return sum(
            1 for t in self.transitions if t.target is BreakerState.OPEN
        )

    def invariant_violations(self) -> List[str]:
        """Breaker state-machine problems, as messages (empty = sound)."""
        violations: List[str] = []
        label = self.name or "breaker"
        previous: Tuple[BreakerState, int] = (BreakerState.CLOSED, 0)
        for record in self.transitions:
            if (record.source, record.target) not in LEGAL_TRANSITIONS:
                violations.append(
                    f"{label}: illegal transition {record.source.value} -> "
                    f"{record.target.value} at {record.now_ns}"
                )
            if record.source is not previous[0]:
                violations.append(
                    f"{label}: transition at {record.now_ns} leaves "
                    f"{record.source.value} but breaker was in "
                    f"{previous[0].value}"
                )
            if record.now_ns < previous[1]:
                violations.append(
                    f"{label}: transition timestamps not monotone at "
                    f"{record.now_ns}"
                )
            previous = (record.target, record.now_ns)
        if previous[0] is not self.state:
            violations.append(
                f"{label}: recorded transitions end in {previous[0].value} "
                f"but live state is {self.state.value}"
            )
        if self.state is BreakerState.OPEN and self.opened_at_ns is None:
            violations.append(f"{label}: OPEN without an opened_at timestamp")
        if self.probes_in_flight < 0:
            violations.append(
                f"{label}: negative probes_in_flight {self.probes_in_flight}"
            )
        return violations

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name or '?'}, {self.state.value}, "
            f"fails={self.consecutive_failures})"
        )
