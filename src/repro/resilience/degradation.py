"""Graceful degradation: the hot → warm → cold ladder and load shedding.

Two mechanisms keep the platform answering *something* instead of
collapsing tail latency when the fast path breaks:

* the **degradation ladder** — a request that wanted a HORSE hot resume
  falls back to a vanilla warm resume after a fast-path failure, and to
  a cold start after that (or immediately, when no pooled sandbox
  exists anywhere).  Every step down is explicit and counted;
* the **admission controller** — under overload the platform sheds the
  lowest-priority work at the door.  Capacity above the low-priority
  watermark is reserved headroom only priority >= ``reserved_priority``
  requests may use, so load shedding rejects cheap work first and uLL
  traffic last.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.faas.invocation import StartType

#: The ladder, fastest first.  RESTORE is deliberately absent: snapshot
#: restore needs per-function snapshot templates which a degraded node
#: cannot assume, so the chain steps straight to the always-possible
#: cold boot.
DEGRADATION_LADDER = (StartType.HORSE, StartType.WARM, StartType.COLD)


def ladder_level(start_type: StartType) -> int:
    """Position of *start_type* on the ladder (COLD for off-ladder)."""
    try:
        return DEGRADATION_LADDER.index(start_type)
    except ValueError:
        return len(DEGRADATION_LADDER) - 1


def degrade(start_type: StartType) -> StartType:
    """One step down the ladder (COLD degrades to itself)."""
    level = ladder_level(start_type)
    return DEGRADATION_LADDER[min(level + 1, len(DEGRADATION_LADDER) - 1)]


@dataclass(frozen=True)
class AdmissionConfig:
    """Load-shedding thresholds for the admission controller."""

    #: maximum concurrently admitted (non-terminal) requests
    capacity: int = 64
    #: slots above ``capacity - reserved_slots`` need high priority
    reserved_slots: int = 8
    #: minimum priority allowed to use the reserved headroom
    reserved_priority: int = 1

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if not 0 <= self.reserved_slots < self.capacity:
            raise ValueError(
                f"reserved_slots must be in [0, capacity), got "
                f"{self.reserved_slots}"
            )


class AdmissionController:
    """Accept-or-shed decisions; the caller reports occupancy."""

    def __init__(self, config: AdmissionConfig = AdmissionConfig()) -> None:
        self.config = config
        self.admitted = 0
        self.shed = 0
        self.shed_by_priority: Dict[int, int] = {}

    def limit_for(self, priority: int) -> int:
        """Concurrency watermark applying to *priority* requests."""
        if priority >= self.config.reserved_priority:
            return self.config.capacity
        return self.config.capacity - self.config.reserved_slots

    def admit(self, priority: int, in_flight: int) -> bool:
        """Decide one arrival; updates the shed/admit counters."""
        if in_flight < self.limit_for(priority):
            self.admitted += 1
            return True
        self.shed += 1
        self.shed_by_priority[priority] = (
            self.shed_by_priority.get(priority, 0) + 1
        )
        return False


@dataclass
class DegradationStats:
    """Ladder usage over one run, per transition tag."""

    #: "horse->warm", "warm->cold", ... -> count
    transitions: Dict[str, int] = field(default_factory=dict)

    def record(self, source: StartType, target: StartType) -> None:
        if source is target:
            return
        tag = f"{source.value}->{target.value}"
        self.transitions[tag] = self.transitions.get(tag, 0) + 1

    def total(self) -> int:
        return sum(self.transitions.values())


def plan_with_ladder(
    pool_size: int, requested: StartType
) -> tuple[StartType, Optional[str]]:
    """Ladder-aware start planning against a known pool occupancy.

    Mirrors :func:`repro.faas.cluster.plan_start` but works from a
    pool size, letting the resilient gateway decide before touching the
    host.
    """
    if requested in (StartType.HORSE, StartType.WARM) and pool_size == 0:
        return StartType.COLD, f"{requested.value}->cold"
    return requested, None
