"""Pluggable dispatch policies for the resilient gateway.

The gateway used to hard-code one push-based placement call; every
placement decision now routes through a :class:`DispatchPolicy`, a
small hook protocol wide enough for push *and* pull shaped scheduling:

* ``on_submit(request)`` — admission-time bookkeeping (fair-queueing
  policies stamp virtual-time tags here);
* ``select_host(request, candidates) -> Optional[int]`` — the placement
  decision proper.  Returning ``None`` parks the request in the
  gateway's capacity lot (for a pull policy that *is* the central
  queue: no host has a free pull slot);
* ``order_queue(parked)`` — the dequeue order when the parking lot
  drains (FIFO for push, priority/virtual-time/EDF for the rest);
* ``on_host_idle(host)`` — after a completion freed capacity on a
  host; return True to drain the queue (the pull signal: "this worker
  asks for more");
* ``on_complete / on_crash / on_recover`` — lifecycle notifications to
  retire tags and sticky state;
* ``invariant_violations()`` — policy-internal soundness, folded into
  the gateway's audit.

Policies are registered on a shared :class:`~repro.policyreg.PolicyRegistry`
(``REPRO_DISPATCH_POLICY`` env var, ``set_default_dispatch_policy``)
under the same convention as sim schedulers and prewarm policies.

Shipped contenders
------------------

``push-least-loaded``
    The pre-refactor behavior, bit for bit: delegate to the cluster's
    placement policy (warm-affinity over least-loaded by default).
    Byte-identical same-seed output is a hard regression gate.

``pull[-<slots>]``
    Hiku-style pull scheduling: instead of the gateway pushing onto a
    load estimate, each host exposes ``slots`` pull slots (default 8)
    and work only moves when a host has a free slot — the central
    queue is the gateway's parking lot, drained high-priority-first
    whenever a completion frees a slot.  Kills load-estimate staleness
    at the cost of queueing when the fleet is saturated.

``mqfq-sticky``
    MQFQ start-time fair queueing over per-function flows with
    locality-sticky placement: each flow carries an integer virtual
    start tag (weighted by priority class), the parked queue drains in
    tag order, and a flow re-uses its previous host while that host
    has spare depth — stickiness that accelerator-tagged functions
    (GPU) turn into data-locality wins.

``deadline[-<slack_ms>]``
    Żuk-style deadline-aware ordering: the parked queue drains
    earliest-deadline-first, and a request inside its slack window
    (default 50 ms) is steered to hosts holding a warm sandbox so the
    tail does not pay a cold start it has no time for.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.faas.cluster import FaaSCluster, _least_loaded_of
from repro.policyreg import PolicyRegistry
from repro.sim.units import milliseconds

if TYPE_CHECKING:  # pragma: no cover - import cycle (gateway imports us)
    from repro.resilience.gateway import Attempt, Request, ResilientGateway


def eligible_candidates(
    cluster: FaaSCluster, function_name: str, candidates: List[int]
) -> List[int]:
    """Filter *candidates* down to hosts satisfying the function's
    accelerator requirement.  On a homogeneous cluster (no tags — the
    overwhelmingly common case) the input list is returned untouched,
    keeping the hot path allocation-free."""
    accelerators = cluster.accelerators
    if not accelerators:
        return candidates
    need = cluster.hosts[0].registry.get(function_name).accelerator
    if not need:
        return candidates
    return [i for i in candidates if need in accelerators.get(i, ())]


class DispatchPolicy:
    """Base protocol; every hook except ``select_host`` defaults to the
    push-shaped no-op so the pre-refactor event flow is the baseline."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.gateway: Optional["ResilientGateway"] = None
        self.cluster: Optional[FaaSCluster] = None

    def bind(self, gateway: "ResilientGateway") -> None:
        """Attach to one gateway (policies are single-owner: a fresh
        instance per gateway, from the registry factory)."""
        if self.gateway is not None and self.gateway is not gateway:
            raise ValueError(
                f"dispatch policy {self.name!r} is already bound; "
                "make() a fresh instance per gateway"
            )
        self.gateway = gateway
        self.cluster = gateway.cluster

    # -- hooks ---------------------------------------------------------
    def on_submit(self, request: "Request") -> None:
        """A request was admitted (before its first launch attempt)."""

    def select_host(
        self, request: "Request", candidates: List[int]
    ) -> Optional[int]:
        """Pick a host index from the non-empty routable *candidates*,
        or None to park the request until capacity changes."""
        raise NotImplementedError

    def order_queue(self, parked: List["Request"]) -> Sequence["Request"]:
        """Dequeue order for a parking-lot drain (default: FIFO)."""
        return parked

    def on_host_idle(self, host: int) -> bool:
        """A completion freed capacity on *host*.  Return True to drain
        the parked queue (the pull signal)."""
        return False

    def on_complete(self, request: "Request", attempt: "Attempt") -> None:
        """An attempt completed (the request may or may not be terminal)."""

    def on_crash(self, host: int, now_ns: int) -> None:
        """A host crashed (before the gateway re-dispatches victims)."""

    def on_recover(self, host: int, now_ns: int) -> None:
        """A crashed host came back (before re-warm and drain)."""

    def invariant_violations(self) -> List[str]:
        """Policy-internal soundness; audited with the gateway ledger."""
        return []


class PushPlacementPolicy(DispatchPolicy):
    """Pre-refactor default: push onto the cluster's placement policy.

    ``select_host`` must stay byte-identical to the old inline call —
    same candidate list, same delegation — on accelerator-free
    clusters; the chaos goldens pin it.
    """

    name = "push-least-loaded"

    def select_host(
        self, request: "Request", candidates: List[int]
    ) -> Optional[int]:
        cluster = self.cluster
        if cluster.accelerators:
            candidates = eligible_candidates(
                cluster, request.function, candidates
            )
            if not candidates:
                return None
        return cluster.placement.choose_from(
            cluster, request.function, candidates
        )


class PullQueuePolicy(DispatchPolicy):
    """Hiku-style pull scheduling: hosts pull, the gateway queues.

    A host is *pullable* while it has fewer than ``slots`` attempts in
    flight (the gateway's ``_inflight`` ledger is exact, not a stale
    estimate — that exactness is the point of pull scheduling).  With
    no pullable host the request parks; every completion is a pull
    signal (``on_host_idle`` → drain), and the queue releases
    high-priority (uLL) work first, FIFO within a class.
    """

    name = "pull"

    def __init__(self, slots: int = 8) -> None:
        super().__init__()
        if slots < 1:
            raise ValueError(f"pull slots must be >= 1, got {slots}")
        self.slots = slots

    def select_host(
        self, request: "Request", candidates: List[int]
    ) -> Optional[int]:
        cluster = self.cluster
        candidates = eligible_candidates(cluster, request.function, candidates)
        inflight = self.gateway._inflight
        slots = self.slots
        best = None
        best_depth = slots
        for i in candidates:
            depth = len(inflight[i])
            if depth < best_depth:
                best = i
                best_depth = depth
        return best

    def order_queue(self, parked: List["Request"]) -> Sequence["Request"]:
        # Stable sort: FIFO within a priority class.
        return sorted(parked, key=lambda r: -r.priority)

    def on_host_idle(self, host: int) -> bool:
        return True

    def invariant_violations(self) -> List[str]:
        over = [
            i
            for i, pairs in self.gateway._inflight.items()
            if len(pairs) > self.slots
        ]
        if over:
            return [
                f"pull: hosts {over} exceed {self.slots} pull slots"
            ]
        return []


#: Virtual cost of one request at weight 1, in abstract fair-queueing
#: units.  Integer arithmetic only — float virtual time would break the
#: byte-identity determinism contract across platforms.
_MQFQ_COST = 1_000_000


class MqfqStickyPolicy(DispatchPolicy):
    """MQFQ start-time fair queueing with locality-sticky flows.

    Each function name is a flow.  ``on_submit`` stamps the request
    with a virtual start tag ``max(V, finish[flow])`` and advances the
    flow's finish tag by ``cost / weight`` (priority > 0 weighs 4×, so
    uLL flows accumulate virtual time slower and win ties).  The
    parked queue drains in tag order — the fair-queueing schedule —
    and placement prefers the flow's previous host while it has spare
    depth, so warm state (and accelerator residency) is reused.
    """

    name = "mqfq-sticky"

    def __init__(self, sticky_depth: int = 4) -> None:
        super().__init__()
        if sticky_depth < 1:
            raise ValueError(
                f"mqfq sticky depth must be >= 1, got {sticky_depth}"
            )
        self.sticky_depth = sticky_depth
        self.virtual = 0
        self._finish: Dict[str, int] = {}
        self._tags: Dict[int, int] = {}
        self._last_host: Dict[str, int] = {}

    def on_submit(self, request: "Request") -> None:
        flow = request.function
        start = self._finish.get(flow, 0)
        if self.virtual > start:
            start = self.virtual
        self._tags[request.request_id] = start
        weight = 4 if request.priority > 0 else 1
        self._finish[flow] = start + _MQFQ_COST // weight

    def select_host(
        self, request: "Request", candidates: List[int]
    ) -> Optional[int]:
        tag = self._tags.get(request.request_id)
        if tag is not None and tag > self.virtual:
            self.virtual = tag
        cluster = self.cluster
        candidates = eligible_candidates(cluster, request.function, candidates)
        if not candidates:
            return None
        sticky = self._last_host.get(request.function)
        if (
            sticky is not None
            and sticky in candidates
            and len(self.gateway._inflight[sticky]) < self.sticky_depth
        ):
            host = sticky
        else:
            host = _least_loaded_of(cluster, candidates)
        self._last_host[request.function] = host
        return host

    def order_queue(self, parked: List["Request"]) -> Sequence["Request"]:
        tags = self._tags
        return sorted(
            parked, key=lambda r: (tags.get(r.request_id, 0), r.request_id)
        )

    def on_complete(self, request: "Request", attempt: "Attempt") -> None:
        if request.state.terminal:
            self._tags.pop(request.request_id, None)

    def on_crash(self, host: int, now_ns: int) -> None:
        # Sticky pointers at a dead host would force every flow through
        # the `sticky in candidates` miss path until it recovers.
        self._last_host = {
            flow: h for flow, h in self._last_host.items() if h != host
        }

    def invariant_violations(self) -> List[str]:
        violations: List[str] = []
        requests = self.gateway.requests
        from repro.resilience.gateway import RequestState

        stale = [
            rid
            for rid in self._tags
            if requests[rid].state is RequestState.COMPLETED
        ]
        if stale:
            violations.append(
                f"mqfq: {len(stale)} virtual-time tags for completed requests"
            )
        for flow, finish in self._finish.items():
            if finish < 0:
                violations.append(f"mqfq: flow {flow!r} finish tag {finish} < 0")
        return violations


class DeadlineAwarePolicy(DispatchPolicy):
    """Żuk-style deadline-aware dispatch with EDF queue release.

    Placement is least-loaded until a request enters its slack window
    (``tight_slack_ns`` before its deadline), at which point hosts
    holding a warm sandbox for the function are preferred — a request
    out of slack cannot afford the cold-start fallback.  The parking
    lot drains earliest-deadline-first.
    """

    name = "deadline"

    def __init__(self, tight_slack_ns: int = milliseconds(50)) -> None:
        super().__init__()
        if tight_slack_ns < 0:
            raise ValueError(
                f"deadline slack must be >= 0 ns, got {tight_slack_ns}"
            )
        self.tight_slack_ns = tight_slack_ns

    def select_host(
        self, request: "Request", candidates: List[int]
    ) -> Optional[int]:
        cluster = self.cluster
        candidates = eligible_candidates(cluster, request.function, candidates)
        if not candidates:
            return None
        slack = request.deadline_ns - self.gateway._clock._now
        if slack <= self.tight_slack_ns:
            hosts = cluster.hosts
            warm = [
                i
                for i in candidates
                if hosts[i].pool.size(request.function) > 0
            ]
            if warm:
                return _least_loaded_of(cluster, warm)
        return _least_loaded_of(cluster, candidates)

    def order_queue(self, parked: List["Request"]) -> Sequence["Request"]:
        return sorted(parked, key=lambda r: (r.deadline_ns, r.request_id))


# ----------------------------------------------------------------------
# Registry (the shared policy-axis convention: see repro.policyreg)
# ----------------------------------------------------------------------
DISPATCH_POLICIES = PolicyRegistry(
    axis="dispatch",
    env_var="REPRO_DISPATCH_POLICY",
    builtin="push-least-loaded",
)


def _make_push(spec: str) -> DispatchPolicy:
    return PushPlacementPolicy()


def _make_pull(spec: str) -> DispatchPolicy:
    if spec == "pull":
        return PullQueuePolicy()
    param = spec[len("pull-"):]
    try:
        slots = int(param)
    except ValueError:
        raise ValueError(f"bad pull slots spec {spec!r}") from None
    return PullQueuePolicy(slots=slots)


def _make_mqfq(spec: str) -> DispatchPolicy:
    return MqfqStickyPolicy()


def _make_deadline(spec: str) -> DispatchPolicy:
    if spec == "deadline":
        return DeadlineAwarePolicy()
    param = spec[len("deadline-"):]
    try:
        slack_ms = int(param)
    except ValueError:
        raise ValueError(f"bad deadline slack spec {spec!r}") from None
    return DeadlineAwarePolicy(tight_slack_ns=milliseconds(slack_ms))


DISPATCH_POLICIES.register("push-least-loaded", _make_push)
DISPATCH_POLICIES.register(
    "pull", _make_pull, syntax="pull[-<slots>]", parameterized=True
)
DISPATCH_POLICIES.register("mqfq-sticky", _make_mqfq)
DISPATCH_POLICIES.register(
    "deadline", _make_deadline, syntax="deadline[-<slack_ms>]",
    parameterized=True,
)


def make_dispatch_policy(spec: str) -> DispatchPolicy:
    """Instantiate a fresh dispatch policy from its spec string."""
    return DISPATCH_POLICIES.make(spec)


def dispatch_policy_kinds() -> List[str]:
    """Registered dispatch-policy spec syntaxes."""
    return DISPATCH_POLICIES.kinds()


def register_dispatch_policy(family, factory, syntax=None, parameterized=False):
    """Register a new dispatch-policy family (rejects duplicates)."""
    DISPATCH_POLICIES.register(
        family, factory, syntax=syntax, parameterized=parameterized
    )


def set_default_dispatch_policy(spec: str) -> str:
    """Set the process-default dispatch policy; returns the previous."""
    return DISPATCH_POLICIES.set_default(spec)


def default_dispatch_policy() -> str:
    """Effective default: override > ``REPRO_DISPATCH_POLICY`` > builtin."""
    return DISPATCH_POLICIES.default()
