"""The resilient gateway: retries, hedging, breakers, and degradation.

:class:`ResilientGateway` fronts a :class:`~repro.faas.cluster.FaaSCluster`
and turns raw triggers into *requests* with failure semantics:

* **admission control** — arrivals beyond the concurrency watermark are
  shed at the door, lowest priority first (reserved headroom only
  high-priority/uLL work may use);
* **placement steering** — the cluster's placement policy only sees
  healthy, breaker-admitted hosts (per-node circuit breakers are
  installed as the cluster's ``host_gate``);
* **retries** — transient resume errors, hung resumes (detected by an
  attempt timeout) and node crashes re-dispatch the request with capped
  exponential backoff and seeded full jitter, within a hard attempt
  budget;
* **degradation** — each failed attempt steps the request down the
  hot → warm → cold ladder, and pool misses fall through to cold
  explicitly;
* **hedging** — uLL-class requests whose primary attempt is still
  running after the hedge delay fire one tied attempt on a different
  node; first completion wins.

Every request reaches exactly one terminal state — COMPLETED, SHED, or
FAILED — and the whole ledger is auditable by the ``repro.check``
checkers in :mod:`repro.resilience.checks` (no request both shed and
completed, retry budget respected, breaker state machine legal).

Deadlines bound *retrying*, not an execution already in flight: once an
attempt is executing it is allowed to finish (completions past the
deadline still count), but no new attempt launches after the deadline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faas.cluster import FaaSCluster, NoHealthyHostError
from repro.faas.invocation import Invocation, StartType
from repro.hypervisor.pause_resume import HungResumeError, TransientResumeError
from repro.obs.context import NULL_OBS, Observability, current as current_obs
from repro.resilience.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.resilience.degradation import (
    AdmissionConfig,
    AdmissionController,
    DegradationStats,
    degrade,
    plan_with_ladder,
)
from repro.resilience.failures import FailureInjector
from repro.resilience.policies import (
    DispatchPolicy,
    default_dispatch_policy,
    make_dispatch_policy,
)
from repro.resilience.retry import HedgePolicy, RetryPolicy
from repro.sim.rng import RngRegistry
from repro.sim.units import seconds


class RequestState(enum.Enum):
    IN_FLIGHT = "in-flight"
    COMPLETED = "completed"
    SHED = "shed"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self is not RequestState.IN_FLIGHT


@dataclass(slots=True)
class Attempt:
    """One dispatch of a request onto one host."""

    index: int
    host: int
    start_type: StartType
    launched_ns: int
    hedge: bool = False
    #: "ok" while executing/completed; else "transient" | "hung" | "crash"
    status: str = "ok"
    #: fencing token stamped by the control-plane journal (0 = unjournaled)
    fence: int = 0
    invocation: Optional[Invocation] = None
    executing: bool = False
    #: the gateway's own completion callback event (cancellable)
    completion_event: object = field(default=None, repr=False)


@dataclass(slots=True)
class Request:
    """Ledger entry for one submitted invocation request."""

    request_id: int
    function: str
    priority: int
    submit_ns: int
    deadline_ns: int
    state: RequestState = RequestState.IN_FLIGHT
    attempts: List[Attempt] = field(default_factory=list)
    hedges_used: int = 0
    no_host_waits: int = 0
    executing: int = 0
    completed_ns: Optional[int] = None
    resolution: str = ""
    #: current rung on the hot -> warm -> cold ladder
    current_start: StartType = StartType.WARM
    redundant_hedges: int = 0
    run_logic: bool = False
    #: maintained count of non-hedge attempts — the retry-budget check
    #: runs on every attempt and every no-host wait, so it must not
    #: re-scan the attempt list each time
    primary_count: int = 0
    #: global request id at the control-plane frontend (-1 = unrouted);
    #: the durable key the intent log and the exactly-once oracle use
    origin: int = -1

    @property
    def primary_attempts(self) -> int:
        return self.primary_count

    @property
    def retries(self) -> int:
        return max(0, self.primary_attempts - 1)

    @property
    def latency_ns(self) -> Optional[int]:
        if self.completed_ns is None:
            return None
        return self.completed_ns - self.submit_ns


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the resilient gateway composes, in one bundle."""

    retry: RetryPolicy = RetryPolicy()
    hedge: HedgePolicy = HedgePolicy()
    #: None disables per-node circuit breakers (retries-only mode)
    breaker: Optional[BreakerConfig] = BreakerConfig()
    admission: AdmissionConfig = AdmissionConfig()
    #: retry gate: no new attempt launches this long after submit
    default_deadline_ns: int = seconds(10)
    #: warm sandboxes re-provisioned per function when a host recovers
    rewarm_per_host: int = 1
    #: dispatch-policy spec (see repro.resilience.policies); None
    #: resolves the process default (``REPRO_DISPATCH_POLICY`` env /
    #: ``set_default_dispatch_policy``) at gateway construction
    dispatch: Optional[str] = None


class ResilientGateway:
    """Failure-aware request layer over one cluster."""

    def __init__(
        self,
        cluster: FaaSCluster,
        config: ResilienceConfig = ResilienceConfig(),
        seed: int = 0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.obs = obs if obs is not None else current_obs()
        self.engine = cluster.engine
        # The sim clock never changes identity; reading it directly
        # skips two property hops per `now` on the attempt hot loop.
        self._clock = cluster.engine.clock
        self._rng = RngRegistry(seed).fork("resilient-gateway").stream("backoff")
        self.requests: List[Request] = []
        self.admission = AdmissionController(config.admission)
        self.degradations = DegradationStats()
        self.active = 0
        self._inflight: Dict[int, List[Tuple[Request, Attempt]]] = {
            i: [] for i in range(len(cluster.hosts))
        }
        self.breakers: Dict[int, CircuitBreaker] = {}
        if config.breaker is not None:
            self.breakers = {
                i: CircuitBreaker(config.breaker, name=f"host-{i}", obs=self.obs)
                for i in range(len(cluster.hosts))
            }
            cluster.host_gate = self._breaker_gate
        #: Every placement decision routes through here — push policies
        #: choose a host, pull policies may answer None (park and wait
        #: for a host to pull).  A fresh instance per gateway: policies
        #: carry mutable scheduling state (virtual time, sticky maps).
        self.dispatch: DispatchPolicy = make_dispatch_policy(
            config.dispatch or default_dispatch_policy()
        )
        self.dispatch.bind(self)
        # Counter handles are cached per name; a tracer/registry swap on
        # the bundle invalidates the cache (NULL_OBS never rebinds and
        # must not hold hook references, so it is left unhooked).
        self._counters: Dict[str, object] = {}
        #: latency histogram handle, bound per registry (hot: one
        #: observe per completed request).
        self._hist_latency: Optional[object] = None
        #: Registry the no-host-wait collector is installed on.  Every
        #: request already counts its own waits — so instead of a
        #: per-event inc, a collector folds the existing per-request
        #: tallies into the counter at snapshot time (same batching
        #: pattern as the PELT fold export in repro.hypervisor.cpu).
        self._collector_registry: Optional[object] = None
        #: The capacity parking lot.  A request that finds no routable
        #: host parks here instead of polling with backoff (the old
        #: rewait ladder burned ~30 events per request under full
        #: chaos — the profiler attributed 74 % of the study's events
        #: to it).  Parked requests are drained when capacity can have
        #: returned: a breaker's open window expiring (timed wake), a
        #: half-open probe slot freeing (completion drain), a host
        #: recovering, or — the resolution backstop — the earliest
        #: parked deadline, where ``_launch`` fails the request.
        self._parked: List[Request] = []
        #: Earliest pending capacity-wake event time (coalesces wakes;
        #: stale wake events drain harmlessly).
        self._wake_at: Optional[int] = None
        self._draining = False
        #: Control-plane intent journal (duck-typed: record_admit /
        #: record_launch / record_outcome / record_fenced).  None for a
        #: standalone gateway — every hook is behind a None check so the
        #: legacy hot path pays one attribute test, nothing more.
        self.journal = None
        #: Set when the control plane abandons this incarnation (the
        #: gateway shard crashed and a replacement took over).  Every
        #: engine-scheduled entry point bails out when fenced, so a slow
        #: pre-crash attempt can never mutate recovered state or
        #: double-complete a request the replacement re-dispatched.
        self.fenced = False
        if self.obs is not NULL_OBS:
            self.obs.on_rebind(self._rebind_instruments)

    def _rebind_instruments(self, obs: Observability) -> None:
        self._counters.clear()
        self._hist_latency = None
        metrics = obs.metrics
        if metrics.enabled and self._collector_registry is not metrics:
            self._collector_registry = metrics
            counter = metrics.counter(
                "resilience.no_host_wait",
                "attempt deferrals with no routable host",
            )
            requests = self.requests

            def export_no_host_waits() -> None:
                counter.value = sum(r.no_host_waits for r in requests)

            metrics.add_collector(export_no_host_waits)

    # ------------------------------------------------------------------
    def _breaker_gate(self, index: int) -> bool:
        return self.breakers[index].allow(self._clock._now)

    def attach(self, injector: FailureInjector) -> None:
        """Subscribe to the injector's crash/recovery notifications."""
        injector.on_crash.append(self._handle_crash)
        injector.on_recover.append(self._handle_recover)

    def _spec(self, function_name: str):
        return self.cluster.hosts[0].registry.get(function_name)

    def _counter(self, name: str, help_text: str = ""):
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = self.obs.metrics.counter(
                name, help_text
            )
        return counter

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        function_name: str,
        priority: int = 0,
        deadline_ns: Optional[int] = None,
        run_logic: bool = False,
        origin: int = -1,
        submit_ns: Optional[int] = None,
    ) -> Request:
        """Admit (or shed) one request and start its first attempt.

        ``origin`` is the frontend's global request id (the intent-log
        key); ``submit_ns`` backdates the ledger entry to the original
        arrival instant for requests that waited in the frontend
        parking lot — latency and the deadline are measured from it,
        so frontend queueing is never hidden.
        """
        now = self._clock._now
        arrived = now if submit_ns is None else submit_ns
        spec = self._spec(function_name)
        request = Request(
            request_id=len(self.requests),
            function=function_name,
            priority=priority,
            submit_ns=arrived,
            deadline_ns=arrived + (deadline_ns or self.config.default_deadline_ns),
            current_start=StartType.HORSE if spec.is_ull else StartType.WARM,
            run_logic=run_logic,
            origin=origin,
        )
        self.requests.append(request)
        journal = self.journal
        if journal is not None:
            journal.record_admit(request, now)
        if not self.admission.admit(priority, self.active):
            request.state = RequestState.SHED
            request.resolution = "admission-overload"
            if journal is not None:
                journal.record_outcome(request, now, fence=0)
            if self.obs.enabled:
                self._counter(
                    "resilience.shed", "requests shed by admission control"
                ).inc()
                self.obs.tracer.record_instant(
                    "request.shed", now, category="resilience",
                    function=function_name, priority=priority,
                )
            return request
        self.active += 1
        self.dispatch.on_submit(request)
        self._launch(request, hedge=False)
        return request

    def restore(
        self,
        function_name: str,
        priority: int,
        submit_ns: int,
        deadline_ns: int,
        origin: int,
        run_logic: bool = False,
    ) -> Request:
        """Reconstruct an admitted-but-unresolved request from an intent
        log (control-plane recovery).

        The request was already admitted by the crashed incarnation, so
        admission is bypassed (a replacement shard must not shed work it
        is obligated to finish) and no second admit record is journaled.
        The retry budget starts fresh: the crashed incarnation's attempt
        history is unknowable by design, and recovery re-dispatches must
        not burn budget the client never saw consumed.  The original
        absolute deadline still applies.
        """
        spec = self._spec(function_name)
        request = Request(
            request_id=len(self.requests),
            function=function_name,
            priority=priority,
            submit_ns=submit_ns,
            deadline_ns=deadline_ns,
            current_start=StartType.HORSE if spec.is_ull else StartType.WARM,
            run_logic=run_logic,
            origin=origin,
        )
        self.requests.append(request)
        self.active += 1
        self.dispatch.on_submit(request)
        self._launch(request, hedge=False)
        return request

    # ------------------------------------------------------------------
    # The attempt loop
    # ------------------------------------------------------------------
    def _launch(
        self, request: Request, hedge: bool, exclude: Tuple[int, ...] = ()
    ) -> None:
        # `request.state.terminal` and `request.primary_attempts`
        # inlined: this method runs once per attempt AND once per
        # no-host rewait (~30x per request under full chaos), so every
        # property hop here is paid tens of thousands of times.
        if self.fenced or request.state is not RequestState.IN_FLIGHT:
            return
        now = self._clock._now
        config = self.config
        if hedge:
            if request.hedges_used >= config.hedge.max_hedges:
                return
        else:
            if now >= request.deadline_ns:
                self._maybe_fail(request, "deadline")
                return
            if request.primary_count >= config.retry.max_attempts:
                self._maybe_fail(request, "retry-budget")
                return
        cluster = self.cluster
        if exclude:
            with cluster.excluding(*exclude):
                candidates = cluster.routable_or_empty()
                host_index = (
                    self.dispatch.select_host(request, candidates)
                    if candidates
                    else None
                )
        else:
            # No exclusions on the primary/retry path; skipping the
            # context manager keeps the (frequent) no-host wait loop
            # off the contextlib machinery, and the empty-candidates
            # branch keeps it off exception machinery too.
            candidates = cluster.routable_or_empty()
            host_index = (
                self.dispatch.select_host(request, candidates)
                if candidates
                else None
            )
        if host_index is None:
            if hedge:
                return  # hedging is best-effort; the primary is still out
            # No metric traffic here: the snapshot-time collector
            # installed in _rebind_instruments exports the sum of the
            # per-request tallies.
            request.no_host_waits += 1
            self._park(request, now)
            return

        host = self.cluster.hosts[host_index]
        planned, miss = plan_with_ladder(
            host.pool.size(request.function), request.current_start
        )
        if miss is not None:
            self.degradations.record(request.current_start, StartType.COLD)
            if self.obs.enabled:
                self._counter(
                    f"resilience.degrade.{miss}", "pool-miss degradations"
                ).inc()
        breaker = self.breakers.get(host_index)
        if breaker is not None:
            breaker.on_attempt(now)
        attempt = Attempt(
            index=len(request.attempts),
            host=host_index,
            start_type=planned,
            launched_ns=now,
            hedge=hedge,
        )
        request.attempts.append(attempt)
        journal = self.journal
        if journal is not None:
            # Write-ahead: the launch intent (and its fencing token) is
            # journaled before the dispatch can fail or complete.
            attempt.fence = journal.record_launch(request, attempt, now)
        if not hedge:
            request.primary_count += 1
        if hedge:
            request.hedges_used += 1
            if self.obs.enabled:
                self._counter("resilience.hedge", "hedged attempts fired").inc()
        elif attempt.index > 0 and self.obs.enabled:
            self._counter("resilience.retry", "retry attempts fired").inc()

        try:
            invocation = self.cluster.trigger_on(
                host_index, request.function, planned, run_logic=request.run_logic
            )
        except TransientResumeError as exc:
            # The sandbox is untouched (still PAUSED): give it back.
            host.pool.release(request.function, exc.sandbox)
            self._attempt_failed(
                request, attempt, "transient",
                retry_delay_ns=self.config.retry.backoff_ns(
                    max(1, request.primary_count), self._rng
                ),
            )
            return
        except HungResumeError as exc:
            # Stuck in RESUMING.  The client cannot see a hang — the
            # attempt just never completes — so it stays "executing"
            # until the hang timeout detects it (and a hedge may race it
            # to completion in the meantime).
            self._begin_hang(request, attempt, exc.sandbox, host_index)
            return

        attempt.invocation = invocation
        attempt.executing = True
        request.executing += 1
        self._inflight[host_index].append((request, attempt))
        attempt.completion_event = self.engine.schedule_at(
            invocation.exec_end_ns,
            lambda: self._on_complete(request, attempt),
            label=f"resilience-complete:{request.request_id}.{attempt.index}",
        )
        if not hedge:
            self._schedule_hedge(request, host_index, now)

    # ------------------------------------------------------------------
    # The capacity parking lot
    # ------------------------------------------------------------------
    def _park(self, request: Request, now: int) -> None:
        """Wait for routable capacity without polling.

        The wake time is the earliest instant anything *timed* can
        change routability: an OPEN breaker on a healthy host reaching
        its half-open probe window, or the request's own retry
        deadline (which resolves it via ``_maybe_fail``).  Untimed
        capacity changes — a half-open probe slot freeing, a crashed
        host recovering — drain the lot from the corresponding gateway
        hooks instead, so no event fires while nothing can change.
        """
        self._parked.append(request)
        target = request.deadline_ns
        health = self.cluster.health
        for index, breaker in self.breakers.items():
            if breaker.state is BreakerState.OPEN and health[index].up:
                assert breaker.opened_at_ns is not None
                target = min(
                    target, breaker.opened_at_ns + breaker.config.open_ns
                )
        # A drain at `now` would re-park into a same-instant loop: the
        # breaker windows and the deadline are both strictly ahead, and
        # the clamp keeps it that way against future callers.
        target = max(target, now + 1)
        if self._wake_at is None or target < self._wake_at:
            self._wake_at = target
            self.engine.schedule_at(
                target,
                self._wake,
                label="resilience-capacity-wake",
                transient=True,
            )

    def _wake(self) -> None:
        if self.fenced:
            return
        self._wake_at = None
        self._drain_parked()

    def _drain_parked(self) -> None:
        """Re-dispatch every parked request (they re-park if still dry).

        Guarded against re-entry: a drained request whose attempt fails
        synchronously lands back in ``_attempt_failed`` which may drain
        again mid-iteration otherwise.
        """
        if not self._parked or self._draining:
            return
        self._draining = True
        try:
            parked = self._parked
            self._parked = []
            # The dispatch policy owns the dequeue order: FIFO for the
            # push default (byte-identical to pre-policy behavior),
            # priority classes for pull, virtual-time for MQFQ, EDF for
            # deadline-aware.
            for request in self.dispatch.order_queue(parked):
                self._launch(request, hedge=False)
        finally:
            self._draining = False

    def _schedule_hedge(
        self, request: Request, primary_host: int, now: int
    ) -> None:
        spec = self._spec(request.function)
        if (
            self.config.hedge.enabled
            and spec.is_ull
            and request.hedges_used < self.config.hedge.max_hedges
            and len(self.cluster.hosts) > 1
        ):
            self.engine.schedule_at(
                now + self.config.hedge.delay_ns,
                lambda: self._maybe_hedge(request, primary_host),
                label=f"resilience-hedge:{request.request_id}",
                transient=True,
            )

    def _maybe_hedge(self, request: Request, primary_host: int) -> None:
        if self.fenced or request.state.terminal or request.executing == 0:
            return
        self._launch(request, hedge=True, exclude=(primary_host,))

    def _begin_hang(
        self, request: Request, attempt: Attempt, sandbox, host_index: int
    ) -> None:
        """A resume hung: the attempt looks in-flight until the timeout."""
        now = self._clock._now
        attempt.executing = True
        request.executing += 1
        self.engine.schedule_at(
            now + self.config.retry.hang_timeout_ns,
            lambda: self._on_hang_timeout(request, attempt, sandbox),
            label=f"resilience-hang:{request.request_id}.{attempt.index}",
            transient=True,
        )
        if not attempt.hedge:
            self._schedule_hedge(request, host_index, now)

    def _on_hang_timeout(self, request: Request, attempt: Attempt, sandbox) -> None:
        """The hang timeout fired: write the attempt (and sandbox) off."""
        now = self._clock._now
        if self.fenced:
            # The incarnation is dead but the node-local watchdog still
            # reclaims the hung sandbox; gateway bookkeeping stays
            # frozen (the replacement re-dispatched from the log).
            self.cluster.hosts[attempt.host].destroy_sandbox(sandbox)
            return
        attempt.executing = False
        attempt.status = "hung"
        request.executing -= 1
        self.cluster.hosts[attempt.host].destroy_sandbox(sandbox)
        breaker = self.breakers.get(attempt.host)
        if breaker is not None:
            breaker.record_failure(now)
        if self.obs.enabled:
            self._counter(
                "resilience.attempt_fail.hung", "failed attempts by kind"
            ).inc()
        if attempt.hedge or request.state.terminal:
            return  # a hedge (or the completed race winner) owns the rest
        previous = request.current_start
        request.current_start = degrade(previous)
        self.degradations.record(previous, request.current_start)
        # The timeout itself was the wait; retry without further backoff.
        self._launch(request, hedge=False)

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def _on_complete(self, request: Request, attempt: Attempt) -> None:
        now = self._clock._now
        if self.fenced:
            # A pre-crash attempt finished after the shard was replaced.
            # The fencing token is stale — the completion is dropped
            # (counted, never applied), which is exactly what makes the
            # recovery re-dispatch safe from double-completion.
            if self.journal is not None:
                self.journal.record_fenced(request, attempt, now)
            return
        attempt.executing = False
        request.executing -= 1
        self._forget_inflight(attempt.host, attempt)
        breaker = self.breakers.get(attempt.host)
        freed_capacity = False
        if breaker is not None:
            # A success on a gated breaker re-opens routing (half-open
            # probe slot freed, or the breaker re-closed) — that is new
            # capacity the parked requests are waiting on.
            freed_capacity = breaker.state is not BreakerState.CLOSED
            breaker.record_success(now)
        if request.state is RequestState.IN_FLIGHT:
            request.state = RequestState.COMPLETED
            request.completed_ns = now
            request.resolution = f"attempt-{attempt.index}"
            self.active -= 1
            if self.journal is not None:
                self.journal.record_outcome(request, now, fence=attempt.fence)
            if self.obs.enabled:
                self._counter(
                    "resilience.complete", "requests completed"
                ).inc()
                histogram = self._hist_latency
                if histogram is None:
                    histogram = self._hist_latency = self.obs.metrics.histogram(
                        "request.latency_ns",
                        help="submit -> completion, retries/backoff included",
                    )
                histogram.observe(request.latency_ns or 0)
        else:
            request.redundant_hedges += 1
            if self.obs.enabled:
                self._counter(
                    "resilience.hedge_redundant",
                    "hedged attempts that lost the race",
                ).inc()
        if freed_capacity:
            self._drain_parked()
        self.dispatch.on_complete(request, attempt)
        # A completion frees capacity on the host; pull-shaped policies
        # treat that as the host asking for more work.
        if self._parked and self.dispatch.on_host_idle(attempt.host):
            self._drain_parked()

    def _attempt_failed(
        self,
        request: Request,
        attempt: Attempt,
        kind: str,
        retry_delay_ns: int,
    ) -> None:
        now = self._clock._now
        attempt.status = kind
        breaker = self.breakers.get(attempt.host)
        if breaker is not None:
            breaker.record_failure(now)
        if self.obs.enabled:
            self._counter(
                f"resilience.attempt_fail.{kind}", "failed attempts by kind"
            ).inc()
        if attempt.hedge:
            return  # hedges are fire-once; the primary path owns retries
        previous = request.current_start
        request.current_start = degrade(previous)
        self.degradations.record(previous, request.current_start)
        self.engine.schedule_at(
            now + retry_delay_ns,
            lambda: self._launch(request, hedge=False),
            label=f"resilience-retry:{request.request_id}",
            transient=True,
        )

    def _maybe_fail(self, request: Request, reason: str) -> None:
        """Fail the request — unless an attempt is still executing, in
        which case that attempt decides the outcome."""
        if request.executing > 0 or request.state.terminal:
            return
        request.state = RequestState.FAILED
        request.resolution = reason
        self.active -= 1
        if self.journal is not None:
            self.journal.record_outcome(request, self._clock._now, fence=0)
        if self.obs.enabled:
            self._counter(
                f"resilience.fail.{reason}", "requests explicitly failed"
            ).inc()
            self.obs.tracer.record_instant(
                "request.fail", self.engine.now, category="resilience",
                function=request.function, reason=reason,
                attempts=len(request.attempts),
            )

    def _forget_inflight(self, host_index: int, attempt: Attempt) -> None:
        self._inflight[host_index] = [
            pair for pair in self._inflight[host_index] if pair[1] is not attempt
        ]

    # ------------------------------------------------------------------
    # Infrastructure events
    # ------------------------------------------------------------------
    def _handle_crash(self, host_index: int, now_ns: int) -> None:
        """Fail every in-flight attempt on a crashed host and re-dispatch."""
        if self.fenced:
            return  # the replacement incarnation owns the host's work now
        self.dispatch.on_crash(host_index, now_ns)
        victims = self._inflight[host_index]
        self._inflight[host_index] = []
        host = self.cluster.hosts[host_index]
        breaker = self.breakers.get(host_index)
        for request, attempt in victims:
            invocation = attempt.invocation
            assert invocation is not None
            invocation.cancelled = True
            if invocation.completion_event is not None:
                invocation.completion_event.cancel()
            if attempt.completion_event is not None:
                attempt.completion_event.cancel()  # type: ignore[attr-defined]
            if invocation.sandbox is not None:
                host.destroy_sandbox(invocation.sandbox)
            attempt.executing = False
            attempt.status = "crash"
            request.executing -= 1
            if breaker is not None:
                breaker.record_failure(now_ns)
            if self.obs.enabled:
                self._counter(
                    "resilience.attempt_fail.crash", "failed attempts by kind"
                ).inc()
            if request.state.terminal:
                continue
            if attempt.hedge:
                # The primary is still out (or its retry is scheduled).
                continue
            previous = request.current_start
            request.current_start = degrade(previous)
            self.degradations.record(previous, request.current_start)
            delay = self.config.retry.backoff_ns(
                max(1, request.primary_attempts), self._rng
            )
            self.engine.schedule_at(
                now_ns + delay,
                lambda r=request: self._launch(r, hedge=False),
                label=f"resilience-crash-retry:{request.request_id}",
                transient=True,
            )

    def _handle_recover(self, host_index: int, now_ns: int) -> None:
        """Re-warm a recovered host so warm affinity can return to it."""
        if self.fenced:
            return
        self.dispatch.on_recover(host_index, now_ns)
        if self.config.rewarm_per_host >= 1:
            host = self.cluster.hosts[host_index]
            for name in host.registry.names():
                spec = host.registry.get(name)
                host.provision_warm(
                    name,
                    count=self.config.rewarm_per_host,
                    use_horse=spec.is_ull,
                )
            if self.obs.enabled:
                self._counter(
                    "resilience.rewarm", "host recoveries re-warmed"
                ).inc()
        # The recovered host is routable again (modulo its breaker) —
        # wake anything waiting for capacity.
        self._drain_parked()

    # ------------------------------------------------------------------
    # Ledger queries & invariants
    # ------------------------------------------------------------------
    def by_state(self, state: RequestState) -> List[Request]:
        return [r for r in self.requests if r.state is state]

    def invariant_violations(self) -> List[str]:
        """Ledger soundness (legal any time during a run)."""
        violations: List[str] = []
        for request in self.requests:
            rid = f"request {request.request_id}"
            if request.state is RequestState.SHED and request.attempts:
                violations.append(f"{rid}: shed but has attempts")
            if request.state is RequestState.SHED and request.completed_ns is not None:
                violations.append(f"{rid}: both shed and completed")
            if (
                request.state is RequestState.COMPLETED
                and request.completed_ns is None
            ):
                violations.append(f"{rid}: completed without a completion time")
            if request.primary_attempts > self.config.retry.max_attempts:
                violations.append(
                    f"{rid}: {request.primary_attempts} primary attempts "
                    f"exceed budget {self.config.retry.max_attempts}"
                )
            if request.hedges_used > self.config.hedge.max_hedges:
                violations.append(
                    f"{rid}: {request.hedges_used} hedges exceed budget "
                    f"{self.config.hedge.max_hedges}"
                )
            if request.executing < 0:
                violations.append(
                    f"{rid}: negative executing count {request.executing}"
                )
        for breaker in self.breakers.values():
            violations.extend(breaker.invariant_violations())
        violations.extend(self.dispatch.invariant_violations())
        terminal_active = sum(
            1
            for r in self.requests
            if r.state in (RequestState.IN_FLIGHT,)
        )
        if self.active != terminal_active:
            violations.append(
                f"gateway: active={self.active} but "
                f"{terminal_active} requests are in flight"
            )
        return violations

    def unresolved_violations(self) -> List[str]:
        """End-of-run check: every request must be terminal ("no lost
        invocations")."""
        return [
            f"request {r.request_id} ({r.function}) never resolved: "
            f"{len(r.attempts)} attempts, executing={r.executing}"
            for r in self.requests
            if r.state is RequestState.IN_FLIGHT
        ]

    def __repr__(self) -> str:
        states = {
            state.value: len(self.by_state(state)) for state in RequestState
        }
        return f"ResilientGateway({states})"
