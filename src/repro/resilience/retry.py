"""Retry, backoff, and hedging policies (all times simulated ns).

Backoff is capped exponential with *full jitter* drawn from a seeded
stream (AWS Architecture Blog's recommendation for thundering-herd
avoidance): ``delay = U(base/2, base) * multiplier^attempt``, clamped to
``max_backoff_ns``.  Jitter comes from a :class:`random.Random` the
caller owns, so two same-seed runs back off identically — the
determinism contract of the whole simulator.

Hedged (tied) requests are the tail-taming trick of "The Tail at
Scale": for uLL-class functions, if the primary attempt has not
completed after ``delay_ns``, a secondary attempt is launched on a
*different* node and the first completion wins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.units import microseconds, milliseconds


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget and backoff shape for one request class."""

    #: total attempt budget per request, primary included (hedges are
    #: budgeted separately by :class:`HedgePolicy`)
    max_attempts: int = 4
    base_backoff_ns: int = microseconds(50)
    multiplier: float = 2.0
    max_backoff_ns: int = milliseconds(5)
    #: how long to wait before declaring an attempt hung (no completion)
    hang_timeout_ns: int = milliseconds(10)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_ns < 0:
            raise ValueError(f"negative base backoff {self.base_backoff_ns}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_ns < self.base_backoff_ns:
            raise ValueError("max_backoff_ns must be >= base_backoff_ns")
        if self.hang_timeout_ns <= 0:
            raise ValueError(f"hang_timeout_ns must be > 0, got {self.hang_timeout_ns}")
        # Ceiling memo (not a dataclass field: excluded from eq/repr).
        # The policy is frozen, so the ceiling for a given attempt
        # number never changes — but the no-host rewait loop asks for
        # it tens of thousands of times per chaos run, and float pow
        # per call adds up.
        object.__setattr__(self, "_ceilings", {})

    def backoff_ns(self, attempt: int, rng: random.Random) -> int:
        """Jittered delay before retry number *attempt* (1-based: the
        delay taken after the first failed attempt is ``attempt=1``)."""
        ceiling = self._ceilings.get(attempt)
        if ceiling is None:
            if attempt < 1:
                raise ValueError(f"attempt must be >= 1, got {attempt}")
            ceiling = min(
                float(self.max_backoff_ns),
                self.base_backoff_ns * self.multiplier ** (attempt - 1),
            )
            self._ceilings[attempt] = ceiling
        # Full jitter over the upper half keeps delays spread but never
        # degenerate-small (a zero backoff would retry the same instant
        # the failure happened).
        return max(1, round(ceiling * (0.5 + 0.5 * rng.random())))


@dataclass(frozen=True)
class HedgePolicy:
    """Tied-request policy for uLL-class functions."""

    enabled: bool = True
    #: primary-attempt age at which the hedge fires
    delay_ns: int = milliseconds(1)
    #: hedge attempts per request (on top of the retry budget)
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay_ns <= 0:
            raise ValueError(f"delay_ns must be > 0, got {self.delay_ns}")
        if self.max_hedges < 0:
            raise ValueError(f"max_hedges must be >= 0, got {self.max_hedges}")

    @classmethod
    def disabled(cls) -> "HedgePolicy":
        return cls(enabled=False)
