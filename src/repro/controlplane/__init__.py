"""Crash-recoverable sharded gateway control plane (DESIGN.md §14).

One :class:`~repro.resilience.ResilientGateway` fronting the whole
cluster is a single point of simulation death.  This package splits the
control plane into N *gateway shards* behind a consistent-hash
function→shard router, gives each shard a Dirigent-style minimal
durable state — an append-only intent log — and makes gateway crashes a
recoverable event: a replacement shard rebuilds its in-flight table
from the log, re-dispatches orphaned work under fresh fencing tokens,
and conservatively re-opens breaker/admission state.

Correctness is provable, not just plausible: the log-derived invariants
(no invocation lost, none duplicated, fencing monotonicity, no
cross-epoch completions) plus the differential oracle in
:mod:`repro.experiments.cluster_recovery` — same seed, zero gateway
failures — lock exactly-once terminal outcomes.
"""

from repro.controlplane.checks import (
    exactly_once_checker,
    fencing_checker,
    intent_log_violations,
    no_duplicate_routing_checker,
    terminal_outcomes,
)
from repro.controlplane.hashring import HashRing
from repro.controlplane.intentlog import (
    ADMIT,
    LAUNCH,
    OUTCOME,
    IntentLog,
    IntentRecord,
)
from repro.controlplane.plane import ControlPlane, ParkedSubmit
from repro.controlplane.shard import GatewayShard, RecoveryConfig

__all__ = [
    "ADMIT",
    "LAUNCH",
    "OUTCOME",
    "ControlPlane",
    "GatewayShard",
    "HashRing",
    "IntentLog",
    "IntentRecord",
    "ParkedSubmit",
    "RecoveryConfig",
    "exactly_once_checker",
    "fencing_checker",
    "intent_log_violations",
    "no_duplicate_routing_checker",
    "terminal_outcomes",
]
