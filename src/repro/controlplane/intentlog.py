"""The append-only intent log: one gateway shard's only durable state.

Dirigent's control-plane design (PAPERS.md) keeps orchestration state
minimal and rebuildable; this is that idea made concrete.  A shard
journals exactly three intent kinds, write-ahead:

* ``admit``   — a request was accepted into the shard's ledger (carries
  everything a replacement needs to reconstruct it: function, priority,
  the original submit instant and absolute deadline);
* ``launch``  — an attempt was dispatched, under a fencing token drawn
  from the shard's monotone fence counter and stamped with the shard's
  current epoch;
* ``outcome`` — the request reached a terminal state (completed / shed
  / failed), recorded with the fence of the completing attempt.

Everything else a gateway holds — breakers, admission occupancy,
backoff timers, the in-flight table — is soft state, reconstructed
conservatively after a crash.  Recovery is therefore a pure function of
the log: the open requests (admit without outcome) are exactly the
orphans to re-dispatch.

The log survives the gateway incarnation it was written by: the shard
owns it and hands it to each replacement gateway, and the exactly-once
oracle and the ``repro.check`` invariants read it as the authoritative
account of what happened across crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

ADMIT = "admit"
LAUNCH = "launch"
OUTCOME = "outcome"


@dataclass(frozen=True, slots=True)
class IntentRecord:
    """One journaled intent (plain data; crosses the worker pool)."""

    kind: str
    #: journaling instant (sim ns)
    t: int
    #: global request id at the frontend (the durable key)
    origin: int
    #: shard epoch current when the record was written
    epoch: int
    #: fencing token: the attempt's token for launch records and
    #: completed outcomes; 0 for admit and non-completed outcomes
    fence: int = 0
    function: str = ""
    priority: int = 0
    #: original frontend arrival (admit records)
    submit_ns: int = 0
    #: absolute retry deadline (admit records)
    deadline_ns: int = 0
    #: terminal state value (outcome records): completed / shed / failed
    state: str = ""
    #: submit -> completion, -1 when not completed (outcome records)
    latency_ns: int = -1
    #: dispatch target host (launch records)
    host: int = -1


class IntentLog:
    """Append-only record list with by-origin indexes.

    Appends are O(1); the indexes exist so recovery (open-request scan)
    and the invariant checkers never rescan the whole log per query.
    """

    __slots__ = ("shard_id", "records", "_admits", "_outcomes")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.records: List[IntentRecord] = []
        self._admits: Dict[int, IntentRecord] = {}
        self._outcomes: Dict[int, IntentRecord] = {}

    # -- appends ---------------------------------------------------------
    def admit(
        self,
        t: int,
        origin: int,
        epoch: int,
        function: str,
        priority: int,
        submit_ns: int,
        deadline_ns: int,
    ) -> None:
        record = IntentRecord(
            kind=ADMIT, t=t, origin=origin, epoch=epoch,
            function=function, priority=priority,
            submit_ns=submit_ns, deadline_ns=deadline_ns,
        )
        self.records.append(record)
        # Last-write wins in the index; the duplicate itself stays in
        # ``records`` where the no-duplicate checker will flag it.
        self._admits[origin] = record

    def launch(
        self, t: int, origin: int, epoch: int, fence: int, host: int
    ) -> None:
        self.records.append(
            IntentRecord(
                kind=LAUNCH, t=t, origin=origin, epoch=epoch,
                fence=fence, host=host,
            )
        )

    def outcome(
        self,
        t: int,
        origin: int,
        epoch: int,
        state: str,
        fence: int,
        latency_ns: int,
    ) -> None:
        record = IntentRecord(
            kind=OUTCOME, t=t, origin=origin, epoch=epoch,
            fence=fence, state=state, latency_ns=latency_ns,
        )
        self.records.append(record)
        self._outcomes[origin] = record

    # -- queries ---------------------------------------------------------
    def admitted(self, origin: int) -> Optional[IntentRecord]:
        return self._admits.get(origin)

    def outcome_of(self, origin: int) -> Optional[IntentRecord]:
        return self._outcomes.get(origin)

    def open_admits(self) -> Iterator[IntentRecord]:
        """Admitted-but-unresolved requests, in admission order — the
        replacement shard's re-dispatch worklist."""
        outcomes = self._outcomes
        for record in self.records:
            if record.kind == ADMIT and record.origin not in outcomes:
                yield record

    def outcomes(self) -> Iterator[IntentRecord]:
        for record in self.records:
            if record.kind == OUTCOME:
                yield record

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"IntentLog(shard={self.shard_id}, records={len(self.records)}, "
            f"admits={len(self._admits)}, outcomes={len(self._outcomes)})"
        )
