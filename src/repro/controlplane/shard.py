"""One gateway shard: a resilient gateway incarnation + its intent log.

The shard is the failure domain.  Its :class:`IntentLog` is the only
state that survives a crash; the live
:class:`~repro.resilience.ResilientGateway` incarnation (breakers,
admission occupancy, in-flight table, timers) is soft state.  On crash
the incarnation is *fenced* — every engine-scheduled callback it still
owns becomes a no-op, and late completions of its attempts are counted
and dropped.  On recovery the shard:

1. bumps its epoch and builds a fresh gateway incarnation (fresh
   admission watermarks — shed state resets conservatively);
2. re-opens every circuit breaker (the predecessor's breaker state is
   unknowable by design, so the replacement assumes every host suspect
   and lets half-open probes rediscover health);
3. replays the log: every admitted-but-unresolved request is
   reconstructed with its original submit instant and absolute
   deadline, and re-dispatched under new-epoch fencing tokens with a
   fresh retry budget (the predecessor's attempt history died with it).

Fencing tokens are drawn from a shard-level counter that is never
reset, so token order is a total order over every launch the shard ever
made, across all epochs — the monotonicity invariant the checkers
verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.controlplane.intentlog import IntentLog
from repro.faas.cluster import FaaSCluster
from repro.resilience.failures import FailureInjector
from repro.resilience.gateway import (
    Attempt,
    Request,
    ResilienceConfig,
    ResilientGateway,
)
from repro.sim.rng import RngRegistry


@dataclass(frozen=True, slots=True)
class RecoveryConfig:
    """How a replacement incarnation rebuilds soft state."""

    #: re-open every breaker on recovery (conservative: assume hosts
    #: suspect until a half-open probe succeeds)
    reopen_breakers: bool = True


class GatewayShard:
    """The control plane's unit of failure and recovery."""

    def __init__(
        self,
        shard_id: int,
        cluster: FaaSCluster,
        resilience: ResilienceConfig = ResilienceConfig(),
        seed: int = 0,
        recovery: RecoveryConfig = RecoveryConfig(),
    ) -> None:
        self.shard_id = shard_id
        self.cluster = cluster
        self.resilience = resilience
        self.seed = seed
        self.recovery = recovery
        self.log = IntentLog(shard_id)
        #: incremented on every recovery; stamped into log records
        self.epoch = 0
        #: never reset — fencing tokens are monotone across epochs
        self._next_fence = 1
        self.down = False
        self.crashes = 0
        self.recoveries = 0
        #: orphaned requests re-dispatched from the log, cumulative
        self.redispatched = 0
        #: stale pre-crash completions dropped by the fence, cumulative
        self.fenced_completions = 0
        #: the per-host failure injector to re-attach on rebuild
        self.host_injector: Optional[FailureInjector] = None
        self.gateway = self._build_gateway()

    # ------------------------------------------------------------------
    def _build_gateway(self) -> ResilientGateway:
        # Each incarnation gets its own derived seed: backoff draws must
        # not depend on how much entropy the dead incarnation consumed.
        seed = (
            RngRegistry(self.seed)
            .fork(f"gateway-epoch-{self.epoch}")
            .root_seed
        )
        gateway = ResilientGateway(self.cluster, self.resilience, seed=seed)
        gateway.journal = self
        return gateway

    def attach(self, injector: FailureInjector) -> None:
        """Subscribe the current (and every future) incarnation to the
        shard's host-level failure injector."""
        self.host_injector = injector
        self.gateway.attach(injector)

    # ------------------------------------------------------------------
    # Journal protocol (called by the gateway incarnation, write-ahead)
    # ------------------------------------------------------------------
    def record_admit(self, request: Request, now: int) -> None:
        self.log.admit(
            t=now,
            origin=request.origin,
            epoch=self.epoch,
            function=request.function,
            priority=request.priority,
            submit_ns=request.submit_ns,
            deadline_ns=request.deadline_ns,
        )

    def record_launch(self, request: Request, attempt: Attempt, now: int) -> int:
        fence = self._next_fence
        self._next_fence = fence + 1
        self.log.launch(
            t=now,
            origin=request.origin,
            epoch=self.epoch,
            fence=fence,
            host=attempt.host,
        )
        return fence

    def record_outcome(self, request: Request, now: int, fence: int) -> None:
        latency = request.latency_ns
        self.log.outcome(
            t=now,
            origin=request.origin,
            epoch=self.epoch,
            state=request.state.value,
            fence=fence,
            latency_ns=latency if latency is not None else -1,
        )

    def record_fenced(self, request: Request, attempt: Attempt, now: int) -> None:
        self.fenced_completions += 1

    # ------------------------------------------------------------------
    # Failure domain
    # ------------------------------------------------------------------
    def crash(self, now: int) -> bool:
        """Kill the live incarnation.  The data plane is untouched —
        hosts keep executing attempts already dispatched; their
        completions will find the incarnation fenced and be dropped."""
        if self.down:
            return False
        self.down = True
        self.crashes += 1
        self.gateway.fenced = True
        return True

    def recover(self, now: int) -> int:
        """Build the replacement incarnation from the log.

        Returns the number of orphaned requests re-dispatched.
        """
        if not self.down:
            return 0
        self.down = False
        self.recoveries += 1
        self.epoch += 1
        self.gateway = self._build_gateway()
        if self.host_injector is not None:
            self.gateway.attach(self.host_injector)
        if self.recovery.reopen_breakers:
            for breaker in self.gateway.breakers.values():
                breaker.force_open(now, reason="conservative post-recovery re-open")
        orphans = list(self.log.open_admits())
        for record in orphans:
            self.redispatched += 1
            self.gateway.restore(
                function_name=record.function,
                priority=record.priority,
                submit_ns=record.submit_ns,
                deadline_ns=record.deadline_ns,
                origin=record.origin,
            )
        return len(orphans)

    # ------------------------------------------------------------------
    def submit(
        self,
        function_name: str,
        priority: int = 0,
        deadline_ns: Optional[int] = None,
        origin: int = -1,
        submit_ns: Optional[int] = None,
    ) -> Request:
        if self.down:
            raise RuntimeError(
                f"shard {self.shard_id} is down; the router must not "
                f"deliver to a crashed gateway"
            )
        return self.gateway.submit(
            function_name,
            priority=priority,
            deadline_ns=deadline_ns,
            origin=origin,
            submit_ns=submit_ns,
        )

    def __repr__(self) -> str:
        return (
            f"GatewayShard({self.shard_id}, epoch={self.epoch}, "
            f"{'down' if self.down else 'up'}, log={len(self.log)})"
        )
