"""Consistent-hash function→shard routing.

The frontend must route every request for one function to one gateway
shard (so exactly one intent log owns each function's requests), keep
that mapping stable as shards crash and recover, and move only the
crashed shard's keys while it is down.  A classic consistent-hash ring
with virtual nodes does all three.

Hashes come from sha256, not Python's salted ``hash()``: the ring must
be identical across worker processes (PR 7's byte-identity contract
covers the routing decisions) and across interpreter restarts (the CI
recovery job diffs two subprocesses).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Optional, Tuple


def _h(key: str) -> int:
    """Stable 64-bit hash (first 8 bytes of sha256)."""
    return int.from_bytes(
        hashlib.sha256(key.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A fixed population of shard ids 0..n-1 on a consistent-hash ring.

    The ring is built once — shards never join or leave the population;
    they only go down and come back.  Routing walks clockwise from the
    key's point to the first *alive* shard, so a down shard's keys all
    land on ring-successor shards and snap back the instant it recovers.
    """

    __slots__ = ("nodes", "vnodes", "_points", "_owners")

    def __init__(self, nodes: int, vnodes: int = 64, salt: str = "") -> None:
        if nodes < 1:
            raise ValueError(f"ring needs >= 1 node, got {nodes}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.nodes = nodes
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for node in range(nodes):
            for replica in range(vnodes):
                points.append((_h(f"{salt}:{node}:{replica}"), node))
        points.sort()
        self._points = [point for point, _node in points]
        self._owners = [node for _point, node in points]

    def owner(self, key: str, alive: Iterable[int]) -> Optional[int]:
        """First alive shard clockwise from *key* — None when all down."""
        up = frozenset(alive)
        if not up:
            return None
        owners = self._owners
        count = len(owners)
        start = bisect.bisect_right(self._points, _h(key))
        for step in range(count):
            node = owners[(start + step) % count]
            if node in up:
                return node
        return None  # pragma: no cover — up is non-empty and a subset

    def preferred(self, key: str) -> int:
        """The all-alive owner (where the key lives in steady state)."""
        owner = self.owner(key, range(self.nodes))
        assert owner is not None
        return owner

    def __repr__(self) -> str:
        return f"HashRing(nodes={self.nodes}, vnodes={self.vnodes})"
