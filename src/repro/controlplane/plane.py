"""The sharded control plane: consistent-hash routing + frontend parking.

:class:`ControlPlane` is the single entry point the frontend talks to.
Every submit is routed by function name over a :class:`HashRing` to the
first *alive* gateway shard clockwise of the key, so one shard's intent
log owns each function in steady state and a crashed shard's keys spill
to ring successors only while it is down.

When **every** shard is down there is nowhere safe to admit — no log
could journal the request — so the plane parks the submit at the
frontend (mirroring the gateway's own capacity parking lot: pure list,
no polling, no events) and drains the queue the instant the first shard
recovers.  Parked requests keep their original arrival instant, so
frontend queueing shows up in latency rather than being hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.controlplane.hashring import HashRing
from repro.controlplane.shard import GatewayShard
from repro.resilience.gateway import Request
from repro.sim.engine import Engine


@dataclass(frozen=True, slots=True)
class ParkedSubmit:
    """A submit that arrived while every gateway shard was down."""

    function: str
    priority: int
    #: frontend global request id
    origin: int
    #: retry window relative to ``submit_ns`` (None = gateway default)
    deadline_ns: Optional[int]
    #: original arrival instant (latency is measured from here)
    submit_ns: int


class ControlPlane:
    """Route submits over N gateway shards; park when none is alive."""

    def __init__(
        self,
        engine: Engine,
        shards: Sequence[GatewayShard],
        vnodes: int = 64,
    ) -> None:
        if not shards:
            raise ValueError("control plane needs >= 1 gateway shard")
        self.engine = engine
        self.shards = list(shards)
        self.ring = HashRing(len(self.shards), vnodes=vnodes)
        #: submits waiting for any shard to come back (FIFO)
        self.parked: List[ParkedSubmit] = []
        self.parked_total = 0
        self.parked_peak = 0
        self.drained_total = 0

    # ------------------------------------------------------------------
    def alive(self) -> List[int]:
        return [i for i, shard in enumerate(self.shards) if not shard.down]

    def submit(
        self,
        function_name: str,
        priority: int = 0,
        origin: int = -1,
        deadline_ns: Optional[int] = None,
        submit_ns: Optional[int] = None,
    ) -> Optional[Request]:
        """Route one request; returns None when it was parked."""
        owner = self.ring.owner(function_name, self.alive())
        if owner is None:
            arrived = (
                self.engine.now if submit_ns is None else submit_ns
            )
            self.parked.append(
                ParkedSubmit(
                    function=function_name,
                    priority=priority,
                    origin=origin,
                    deadline_ns=deadline_ns,
                    submit_ns=arrived,
                )
            )
            self.parked_total += 1
            if len(self.parked) > self.parked_peak:
                self.parked_peak = len(self.parked)
            return None
        return self.shards[owner].submit(
            function_name,
            priority=priority,
            deadline_ns=deadline_ns,
            origin=origin,
            submit_ns=submit_ns,
        )

    # ------------------------------------------------------------------
    # Failure domain plumbing (driven by the gateway failure injector)
    # ------------------------------------------------------------------
    def crash_shard(self, index: int, now: int) -> bool:
        return self.shards[index].crash(now)

    def recover_shard(self, index: int, now: int) -> int:
        """Recover one shard, then drain the frontend parking lot.

        Returns the number of orphaned requests the shard re-dispatched
        from its log (frontend drains are routed fresh, not counted).
        """
        redispatched = self.shards[index].recover(now)
        self._drain_parked()
        return redispatched

    def _drain_parked(self) -> None:
        """Re-route everything parked, in arrival order.

        Routing is synchronous, so a drain during a window where all
        shards went down again simply re-parks — no event machinery,
        no loss.
        """
        if not self.parked:
            return
        queue = self.parked
        self.parked = []
        for parked in queue:
            self.drained_total += 1
            self.submit(
                parked.function,
                priority=parked.priority,
                origin=parked.origin,
                deadline_ns=parked.deadline_ns,
                submit_ns=parked.submit_ns,
            )

    def __repr__(self) -> str:
        up = len(self.alive())
        return (
            f"ControlPlane(shards={len(self.shards)}, up={up}, "
            f"parked={len(self.parked)})"
        )
