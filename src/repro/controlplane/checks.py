"""Control-plane invariants: exactly-once, fencing, routing uniqueness.

The intent log is the authoritative account of what a shard did across
crashes, so the control plane's correctness claims are all statements
about logs:

* **fencing monotonicity** — launch fences are strictly increasing in
  log order (the fence counter survives recovery), and record epochs
  never regress;
* **no cross-epoch completion** — a ``completed`` outcome's fence must
  belong to a launch journaled in the *same* epoch as the outcome: a
  slow pre-crash attempt can never complete a request on behalf of the
  replacement incarnation;
* **no invocation lost** (final) — every admit has an outcome once the
  engine has drained;
* **none duplicated** — at most one admit and one outcome per origin
  within a log, and no origin appears in two shards' logs (the ring
  routes each function to exactly one alive shard at a time, and a
  recovered shard resumes its own log rather than forking a new one).

:func:`intent_log_violations` is the single-log core; the ``*_checker``
factories wrap it in the ``repro.check`` ``Checker`` shape
(``f(now_ns) -> list[str]``) over a whole plane, and
:func:`terminal_outcomes` extracts the origin→state map the
exactly-once differential oracle compares across runs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.check.invariants import Checker
from repro.controlplane.intentlog import ADMIT, LAUNCH, OUTCOME, IntentLog
from repro.controlplane.plane import ControlPlane


def _log_of(shard_or_log) -> IntentLog:
    log = getattr(shard_or_log, "log", shard_or_log)
    assert isinstance(log, IntentLog)
    return log


def intent_log_violations(shard_or_log, final: bool = False) -> List[str]:
    """Audit one shard's intent log.

    ``final=True`` additionally requires completeness (every admit has
    an outcome) — only meaningful once the engine has drained.
    """
    log = _log_of(shard_or_log)
    sid = f"shard {log.shard_id}"
    violations: List[str] = []
    last_fence = 0
    last_epoch = 0
    admit_order: List[int] = []
    admits: Dict[int, int] = {}
    outcome_counts: Dict[int, int] = {}
    launches: Dict[int, List] = {}
    for record in log.records:
        if record.epoch < last_epoch:
            violations.append(
                f"{sid}: epoch regressed {last_epoch} -> {record.epoch} "
                f"(origin {record.origin}, kind {record.kind})"
            )
        elif record.epoch > last_epoch:
            last_epoch = record.epoch
        if record.kind == LAUNCH:
            if record.fence <= last_fence:
                violations.append(
                    f"{sid}: launch fence {record.fence} not monotone "
                    f"(previous {last_fence}, origin {record.origin})"
                )
            else:
                last_fence = record.fence
            launches.setdefault(record.origin, []).append(record)
        elif record.kind == ADMIT:
            seen = admits.get(record.origin, 0)
            if seen:
                violations.append(
                    f"{sid}: origin {record.origin} admitted twice"
                )
            else:
                admit_order.append(record.origin)
            admits[record.origin] = seen + 1
        elif record.kind == OUTCOME:
            seen = outcome_counts.get(record.origin, 0)
            if seen:
                violations.append(
                    f"{sid}: origin {record.origin} resolved twice "
                    f"(duplicate completion)"
                )
            outcome_counts[record.origin] = seen + 1
            if record.origin not in admits:
                violations.append(
                    f"{sid}: outcome for origin {record.origin} "
                    f"without an admit"
                )
            if record.state == "completed":
                matched = any(
                    launch.fence == record.fence
                    and launch.epoch == record.epoch
                    for launch in launches.get(record.origin, ())
                )
                if record.fence <= 0 or not matched:
                    violations.append(
                        f"{sid}: origin {record.origin} completed under "
                        f"fence {record.fence} with no matching launch "
                        f"in epoch {record.epoch} (cross-epoch completion)"
                    )
    if final:
        for origin in admit_order:
            if origin not in outcome_counts:
                violations.append(
                    f"{sid}: origin {origin} admitted but never "
                    f"resolved (lost invocation)"
                )
    return violations


def no_duplicate_routing_violations(plane: ControlPlane) -> List[str]:
    """No origin may be admitted by two different shards' logs."""
    violations: List[str] = []
    owner_of: Dict[int, int] = {}
    for shard in plane.shards:
        for record in shard.log.records:
            if record.kind != ADMIT or record.origin < 0:
                continue
            previous = owner_of.setdefault(record.origin, shard.shard_id)
            if previous != shard.shard_id:
                violations.append(
                    f"origin {record.origin} admitted by both shard "
                    f"{previous} and shard {shard.shard_id}"
                )
    return violations


def terminal_outcomes(plane: ControlPlane) -> Dict[int, str]:
    """origin → terminal state, unioned over every shard's log.

    This is the quantity the exactly-once differential oracle compares:
    a chaos run and its zero-gateway-failure twin must produce the same
    map.  Unrouted submits (origin < 0) are excluded.
    """
    outcomes: Dict[int, str] = {}
    for shard in plane.shards:
        for record in shard.log.outcomes():
            if record.origin >= 0:
                outcomes[record.origin] = record.state
    return outcomes


# ----------------------------------------------------------------------
# repro.check checker factories
# ----------------------------------------------------------------------
def fencing_checker(plane: ControlPlane) -> Checker:
    """Mid-run legal: fence/epoch monotonicity and no duplicates."""

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        for shard in plane.shards:
            problems.extend(intent_log_violations(shard, final=False))
        return problems

    return check


def no_duplicate_routing_checker(plane: ControlPlane) -> Checker:
    """Mid-run legal: each origin lives in exactly one shard's log."""

    def check(_now_ns: int) -> List[str]:
        return no_duplicate_routing_violations(plane)

    return check


def exactly_once_checker(plane: ControlPlane) -> Checker:
    """End-of-run: no invocation lost, none duplicated, fencing holds.

    Only meaningful on a drained engine (an in-flight request is not a
    lost one); run it the way ``all_resolved_checker`` is run in
    :mod:`repro.resilience.checks`.
    """

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        for shard in plane.shards:
            problems.extend(intent_log_violations(shard, final=True))
        problems.extend(no_duplicate_routing_violations(plane))
        if plane.parked:
            problems.extend(
                f"frontend: origin {p.origin} still parked at end of run"
                for p in plane.parked
            )
        return problems

    return check
