"""CPU and memory usage sampling for the overhead study (paper §5.2).

The paper records host CPU and memory usage every 500 ms while pausing
and resuming uLL sandboxes.  :class:`UsageSampler` reproduces that: it
installs a periodic event on the simulation engine that snapshots
whatever gauges it is given.

Gauges are plain callables returning a float, so the hypervisor can
expose "busy core fraction" and "bytes allocated" without this module
knowing anything about hypervisors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine
from repro.sim.event import Event, EventPriority

Gauge = Callable[[], float]


@dataclass(frozen=True)
class UsageSample:
    """One sampling instant: time plus every gauge's reading."""

    time_ns: int
    readings: Dict[str, float]


class CpuWorkTracker:
    """Accumulates CPU work (core-nanoseconds) by labeled phase.

    The §5.2 overhead study charges every pause, resume, merge-thread
    and precompute-refresh operation here; utilization over a sampling
    window is then ``work_in_window / (cores * window)``.  The tracker
    stores cumulative totals — samplers snapshot them and the analysis
    diffs consecutive snapshots.
    """

    def __init__(self) -> None:
        self._cumulative: Dict[str, float] = {}

    def charge(self, phase: str, core_ns: float) -> None:
        if core_ns < 0:
            raise ValueError(f"negative work {core_ns} for phase {phase!r}")
        self._cumulative[phase] = self._cumulative.get(phase, 0.0) + core_ns

    def total(self, phase: str) -> float:
        return self._cumulative.get(phase, 0.0)

    def grand_total(self) -> float:
        return sum(self._cumulative.values())

    def phases(self) -> Dict[str, float]:
        return dict(self._cumulative)

    def gauge(self, phase: str) -> Gauge:
        """A sampler gauge reading this phase's cumulative counter."""
        return lambda: self.total(phase)


class UsageSampler:
    """Samples a set of named gauges at a fixed simulated period."""

    def __init__(self, engine: Engine, period_ns: int) -> None:
        if period_ns <= 0:
            raise ValueError(f"sampling period must be positive, got {period_ns}")
        self._engine = engine
        self.period_ns = period_ns
        self._gauges: Dict[str, Gauge] = {}
        self.samples: List[UsageSample] = []
        self._next_event: Optional[Event] = None
        self._running = False

    def add_gauge(self, name: str, gauge: Gauge) -> None:
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        self._gauges[name] = gauge

    def start(self) -> None:
        """Begin sampling; the first sample is taken one period from now."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None

    def _schedule_next(self) -> None:
        self._next_event = self._engine.schedule_after(
            self.period_ns,
            self._take_sample,
            priority=EventPriority.BACKGROUND,
            label="usage-sample",
        )

    def _take_sample(self) -> None:
        if not self._running:
            return
        readings = {name: gauge() for name, gauge in self._gauges.items()}
        self.samples.append(UsageSample(time_ns=self._engine.now, readings=readings))
        self._schedule_next()

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def series(self, name: str) -> List[float]:
        """All recorded readings for gauge *name*, in time order."""
        return [s.readings[name] for s in self.samples if name in s.readings]

    def peak(self, name: str) -> float:
        values = self.series(name)
        if not values:
            raise KeyError(f"no samples for gauge {name!r}")
        return max(values)

    def mean(self, name: str) -> float:
        values = self.series(name)
        if not values:
            raise KeyError(f"no samples for gauge {name!r}")
        return sum(values) / len(values)
