"""Measurement recorders.

Two recorders cover the evaluation's needs:

* :class:`SeriesRecorder` — named scalar series (e.g. per-invocation
  latency), summarized with :class:`repro.metrics.stats.Summary`.
* :class:`BreakdownRecorder` — per-phase durations for a multi-step
  operation (the resume path's steps 1-6), keeping both the absolute
  nanoseconds and the share of the total, which is exactly what the
  paper's Figure 2 plots.

Both recorders keep raw samples for exact statistics.  A
:class:`SeriesRecorder` can additionally *mirror* into an
:class:`repro.obs.metrics.MetricRegistry` so experiment series show up
alongside the hot-path histograms in one unified snapshot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.metrics.stats import Summary
from repro.obs.metrics import MetricRegistry


class SeriesRecorder:
    """Accumulates named scalar series and summarizes them.

    When *registry* is given, every recorded value is also fed to a
    same-named histogram in it, unifying experiment-level series with
    the observability layer's metric registry.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self._series: Dict[str, List[float]] = defaultdict(list)
        self._registry = registry

    def record(self, name: str, value: float) -> None:
        self._series[name].append(float(value))
        if self._registry is not None:
            self._registry.histogram(name, help="mirrored series").observe(value)

    def extend(self, name: str, values: Iterable[float]) -> None:
        for value in values:
            self.record(name, value)

    def values(self, name: str) -> List[float]:
        """The raw values for a series (empty list if never recorded)."""
        return list(self._series.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._series)

    def summary(self, name: str) -> Summary:
        values = self._series.get(name)
        if not values:
            raise KeyError(f"no values recorded for series {name!r}")
        return Summary.of(values)

    def summaries(self) -> Dict[str, Summary]:
        return {name: Summary.of(vals) for name, vals in self._series.items() if vals}

    def clear(self) -> None:
        self._series.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self._series.values())


@dataclass
class Breakdown:
    """One multi-step operation's per-phase durations (ns)."""

    phases: Dict[str, int] = field(default_factory=dict)

    def add(self, phase: str, duration_ns: int) -> None:
        if duration_ns < 0:
            raise ValueError(f"negative duration for phase {phase!r}: {duration_ns}")
        self.phases[phase] = self.phases.get(phase, 0) + duration_ns

    @property
    def total_ns(self) -> int:
        return sum(self.phases.values())

    def share(self, phase: str) -> float:
        """Fraction of the total spent in *phase* (0.0 if total is 0)."""
        total = self.total_ns
        if total == 0:
            return 0.0
        return self.phases.get(phase, 0) / total

    def combined_share(self, phases: Iterable[str]) -> float:
        """Fraction of the total spent in the union of *phases*."""
        total = self.total_ns
        if total == 0:
            return 0.0
        return sum(self.phases.get(p, 0) for p in phases) / total

    def as_dict(self) -> Mapping[str, int]:
        return dict(self.phases)


class BreakdownRecorder:
    """Accumulates many Breakdowns and averages them per phase."""

    def __init__(self) -> None:
        self._breakdowns: List[Breakdown] = []

    def record(self, breakdown: Breakdown) -> None:
        self._breakdowns.append(breakdown)

    def __len__(self) -> int:
        return len(self._breakdowns)

    def mean_phase_ns(self) -> Dict[str, float]:
        """Mean duration per phase across all recorded breakdowns."""
        if not self._breakdowns:
            return {}
        sums: Dict[str, int] = defaultdict(int)
        for breakdown in self._breakdowns:
            for phase, duration in breakdown.phases.items():
                sums[phase] += duration
        count = len(self._breakdowns)
        return {phase: total / count for phase, total in sums.items()}

    def mean_total_ns(self) -> float:
        if not self._breakdowns:
            return 0.0
        return sum(b.total_ns for b in self._breakdowns) / len(self._breakdowns)

    def mean_shares(self) -> Dict[str, float]:
        """Per-phase share of the mean total (sums to 1.0)."""
        means = self.mean_phase_ns()
        total = sum(means.values())
        if total == 0:
            return {phase: 0.0 for phase in means}
        return {phase: value / total for phase, value in means.items()}
