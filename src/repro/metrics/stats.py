"""Summary statistics used throughout the evaluation.

The paper reports means, 95th/99th percentiles, and 95 % confidence
intervals (it repeats each experiment 10x "which is enough for us to
achieve 95% confidence interval <= 3%").  This module provides those
estimators without depending on numpy for the hot paths (the experiment
drivers call them on small vectors millions of times).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (n-1 denominator); 0.0 for n < 2."""
    n = len(values)
    if n == 0:
        raise ValueError("variance() of empty sequence")
    if n == 1:
        return 0.0
    mu = mean(values)
    return sum((v - mu) ** 2 for v in values) / (n - 1)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation."""
    return math.sqrt(variance(values))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolation percentile (numpy's default method).

    *p* is in [0, 100].  The input need not be sorted.
    """
    if not values:
        raise ValueError("percentile() of empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile p={p} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    # low + frac * (high - low) cannot overshoot the endpoints, unlike
    # the convex-combination form, which can exceed max() by one ulp.
    return float(ordered[low] + frac * (ordered[high] - ordered[low]))


# Two-sided Student-t critical values at 95 % confidence, indexed by
# degrees of freedom.  df=9 (10 repetitions) is the paper's setting.
_T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    25: 2.060, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for *df* degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive, got {df}")
    if df in _T_TABLE_95:
        return _T_TABLE_95[df]
    keys = sorted(_T_TABLE_95)
    if df > keys[-1]:
        return 1.96
    below = max(k for k in keys if k < df)
    above = min(k for k in keys if k > df)
    frac = (df - below) / (above - below)
    return _T_TABLE_95[below] + frac * (_T_TABLE_95[above] - _T_TABLE_95[below])


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean with its symmetric 95 % confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """CI half-width as a fraction of the mean (paper targets <=3 %)."""
        if self.mean == 0:
            return 0.0
        return abs(self.half_width / self.mean)

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {self.half_width:.2g} (n={self.n})"


def confidence_interval_95(values: Sequence[float]) -> ConfidenceInterval:
    """Student-t 95 % CI for the mean of *values*."""
    n = len(values)
    if n == 0:
        raise ValueError("confidence interval of empty sequence")
    mu = mean(values)
    if n == 1:
        return ConfidenceInterval(mean=mu, half_width=0.0, n=1)
    sem = stddev(values) / math.sqrt(n)
    return ConfidenceInterval(mean=mu, half_width=t_critical_95(n - 1) * sem, n=n)


@dataclass(frozen=True)
class Summary:
    """Full summary of one measured series."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float
    ci95: ConfidenceInterval

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        data = list(values)
        if not data:
            raise ValueError("Summary.of() on empty data")
        return cls(
            n=len(data),
            mean=mean(data),
            std=stddev(data),
            minimum=min(data),
            maximum=max(data),
            p50=percentile(data, 50),
            p95=percentile(data, 95),
            p99=percentile(data, 99),
            ci95=confidence_interval_95(data),
        )
