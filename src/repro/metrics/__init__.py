"""Measurement and statistics toolkit for the evaluation."""

from repro.metrics.recorder import Breakdown, BreakdownRecorder, SeriesRecorder
from repro.metrics.stats import (
    ConfidenceInterval,
    Summary,
    confidence_interval_95,
    mean,
    percentile,
    stddev,
    t_critical_95,
    variance,
)
from repro.metrics.usage import CpuWorkTracker, UsageSample, UsageSampler

__all__ = [
    "Breakdown",
    "BreakdownRecorder",
    "SeriesRecorder",
    "ConfidenceInterval",
    "Summary",
    "confidence_interval_95",
    "mean",
    "percentile",
    "stddev",
    "t_critical_95",
    "variance",
    "CpuWorkTracker",
    "UsageSample",
    "UsageSampler",
]
