"""repro: a full reproduction of "HORSE: Ultra-low latency workloads
on FaaS platforms" (Mvondo, Taiani, Bromberg — Middleware '24).

Layout (see DESIGN.md for the complete inventory):

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.hypervisor` — Firecracker/KVM-like and Xen-like
  virtualization substrate (run queues, schedulers, PELT, DVFS,
  pause/resume, snapshots);
* :mod:`repro.core` — HORSE itself: P2SM, load-update coalescing,
  reserved uLL run queues, the hot-resume fast path;
* :mod:`repro.faas` — the FaaS platform (functions, pools, start
  strategies, gateway);
* :mod:`repro.workloads` — the paper's function bodies;
* :mod:`repro.traces` — Azure-like arrival synthesis and loading;
* :mod:`repro.metrics` — statistics and usage sampling;
* :mod:`repro.experiments` — one driver per paper table/figure;
* :mod:`repro.analysis` — renders the paper's tables and series.

Quick start::

    from repro.faas import FaaSPlatform, FunctionSpec, StartType
    from repro.workloads import FirewallWorkload

    faas = FaaSPlatform.build("firecracker", seed=1)
    faas.register(FunctionSpec("fw", FirewallWorkload()))
    faas.provision_warm("fw", count=1)
    inv = faas.trigger("fw", StartType.HORSE, run_logic=True)
    faas.engine.run()
    print(inv.initialization_ns, "ns to a ready sandbox")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
