"""Arrival processes: when invocations hit the platform.

Experiments drive the FaaS gateway from an arrival process.  Three are
provided: deterministic (fixed period, e.g. "10 uLL triggers per
second"), Poisson (memoryless background traffic), and trace-driven
(replay of explicit timestamps, e.g. a chunk of the Azure trace).
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, List, Sequence


class ArrivalProcess(abc.ABC):
    """Produces a monotone stream of arrival timestamps (ns)."""

    @abc.abstractmethod
    def arrivals(self, start_ns: int, end_ns: int) -> Iterator[int]:
        """Yield arrival instants in [start_ns, end_ns), ascending."""

    def arrival_list(self, start_ns: int, end_ns: int) -> List[int]:
        return list(self.arrivals(start_ns, end_ns))


class DeterministicArrivals(ArrivalProcess):
    """Fixed inter-arrival period, optionally with a phase offset."""

    def __init__(self, period_ns: int, offset_ns: int = 0) -> None:
        if period_ns <= 0:
            raise ValueError(f"period must be positive, got {period_ns}")
        if offset_ns < 0:
            raise ValueError(f"offset must be >= 0, got {offset_ns}")
        self.period_ns = period_ns
        self.offset_ns = offset_ns

    def arrivals(self, start_ns: int, end_ns: int) -> Iterator[int]:
        if end_ns <= start_ns:
            return
        first = start_ns + self.offset_ns
        when = first
        while when < end_ns:
            yield when
            when += self.period_ns


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at *rate_per_second*."""

    def __init__(self, rate_per_second: float, rng: random.Random) -> None:
        if rate_per_second < 0:
            raise ValueError(f"rate must be >= 0, got {rate_per_second}")
        self.rate_per_second = rate_per_second
        self._rng = rng

    def arrivals(self, start_ns: int, end_ns: int) -> Iterator[int]:
        if self.rate_per_second == 0:
            # A zero-rate function never fires; an empty stream (rather
            # than an error) lets trace synthesis keep dead functions.
            return
        mean_gap_ns = 1e9 / self.rate_per_second
        when = float(start_ns)
        while True:
            when += self._rng.expovariate(1.0) * mean_gap_ns
            if when >= end_ns:
                return
            yield round(when)


class TraceDrivenArrivals(ArrivalProcess):
    """Replay explicit timestamps (e.g. from the Azure trace loader)."""

    def __init__(self, timestamps_ns: Sequence[int]) -> None:
        ordered = sorted(int(t) for t in timestamps_ns)
        if any(t < 0 for t in ordered):
            raise ValueError("trace contains negative timestamps")
        self._timestamps = ordered

    def __len__(self) -> int:
        return len(self._timestamps)

    def arrivals(self, start_ns: int, end_ns: int) -> Iterator[int]:
        for when in self._timestamps:
            if when < start_ns:
                continue
            if when >= end_ns:
                return
            yield when
