"""Azure-like serverless trace synthesis.

The paper replays "arrival times derived from a 30 s chunk of the Azure
Cloud serverless real-world traces" [12] (the Azure Public Dataset of
Shahrad et al., "Serverless in the Wild", ATC'20).  The dataset itself
is not redistributable inside this repository, so we synthesize traces
with its published structure:

* per-function average rates are **heavy-tailed** — a few functions
  dominate invocations while most are rare (we draw per-function rates
  from a Pareto distribution, shape ~1.1, as the paper's Figure 4 of
  ATC'20 suggests);
* within a function, arrivals are **bursty**: a Markov-modulated
  Poisson process alternates idle and active periods, matching the
  dataset's high inter-arrival CV;
* a minute-level **diurnal modulation** is optional (irrelevant for a
  30 s chunk but kept for longer studies).

:func:`synthesize_trace` returns a :class:`SyntheticTrace` whose
``timestamps_for`` feeds :class:`~repro.traces.arrival.TraceDrivenArrivals`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.sim.units import SECOND
from repro.traces.arrival import TraceDrivenArrivals


@dataclass(frozen=True)
class AzureTraceConfig:
    """Shape parameters for the synthesizer."""

    functions: int = 20
    duration_s: float = 30.0
    mean_rate_per_function: float = 1.0   # invocations / s, before tail
    pareto_shape: float = 1.1             # heavy tail over function rates
    burst_on_fraction: float = 0.35       # fraction of time a function is active
    burst_mean_length_s: float = 2.0      # mean active-period length
    diurnal: bool = False

    def __post_init__(self) -> None:
        if self.functions <= 0:
            raise ValueError(f"functions must be positive, got {self.functions}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if not 0 < self.burst_on_fraction <= 1:
            raise ValueError(
                f"burst_on_fraction must be in (0, 1], got {self.burst_on_fraction}"
            )
        if self.burst_mean_length_s <= 0:
            raise ValueError(
                f"burst_mean_length_s must be positive, "
                f"got {self.burst_mean_length_s}"
            )


@dataclass
class SyntheticTrace:
    """A synthesized multi-function invocation trace."""

    config: AzureTraceConfig
    #: function name -> sorted arrival timestamps (ns)
    invocations: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def total_invocations(self) -> int:
        return sum(len(ts) for ts in self.invocations.values())

    def function_names(self) -> List[str]:
        return sorted(self.invocations)

    def timestamps_for(self, function: str) -> TraceDrivenArrivals:
        try:
            return TraceDrivenArrivals(self.invocations[function])
        except KeyError:
            raise KeyError(f"no function {function!r} in trace") from None

    def merged_timestamps(self) -> List[int]:
        """All arrivals across functions, sorted — the platform's view."""
        merged: List[int] = []
        for timestamps in self.invocations.values():
            merged.extend(timestamps)
        return sorted(merged)

    def rate_per_second(self, function: str) -> float:
        return len(self.invocations[function]) / self.config.duration_s


def _draw_function_rates(config: AzureTraceConfig, rng: random.Random) -> List[float]:
    """Heavy-tailed per-function rates, normalized to the configured mean."""
    raw = [rng.paretovariate(config.pareto_shape) for _ in range(config.functions)]
    total = sum(raw)
    target_total = config.mean_rate_per_function * config.functions
    return [r / total * target_total for r in raw]


def burst_arrival_stream(
    rate: float, duration_s: float, config: AzureTraceConfig, rng
) -> Iterator[int]:
    """Markov-modulated Poisson arrivals for one function, streamed.

    Yields integer-ns timestamps in nondecreasing order and never
    materializes the whole trace — the streaming replayer
    (:mod:`repro.traces.replay`) holds thousands of these concurrently.
    *rng* needs only ``random()`` and ``expovariate()``, so both
    :class:`random.Random` and the replayer's counter-based streams fit.

    Edge cases (each exercised by the replay test battery):

    * ``rate == 0`` — a dead function: the stream is empty and consumes
      no draws, so neighbouring functions' streams are unperturbed;
    * ``burst_on_fraction == 1`` — no idle periods exist; the process
      degenerates to a plain Poisson stream at *rate* (the legacy list
      builder divided by a zero mean-off period here);
    * rounding to integer ns can emit duplicate timestamps — callers
      must tolerate equal consecutive values (the merge tie-break in
      the replayer pins their order).
    """
    if rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {rate}")
    if rate == 0:
        return
    # During active periods the instantaneous rate is boosted so the
    # long-run average matches *rate* despite idle gaps.
    active_rate = rate / config.burst_on_fraction
    mean_on = config.burst_mean_length_s
    mean_off = mean_on * (1.0 - config.burst_on_fraction) / config.burst_on_fraction
    if mean_off == 0.0:
        # Always-on: one uninterrupted Poisson process over the window.
        t = 0.0
        while True:
            t += rng.expovariate(active_rate)
            if t >= duration_s:
                return
            yield round(t * SECOND)
    now = 0.0
    active = rng.random() < config.burst_on_fraction
    while now < duration_s:
        period = rng.expovariate(1.0 / (mean_on if active else mean_off))
        period_end = min(duration_s, now + period)
        if active:
            t = now
            while True:
                t += rng.expovariate(active_rate)
                if t >= period_end:
                    break
                yield round(t * SECOND)
        now = period_end
        active = not active


def _burst_arrivals(
    rate: float, duration_s: float, config: AzureTraceConfig, rng: random.Random
) -> List[int]:
    """Materialized burst arrivals (the synthesizer's per-function list)."""
    return sorted(burst_arrival_stream(rate, duration_s, config, rng))


def _diurnal_factor(t_s: float) -> float:
    """Minute-scale sinusoidal modulation in [0.5, 1.5]."""
    return 1.0 + 0.5 * math.sin(2.0 * math.pi * t_s / 60.0)


def synthesize_trace(
    config: AzureTraceConfig, rng: random.Random
) -> SyntheticTrace:
    """Generate one trace with the Azure-dataset structure."""
    rates = _draw_function_rates(config, rng)
    trace = SyntheticTrace(config=config)
    for index, rate in enumerate(rates):
        name = f"func-{index:03d}"
        arrivals = _burst_arrivals(rate, config.duration_s, config, rng)
        if config.diurnal:
            arrivals = [
                t
                for t in arrivals
                if rng.random() < _diurnal_factor(t / SECOND) / 1.5
            ]
        trace.invocations[name] = arrivals
    return trace
