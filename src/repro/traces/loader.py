"""Loader for real Azure Public Dataset invocation files.

If a user has the actual dataset (per-minute invocation counts per
function, the `invocations_per_function_md.anon.*.csv` schema), this
loader converts a CSV into the same :class:`SyntheticTrace` container
the synthesizer produces, spreading each minute's count uniformly at
random inside the minute (the dataset's resolution is one minute).

The repository ships no dataset files; experiments fall back to
:func:`repro.traces.azure.synthesize_trace` when none is supplied.
"""

from __future__ import annotations

import csv
import random
from pathlib import Path
from typing import List

from repro.sim.units import SECOND
from repro.traces.azure import AzureTraceConfig, SyntheticTrace


class TraceFormatError(Exception):
    """The CSV does not follow the Azure invocation-count schema."""


def load_azure_invocations_csv(
    path: Path | str,
    rng: random.Random,
    max_functions: int | None = None,
    max_minutes: int | None = None,
) -> SyntheticTrace:
    """Parse an Azure `invocations_per_function` CSV into a trace.

    The schema has metadata columns (HashOwner, HashApp, HashFunction,
    Trigger) followed by one column per minute ("1", "2", ..., "1440")
    holding invocation counts.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceFormatError(f"{path}: empty CSV")
        minute_columns = [c for c in reader.fieldnames if c.isdigit()]
        if not minute_columns:
            raise TraceFormatError(
                f"{path}: no per-minute count columns found "
                f"(expected numeric column names)"
            )
        minute_columns.sort(key=int)
        if max_minutes is not None:
            minute_columns = minute_columns[:max_minutes]

        invocations: dict[str, List[int]] = {}
        for row_index, row in enumerate(reader):
            if max_functions is not None and row_index >= max_functions:
                break
            name = row.get("HashFunction") or f"row-{row_index}"
            timestamps: List[int] = []
            for column in minute_columns:
                raw = row.get(column, "") or "0"
                try:
                    count = int(raw)
                except ValueError:
                    raise TraceFormatError(
                        f"{path}: non-integer count {raw!r} at "
                        f"function {name!r} minute {column}"
                    ) from None
                minute_start = (int(column) - 1) * 60 * SECOND
                for _ in range(count):
                    timestamps.append(minute_start + round(rng.random() * 60 * SECOND))
            invocations[name] = sorted(timestamps)

    duration_s = len(minute_columns) * 60.0
    config = AzureTraceConfig(
        functions=max(1, len(invocations)), duration_s=duration_s
    )
    trace = SyntheticTrace(config=config)
    trace.invocations = invocations
    return trace
