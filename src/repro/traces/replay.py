"""Streaming, bounded-memory trace replay at production cardinality.

ROADMAP item 2: `repro.traces.azure` synthesizes Serverless-in-the-Wild
shaped arrivals, but materializes every timestamp up front — fine for a
30 s chunk, hopeless for 50k functions over an hour.  This module
replays the same workload *shape* as a *stream*:

* each function's arrivals are a lazy generator
  (:func:`arrival_stream`) driven by a counter-based per-function PRNG,
  so no function's draws depend on any other's;
* :func:`merged_stream` heap-merges the per-function generators holding
  **at most one pending event per live stream** — peak buffering is
  bounded by the function count, never by the event count (asserted by
  the bounded-memory regression test via :class:`ReplayStats`, a
  counting wrapper, not RSS);
* the merge tie-break is pinned to ``(t, function_index,
  per-function sequence)`` — like PR 7 pinned ``(t, shard, index)`` —
  so duplicate timestamps at merge boundaries order deterministically
  and same seed ⇒ byte-identical output, including across ``--shards``.

The function population mirrors the Azure dataset's published
structure (Shahrad et al., ATC'20): heavy-tailed Pareto rates, an idle
cohort that never fires, a timer-triggered cohort on jittered periods
(~29 % of Azure functions are timer triggers — the cohort that makes
histogram prewarming interesting), and an MMPP bursty remainder reusing
:func:`repro.traces.azure.burst_arrival_stream`.

Determinism note: per-function seeds derive from
``sha256("replay:<seed>:<index>")`` like :class:`repro.sim.rng.RngRegistry`
streams, and the PRNG is a self-contained SplitMix64 — ~3 machine words
per function instead of a ~2.5 KB Mersenne state, which is the
difference between 50k streams fitting in cache and not.
"""

from __future__ import annotations

import hashlib
import heapq
import math
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.sim.units import SECOND
from repro.traces.azure import AzureTraceConfig, burst_arrival_stream

__all__ = [
    "SplitMix64",
    "ReplayConfig",
    "ReplayStats",
    "FunctionProfile",
    "stream_seed",
    "function_profile",
    "arrival_stream",
    "merged_stream",
    "materialized_oracle",
]


class SplitMix64:
    """Tiny counter-based PRNG: one 64-bit word of state per stream.

    The standard SplitMix64 finalizer (Steele et al., "Fast splittable
    pseudorandom number generators").  Chosen over ``random.Random``
    because the replayer holds one generator per function — 50k Mersenne
    states cost ~130 MB, 50k of these cost ~3 MB — and because the
    output sequence is pinned by this file alone, not by the Python
    version's Mersenne implementation details.
    """

    __slots__ = ("_state",)

    _GOLDEN = 0x9E3779B97F4A7C15
    _MASK = 0xFFFFFFFFFFFFFFFF

    def __init__(self, seed: int) -> None:
        self._state = seed & self._MASK

    def next_u64(self) -> int:
        self._state = (self._state + self._GOLDEN) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of entropy."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def expovariate(self, lambd: float) -> float:
        # 1 - random() is in (0, 1], so log() never sees zero.
        return -math.log(1.0 - self.random()) / lambd

    def paretovariate(self, alpha: float) -> float:
        u = 1.0 - self.random()
        return u ** (-1.0 / alpha)


def stream_seed(seed: int, index: int) -> int:
    """Stable 64-bit seed for function *index* under replay *seed*.

    sha256-derived like :class:`repro.sim.rng.RngRegistry` forks, so the
    mapping survives Python-version and platform changes.
    """
    digest = hashlib.sha256(f"replay:{seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ReplayConfig:
    """Population + workload shape for a streaming replay run.

    Defaults target Azure-dataset realism at production cardinality:
    most functions are rare (``mean_rate_per_function`` well under
    1/s before the heavy tail), a large idle cohort never fires, and a
    quarter of the live ones are timer-triggered on minute-to-hour
    periods.
    """

    functions: int = 1000
    duration_s: float = 3600.0
    seed: int = 0
    #: long-run mean invocation rate per *live* bursty function (1/s)
    mean_rate_per_function: float = 0.02
    #: Pareto shape over bursty-function rates (must be > 1 so the
    #: mean-normalization factor (alpha-1)/alpha is positive)
    pareto_shape: float = 1.5
    burst_on_fraction: float = 0.35
    burst_mean_length_s: float = 60.0
    #: fraction of functions that never fire (Azure's long dead tail)
    idle_fraction: float = 0.4
    #: fraction of functions on timer triggers (ATC'20: ~29 % overall)
    periodic_fraction: float = 0.25
    period_min_s: float = 60.0
    period_max_s: float = 3600.0
    #: +/- relative jitter applied to every periodic tick
    period_jitter: float = 0.05

    def __post_init__(self) -> None:
        if self.functions <= 0:
            raise ValueError(f"functions must be positive, got {self.functions}")
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")
        if self.mean_rate_per_function < 0:
            raise ValueError(
                f"mean rate must be >= 0, got {self.mean_rate_per_function}"
            )
        if self.pareto_shape <= 1:
            raise ValueError(
                f"pareto_shape must be > 1 for a finite mean, "
                f"got {self.pareto_shape}"
            )
        if not 0 < self.burst_on_fraction <= 1:
            raise ValueError(
                f"burst_on_fraction must be in (0, 1], got {self.burst_on_fraction}"
            )
        if self.burst_mean_length_s <= 0:
            raise ValueError(
                f"burst_mean_length_s must be positive, "
                f"got {self.burst_mean_length_s}"
            )
        if not 0 <= self.idle_fraction <= 1:
            raise ValueError(
                f"idle_fraction must be in [0, 1], got {self.idle_fraction}"
            )
        if not 0 <= self.periodic_fraction <= 1:
            raise ValueError(
                f"periodic_fraction must be in [0, 1], got {self.periodic_fraction}"
            )
        if self.idle_fraction + self.periodic_fraction > 1:
            raise ValueError("idle_fraction + periodic_fraction must be <= 1")
        if not 0 < self.period_min_s <= self.period_max_s:
            raise ValueError(
                f"need 0 < period_min_s <= period_max_s, "
                f"got {self.period_min_s}, {self.period_max_s}"
            )
        if not 0 <= self.period_jitter <= 0.45:
            # Above ~0.45 jittered ticks could reorder; keep monotone.
            raise ValueError(
                f"period_jitter must be in [0, 0.45], got {self.period_jitter}"
            )

    def azure_config(self) -> AzureTraceConfig:
        """The burst-shape slice, for :func:`burst_arrival_stream`."""
        return AzureTraceConfig(
            functions=1,
            duration_s=self.duration_s,
            mean_rate_per_function=self.mean_rate_per_function,
            pareto_shape=self.pareto_shape,
            burst_on_fraction=self.burst_on_fraction,
            burst_mean_length_s=self.burst_mean_length_s,
        )


@dataclass(frozen=True)
class FunctionProfile:
    """What one function in the population looks like."""

    index: int
    kind: str                      # "idle" | "periodic" | "bursty"
    rate_per_s: float = 0.0        # bursty long-run mean rate
    period_s: float = 0.0          # periodic base period
    phase_s: float = 0.0           # periodic first-tick offset


def function_profile(config: ReplayConfig, index: int) -> FunctionProfile:
    """Draw function *index*'s profile from its own seeded stream.

    Purely per-function: profile draws share the function's stream (a
    fixed prefix of it), so any function's behaviour is reproducible
    without touching the other ``functions - 1`` streams.
    """
    if not 0 <= index < config.functions:
        raise ValueError(f"function index {index} out of range")
    rng = SplitMix64(stream_seed(config.seed, index))
    cohort = rng.random()
    if cohort < config.idle_fraction:
        return FunctionProfile(index=index, kind="idle")
    if cohort < config.idle_fraction + config.periodic_fraction:
        # Log-uniform period over [min, max]: short timers are common,
        # hour-scale ones exist (the fixed-keep-alive killer).
        lo, hi = math.log(config.period_min_s), math.log(config.period_max_s)
        period_s = math.exp(lo + (hi - lo) * rng.random())
        phase_s = rng.random() * period_s
        return FunctionProfile(
            index=index, kind="periodic", period_s=period_s, phase_s=phase_s
        )
    # Bursty cohort: Pareto-tailed rate with mean mean_rate_per_function.
    # E[paretovariate(a)] = a/(a-1), so scale by (a-1)/a to normalize the
    # mean WITHOUT a population-wide sum — keeps streams independent.
    alpha = config.pareto_shape
    rate = (
        config.mean_rate_per_function
        * rng.paretovariate(alpha)
        * (alpha - 1.0)
        / alpha
    )
    return FunctionProfile(index=index, kind="bursty", rate_per_s=rate)


def _periodic_stream(
    profile: FunctionProfile, config: ReplayConfig, rng: SplitMix64
) -> Iterator[int]:
    """Timer-trigger ticks with per-tick jitter, monotone by construction."""
    duration_ns = round(config.duration_s * SECOND)
    period_ns = profile.period_s * SECOND
    t = profile.phase_s * SECOND
    prev = -1
    while True:
        jitter = 1.0 + config.period_jitter * (2.0 * rng.random() - 1.0)
        when = round(t)
        if when >= duration_ns:
            return
        if when <= prev:           # monotonicity belt for extreme jitter
            when = prev
        yield when
        prev = when
        t += period_ns * jitter


def arrival_stream(config: ReplayConfig, index: int) -> Iterator[int]:
    """Lazy arrival timestamps (ns, nondecreasing) for one function.

    Resumes the function's seeded stream where :func:`function_profile`
    left off, so profile + arrivals together consume one deterministic
    draw sequence per function.
    """
    rng = SplitMix64(stream_seed(config.seed, index))
    profile = function_profile(config, index)
    # function_profile consumed draws from an identical stream; replay
    # the same prefix so arrival draws line up deterministically.
    rng.random()                                  # cohort draw
    if profile.kind == "idle":
        return iter(())
    if profile.kind == "periodic":
        rng.random()                              # period draw
        rng.random()                              # phase draw
        return _periodic_stream(profile, config, rng)
    rng.random()                                  # rate (pareto) draw
    return burst_arrival_stream(
        profile.rate_per_s, config.duration_s, config.azure_config(), rng
    )


@dataclass
class ReplayStats:
    """Counting wrapper filled in by :func:`merged_stream`.

    ``peak_buffered`` counts events held inside the merge at once (the
    heap plus at most one lookahead per stream) — the bounded-memory
    regression asserts this stays <= ``functions`` for any event count.
    """

    events: int = 0
    peak_buffered: int = 0
    exhausted_streams: int = 0
    per_kind: dict = field(default_factory=dict)


def merged_stream(
    config: ReplayConfig,
    stats: Optional[ReplayStats] = None,
    indices: Optional[List[int]] = None,
) -> Iterator[Tuple[int, int, int]]:
    """Heap-merge all per-function streams into one time-ordered stream.

    Yields ``(t_ns, function_index, seq)`` where ``seq`` is the
    per-function arrival sequence number.  Ordering is the pinned
    tie-break ``(t, function_index, seq)``: duplicate timestamps across
    functions order by index; within a function, by arrival order.

    Memory contract: holds exactly one pending event per live stream —
    ``len(heap) <= len(indices or range(functions))`` always.  Streams
    that exhaust are dropped from the heap (``exhausted_streams``
    counts them), so memory *shrinks* as the tail of rare functions
    finishes.
    """
    if indices is None:
        indices = list(range(config.functions))
    streams = {}
    heap: List[Tuple[int, int]] = []
    for index in indices:
        it = arrival_stream(config, index)
        first = next(it, None)
        if first is None:
            if stats is not None:
                stats.exhausted_streams += 1
            continue
        streams[index] = it
        heap.append((first, index))
    heapq.heapify(heap)
    if stats is not None:
        stats.peak_buffered = max(stats.peak_buffered, len(heap))
    seq = dict.fromkeys(streams, 0)
    while heap:
        t, index = heap[0]
        yield t, index, seq[index]
        seq[index] += 1
        nxt = next(streams[index], None)
        if nxt is None:
            heapq.heappop(heap)
            del streams[index]
            del seq[index]
            if stats is not None:
                stats.exhausted_streams += 1
        else:
            # Replace the popped head in one sift — the heap never
            # grows past its initial size.
            heapq.heapreplace(heap, (nxt, index))
        if stats is not None:
            stats.events += 1


def materialized_oracle(config: ReplayConfig) -> List[Tuple[int, int, int]]:
    """Naive materialize-and-sort reference for differential tests.

    Builds every per-function list eagerly, tags events with
    ``(t, index, seq)``, and sorts — exactly the memory profile the
    streaming merge avoids, and exactly the sequence it must reproduce
    byte-for-byte.
    """
    events: List[Tuple[int, int, int]] = []
    for index in range(config.functions):
        for seq, t in enumerate(arrival_stream(config, index)):
            events.append((t, index, seq))
    events.sort()
    return events
