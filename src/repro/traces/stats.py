"""Trace characterization statistics.

The Azure-like synthesizer's fidelity rests on two published properties
of the real dataset ("Serverless in the Wild", ATC'20): heavy-tailed
per-function rates and bursty arrivals.  This module computes the
measures that make those properties checkable:

* inter-arrival **coefficient of variation** (CV > 1 = burstier than
  Poisson);
* the **burstiness index** (CV-1)/(CV+1) in [-1, 1] (0 = Poisson);
* **top-k share** of invocations (tail heaviness across functions);
* a **Gini coefficient** over per-function invocation counts.

Used by the trace test suite and available to users validating their
own loaded traces against the synthesizer's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.metrics.stats import mean, stddev


def interarrival_gaps(timestamps_ns: Sequence[int]) -> List[int]:
    """Consecutive gaps of a sorted timestamp series."""
    ordered = sorted(timestamps_ns)
    return [b - a for a, b in zip(ordered, ordered[1:])]


def interarrival_cv(timestamps_ns: Sequence[int]) -> float:
    """Coefficient of variation of inter-arrival gaps.

    1.0 for a Poisson process; > 1 indicates burstiness.  Requires at
    least 3 arrivals (2 gaps).
    """
    gaps = interarrival_gaps(timestamps_ns)
    if len(gaps) < 2:
        raise ValueError(f"need >= 3 arrivals, got {len(timestamps_ns)}")
    gap_values = [float(g) for g in gaps]
    mu = mean(gap_values)
    if mu == 0:
        return 0.0
    return stddev(gap_values) / mu


def burstiness_index(timestamps_ns: Sequence[int]) -> float:
    """Goh-Barabasi burstiness B = (cv - 1) / (cv + 1), in [-1, 1].

    0 for Poisson, -> 1 for extreme bursts, < 0 for regular (pacemaker)
    arrivals.
    """
    cv = interarrival_cv(timestamps_ns)
    return (cv - 1.0) / (cv + 1.0)


def top_k_share(counts_by_function: Dict[str, int], k: int) -> float:
    """Share of all invocations carried by the k busiest functions."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    counts = sorted(counts_by_function.values(), reverse=True)
    total = sum(counts)
    if total == 0:
        return 0.0
    return sum(counts[:k]) / total


def gini_coefficient(values: Sequence[float]) -> float:
    """Gini inequality of *values* in [0, 1] (0 = equal shares).

    Computed with the standard mean-absolute-difference formula.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("gini of empty sequence")
    if any(v < 0 for v in data):
        raise ValueError("gini requires non-negative values")
    total = sum(data)
    if total == 0:
        return 0.0
    n = len(data)
    weighted = sum((index + 1) * value for index, value in enumerate(data))
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


@dataclass(frozen=True)
class TraceProfile:
    """Summary of one multi-function trace's structure."""

    functions: int
    total_invocations: int
    merged_cv: float
    merged_burstiness: float
    top_10pct_share: float
    rate_gini: float


def profile_trace(invocations_by_function: Dict[str, List[int]]) -> TraceProfile:
    """Characterize a trace in the dataset's terms."""
    if not invocations_by_function:
        raise ValueError("empty trace")
    merged: List[int] = []
    for timestamps in invocations_by_function.values():
        merged.extend(timestamps)
    if len(merged) < 3:
        raise ValueError("trace too sparse to profile (need >= 3 arrivals)")
    counts = {name: len(ts) for name, ts in invocations_by_function.items()}
    k = max(1, round(0.1 * len(counts)))
    return TraceProfile(
        functions=len(counts),
        total_invocations=len(merged),
        merged_cv=interarrival_cv(merged),
        merged_burstiness=burstiness_index(merged),
        top_10pct_share=top_k_share(counts, k),
        rate_gini=gini_coefficient(list(counts.values())),
    )
