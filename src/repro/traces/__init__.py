"""Invocation arrival modeling: processes, Azure-like synthesis, loader."""

from repro.traces.arrival import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    TraceDrivenArrivals,
)
from repro.traces.azure import (
    AzureTraceConfig,
    SyntheticTrace,
    burst_arrival_stream,
    synthesize_trace,
)
from repro.traces.loader import TraceFormatError, load_azure_invocations_csv
from repro.traces.replay import (
    FunctionProfile,
    ReplayConfig,
    ReplayStats,
    SplitMix64,
    arrival_stream,
    function_profile,
    materialized_oracle,
    merged_stream,
    stream_seed,
)
from repro.traces.stats import (
    TraceProfile,
    burstiness_index,
    gini_coefficient,
    interarrival_cv,
    interarrival_gaps,
    profile_trace,
    top_k_share,
)

__all__ = [
    "TraceProfile",
    "burstiness_index",
    "gini_coefficient",
    "interarrival_cv",
    "interarrival_gaps",
    "profile_trace",
    "top_k_share",
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "TraceDrivenArrivals",
    "AzureTraceConfig",
    "SyntheticTrace",
    "burst_arrival_stream",
    "synthesize_trace",
    "FunctionProfile",
    "ReplayConfig",
    "ReplayStats",
    "SplitMix64",
    "arrival_stream",
    "function_profile",
    "materialized_oracle",
    "merged_stream",
    "stream_seed",
    "TraceFormatError",
    "load_azure_invocations_csv",
]
