"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``       — run the full evaluation, print/write Markdown;
* ``experiment``   — run one paper artifact and print its table/series;
* ``list``         — list experiment ids, titles, runtime estimates;
* ``trace``        — run one artifact under the observability layer and
  export Perfetto-loadable Chrome JSON + lossless JSONL traces;
* ``check``        — run one artifact under the correctness harness
  (invariants + differential oracles, optional fault injection);
* ``chaos``        — run the cluster chaos study under seeded
  infrastructure failures (crashes, resume faults) and compare
  resilience modes;
* ``profile``      — run one experiment under the deterministic
  subsystem profiler; write flamegraph-ready folded stacks plus a
  machine-readable hotspot table;
* ``bench``        — run the sim-kernel performance gate;
* ``demo``         — the quickstart comparison of the four start paths.

The ``experiment``/``list``/``trace`` commands drive off the experiment
registry (:mod:`repro.experiments.registry`): registering a new
:class:`~repro.experiments.registry.ExperimentSpec` makes it runnable
and listable here with no CLI change.  Commands that run the simulation
accept ``--scheduler heap|calendar`` to select the engine's pending-
event structure (identical results either way; see DESIGN.md §10).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro.analysis.report import ReportConfig, generate_report
from repro.experiments.registry import ExperimentConfig, all_specs
from repro.experiments.registry import get as get_experiment

#: id -> title, derived from the registry (kept for compatibility — the
#: registry is the source of truth).
EXPERIMENTS: Dict[str, str] = {spec.id: spec.title for spec in all_specs()}


def _apply_scheduler(args: argparse.Namespace) -> None:
    """Make ``--scheduler`` the process-wide default when given."""
    scheduler = getattr(args, "scheduler", None)
    if scheduler:
        from repro.sim.engine import set_default_scheduler

        set_default_scheduler(scheduler)


def _add_scheduler_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scheduler", choices=("heap", "calendar"), default=None,
        help="engine pending-event structure (identical results; "
        "calendar is faster at cluster scale)",
    )


def _run_experiment(name: str, fast: bool, seed: int, platform: str) -> str:
    """Run one registered experiment, return its rendered summary."""
    return (
        get_experiment(name)
        .run(ExperimentConfig(fast=fast, seed=seed, platform=platform))
        .summary()
    )


def _cmd_report(args: argparse.Namespace) -> int:
    report = generate_report(ReportConfig(seed=args.seed, fast=args.fast))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    _apply_scheduler(args)
    spec = get_experiment(args.name)
    result = spec.run(
        ExperimentConfig(
            fast=args.fast,
            seed=args.seed,
            platform=args.platform,
            shards=args.shards,
        )
    )
    if args.json:
        print(result.to_json())
        return 0
    print(f"== {spec.title} ({args.platform}) ==\n")
    print(result.summary())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment instrumented and export its traces.

    The experiment drivers are untouched: platforms built inside the
    ``activate`` block pick the bundle up from the active observability
    context, so any experiment id traces without modification.
    """
    import os

    from repro.obs import (
        MetricRegistry,
        Observability,
        Tracer,
        activate,
        write_chrome_trace,
        write_jsonl,
    )

    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    obs = Observability(Tracer(), MetricRegistry())
    with activate(obs):
        rendered = _run_experiment(
            args.name, fast=args.fast, seed=args.seed, platform=args.platform
        )
    os.makedirs(args.out_dir, exist_ok=True)
    chrome_path = os.path.join(args.out_dir, f"{args.name}.trace.json")
    jsonl_path = os.path.join(args.out_dir, f"{args.name}.trace.jsonl")
    write_chrome_trace(obs.tracer, chrome_path)
    write_jsonl(obs.tracer, jsonl_path)
    print(rendered)
    print()
    print(f"== metrics ({len(obs.tracer)} spans) ==")
    print(obs.metrics.render())
    print()
    print(f"wrote {chrome_path} (load in Perfetto / chrome://tracing)")
    print(f"wrote {jsonl_path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run one experiment under the correctness harness.

    Exit status 0 means every invariant held and every differential
    oracle agreed (and, with ``--fault``, that each planned fault found
    an eligible cycle); 1 means violations were reported — which is the
    *expected* outcome of a fault-injection run.
    """
    from repro.check import CHECKABLE, FaultPlan, FaultSpec, run_check
    from repro.obs import MetricRegistry, Observability, Tracer, activate

    if args.name not in CHECKABLE:
        print(
            f"experiment {args.name!r} has no checked runner; "
            f"choose from {', '.join(CHECKABLE)}",
            file=sys.stderr,
        )
        return 2
    try:
        fault_plan = (
            FaultPlan(
                seed=args.seed,
                specs=tuple(FaultSpec(kind) for kind in args.fault),
            )
            if args.fault
            else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    obs = Observability(Tracer(), MetricRegistry())
    with activate(obs):
        report = run_check(
            args.name,
            fast=args.fast,
            platform=args.platform,
            seed=args.seed,
            fault_plan=fault_plan,
            max_ulps=args.max_ulps,
            obs=obs,
        )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos experiment under seeded failure injection.

    Exit status 0 means every mode was sound: all submitted requests
    reached a terminal state (completed / shed / failed — none lost)
    and every resilience invariant held; 1 means a mode reported
    violations.  Output is deterministic: two runs with the same seed
    and flags are byte-identical (the CI chaos job diffs them).

    With ``--shards N`` the run uses the sharded engine (DESIGN.md
    §12): the cluster becomes ``--groups`` failure-domain cells, each
    on its own engine, distributed over N worker processes.  The
    worker count never appears in the output — same seed, same flags
    ⇒ byte-identical stdout and ``--trace-out`` JSONL for ANY N (the
    CI shard job diffs N ∈ {1, 2, 4}).

    With ``--gateways N`` the run exercises the crash-recoverable
    control plane instead (DESIGN.md §14): each cell gets N gateway
    shards behind a consistent-hash router, ``--gateway-failure-rate``
    crashes whole shards, and recovery replays their intent logs.
    Every run asserts the exactly-once invariants; with
    ``--failure-rate 0`` the differential oracle additionally requires
    outcome-identity against a same-seed zero-gateway-failure twin.
    The byte-identity contract is unchanged: same seed and flags ⇒
    identical output for any ``--shards``.
    """
    from repro.experiments.chaos import (
        CHAOSABLE,
        ChaosConfig,
        render_chaos,
        run_chaos,
    )

    if args.name not in CHAOSABLE:
        print(
            f"experiment {args.name!r} has no chaos runner; "
            f"choose from {', '.join(CHAOSABLE)}",
            file=sys.stderr,
        )
        return 2
    _apply_scheduler(args)
    from repro.resilience.policies import default_dispatch_policy

    dispatch = args.dispatch or default_dispatch_policy()
    if args.gateways is not None:
        from repro.experiments.cluster_recovery import (
            ClusterRecoveryConfig,
            render_recovery,
            run_recovery,
            write_trace_jsonl as write_recovery_trace,
        )

        try:
            recovery_config = ClusterRecoveryConfig(
                groups=args.groups,
                gateways=args.gateways,
                hosts=args.hosts,
                gateway_failure_rate=args.gateway_failure_rate,
                failure_rate=args.failure_rate,
                requests=args.requests,
                seed=args.seed,
                dispatch=dispatch,
            )
            recovery = run_recovery(
                recovery_config, shards=args.shards or 1
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(render_recovery(recovery))
        if args.trace_out:
            write_recovery_trace(recovery, args.trace_out)
            print(f"wrote {args.trace_out}", file=sys.stderr)
        return 0 if recovery.ok else 1
    if args.shards is not None:
        from repro.experiments.sharded_chaos import (
            ShardedChaosConfig,
            render_sharded_chaos,
            run_sharded_chaos,
            write_trace_jsonl,
        )

        try:
            sharded_config = ShardedChaosConfig(
                groups=args.groups,
                hosts=args.hosts,
                failure_rate=args.failure_rate,
                requests=args.requests,
                seed=args.seed,
                dispatch=dispatch,
            )
            sharded = run_sharded_chaos(sharded_config, shards=args.shards)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(render_sharded_chaos(sharded))
        if args.trace_out:
            write_trace_jsonl(sharded, args.trace_out)
            print(f"wrote {args.trace_out}", file=sys.stderr)
        return 0 if sharded.ok else 1
    if args.trace_out:
        print("--trace-out requires --shards", file=sys.stderr)
        return 2
    try:
        config = ChaosConfig(
            hosts=args.hosts,
            failure_rate=args.failure_rate,
            requests=args.requests,
            seed=args.seed,
            dispatch=dispatch,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_chaos(config)
    print(render_chaos(result))
    return 0 if result.ok else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    """Stream an Azure-scale synthetic trace through a prewarm policy.

    The replayer is bounded-memory (DESIGN.md §13): it heap-merges lazy
    per-function arrival generators holding at most one pending event
    per function, so ``--functions 50000 --hours 1`` runs in a flat
    memory footprint.  Output is deterministic: same seed and flags ⇒
    byte-identical stdout for ANY ``--shards`` (the CI replay job diffs
    same-seed runs and worker counts).
    """
    from repro.faas.prewarm import (
        PrewarmConfig,
        default_prewarm_policy,
        render_replay,
        run_replay,
    )
    from repro.traces.replay import ReplayConfig

    try:
        config = PrewarmConfig(
            replay=ReplayConfig(
                functions=args.functions,
                duration_s=args.hours * 3600.0,
                seed=args.seed,
            ),
            policy=args.policy or default_prewarm_policy(),
            memory_budget_mb=args.memory_budget,
            sandbox_mb=args.sandbox_mb,
            groups=args.groups,
            warmup_s=args.warmup_s,
        )
        result = run_replay(config, shards=args.shards)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_replay(result))
    return 0 if not result.violations() else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one experiment with the deterministic subsystem profiler.

    ``repro profile chaos`` runs the full chaos study (one attribution
    phase per resilience mode); any registry experiment id profiles as a
    single phase.  Engines built while the profiler is active route
    dispatch through the profiled drain, so the drivers are untouched.

    Writes ``<name>.collapsed`` (flamegraph.pl / speedscope folded
    stacks) and ``<name>.hotspots.json`` to ``--out-dir``.  Both
    artifacts and stdout are deterministic — same seed, byte-identical;
    the machine-dependent wall-time attribution goes to stderr only.
    """
    import os

    from repro.obs.profile import SubsystemProfiler, profiling

    _apply_scheduler(args)
    profiler = SubsystemProfiler(args.name)
    if args.name == "chaos":
        from repro.experiments.chaos import (
            CHAOS_MODES,
            ChaosConfig,
            run_chaos_mode,
        )

        try:
            config = ChaosConfig(
                hosts=args.hosts,
                failure_rate=args.failure_rate,
                requests=args.requests,
                seed=args.seed,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        with profiling(profiler):
            for mode in CHAOS_MODES:
                profiler.phase(mode)
                run_chaos_mode(mode, config)
    elif args.name in EXPERIMENTS:
        with profiling(profiler):
            profiler.phase(args.name)
            _run_experiment(
                args.name, fast=args.fast, seed=args.seed, platform=args.platform
            )
    else:
        print(
            f"unknown profile target {args.name!r}; choose 'chaos' or one of "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    profiler.finish()
    os.makedirs(args.out_dir, exist_ok=True)
    collapsed_path = os.path.join(args.out_dir, f"{args.name}.collapsed")
    hotspots_path = os.path.join(args.out_dir, f"{args.name}.hotspots.json")
    with open(collapsed_path, "w") as handle:
        handle.write(profiler.collapsed_stacks())
    with open(hotspots_path, "w") as handle:
        handle.write(profiler.hotspot_json())
    print(profiler.hotspot_text(limit=args.top))
    print()
    print(f"wrote {collapsed_path} (flamegraph.pl / speedscope)")
    print(f"wrote {hotspots_path}")
    print(profiler.wall_report(), file=sys.stderr)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "policies", False):
        from repro.faas.prewarm import PREWARM_POLICIES
        from repro.resilience.policies import DISPATCH_POLICIES
        from repro.sim.engine import _ENV_SCHEDULER, default_scheduler
        from repro.sim.schedulers import scheduler_kinds

        axes = [
            (
                "scheduler",
                _ENV_SCHEDULER,
                default_scheduler(),
                list(scheduler_kinds()),
            ),
            (
                "prewarm",
                PREWARM_POLICIES.env_var,
                PREWARM_POLICIES.default(),
                PREWARM_POLICIES.kinds(),
            ),
            (
                "dispatch",
                DISPATCH_POLICIES.env_var,
                DISPATCH_POLICIES.default(),
                DISPATCH_POLICIES.kinds(),
            ),
        ]
        for axis, env_var, default, kinds in axes:
            print(f"{axis:9s}  ({env_var}, default {default})")
            for kind in kinds:
                print(f"  {kind}")
        return 0
    width = max(len(spec.id) for spec in all_specs())
    for spec in all_specs():
        print(f"{spec.id:{width}s}  ~{spec.fast_estimate_s:4.1f}s  {spec.title}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.gate import main as perf_gate_main

    _apply_scheduler(args)
    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.benches:
        forwarded.extend(["--benches", args.benches])
    if args.write:
        forwarded.extend(["--write", args.write])
    if args.check:
        forwarded.append("--check")
    if args.baseline:
        forwarded.extend(["--baseline", args.baseline])
    if args.require_speedup is not None:
        forwarded.extend(["--require-speedup", str(args.require_speedup)])
    if args.max_obs_overhead is not None:
        forwarded.extend(["--max-obs-overhead", str(args.max_obs_overhead)])
    if args.require_shard_speedup is not None:
        forwarded.extend(
            ["--require-shard-speedup", str(args.require_shard_speedup)]
        )
    forwarded.extend(["--tolerance", str(args.tolerance)])
    forwarded.extend(["--seed", str(args.seed)])
    return perf_gate_main(forwarded)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.faas import FaaSPlatform, FunctionSpec, StartType
    from repro.sim.units import format_duration, seconds
    from repro.workloads import FirewallWorkload

    faas = FaaSPlatform.build("firecracker", seed=args.seed)
    faas.register(FunctionSpec("firewall", FirewallWorkload()))
    print(f"{'start':10s}  {'init':>12s}  {'init %':>8s}")
    for start_type in (StartType.COLD, StartType.RESTORE,
                       StartType.WARM, StartType.HORSE):
        if start_type in (StartType.WARM, StartType.HORSE):
            faas.provision_warm(
                "firewall", count=1, use_horse=start_type is StartType.HORSE
            )
        invocation = faas.trigger("firewall", start_type)
        faas.engine.run(until=faas.engine.now + seconds(3))
        print(
            f"{start_type.value:10s}  "
            f"{format_duration(invocation.initialization_ns):>12s}  "
            f"{invocation.init_percentage:7.2f}%"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HORSE reproduction — experiments and demos",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="full evaluation report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", type=str, default=None)
    report.set_defaults(func=_cmd_report)

    experiment = subparsers.add_parser("experiment", help="one paper artifact")
    experiment.add_argument("name", help=", ".join(sorted(EXPERIMENTS)))
    experiment.add_argument("--fast", action="store_true")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker processes for sharded experiments (cluster_sharded); "
        "results are byte-identical for any N",
    )
    experiment.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    experiment.add_argument(
        "--json", action="store_true",
        help="print the result rows as JSON instead of the rendered table",
    )
    _add_scheduler_flag(experiment)
    experiment.set_defaults(func=_cmd_experiment)

    trace = subparsers.add_parser(
        "trace", help="run one artifact traced; export Chrome JSON + JSONL"
    )
    trace.add_argument("name", help=", ".join(sorted(EXPERIMENTS)))
    trace.add_argument("--fast", action="store_true")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    trace.add_argument(
        "--out-dir", type=str, default="traces",
        help="directory for <name>.trace.json / <name>.trace.jsonl",
    )
    trace.set_defaults(func=_cmd_trace)

    check = subparsers.add_parser(
        "check",
        help="run one artifact under the correctness harness "
        "(invariants, differential oracles, fault injection)",
    )
    check.add_argument("name", help="checkable experiment id (figure3)")
    check.add_argument("--fast", action="store_true")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    check.add_argument(
        "--fault", action="append", default=[], metavar="KIND",
        help="inject a fault (repeatable): stale_arrayb, stale_posa, "
        "skip_merge_thread, drop_coalesced, clock_skew, "
        "pause_during_resume",
    )
    check.add_argument(
        "--max-ulps", type=int, default=16,
        help="ULP budget for the coalesced-vs-iterated load comparison",
    )
    check.set_defaults(func=_cmd_check)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the cluster chaos study under seeded failure injection "
        "(node crashes, resume faults; breaker vs retries-only vs vanilla)",
    )
    chaos.add_argument("name", help="chaos experiment id (cluster)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--failure-rate", type=float, default=0.1, metavar="R",
        help="failure intensity in [0, 1): resume-fault probability scale "
        "and crash frequency (default 0.1)",
    )
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--requests", type=int, default=1200)
    chaos.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run the sharded engine over N worker processes "
        "(DESIGN.md §12); results are byte-identical for any N. "
        "--hosts then means hosts per failure-domain cell",
    )
    chaos.add_argument(
        "--groups", type=int, default=8, metavar="G",
        help="failure-domain cells in the sharded model (with --shards; "
        "a model parameter: changing it changes the simulated system)",
    )
    chaos.add_argument(
        "--gateways", type=int, default=None, metavar="N",
        help="run the crash-recoverable control plane (DESIGN.md §14): "
        "N gateway shards per failure-domain cell behind a "
        "consistent-hash router; gateway crashes recover from intent "
        "logs under the exactly-once oracle. --hosts then means hosts "
        "per gateway shard",
    )
    chaos.add_argument(
        "--gateway-failure-rate", type=float, default=0.2, metavar="R",
        help="gateway-shard crash intensity in [0, 1) (with --gateways; "
        "default 0.2). 0 disables gateway crashes",
    )
    chaos.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write the merged deterministic trace as JSONL "
        "(with --shards or --gateways)",
    )
    chaos.add_argument(
        "--dispatch", type=str, default=None, metavar="P",
        help="gateway dispatch policy: push-least-loaded | pull[-<slots>] "
        "| mqfq-sticky | deadline[-<slack_ms>] (default: "
        "REPRO_DISPATCH_POLICY or push-least-loaded; see "
        "'repro list --policies')",
    )
    _add_scheduler_flag(chaos)
    chaos.set_defaults(func=_cmd_chaos)

    replay = subparsers.add_parser(
        "replay",
        help="stream an Azure-scale synthetic trace through a sandbox "
        "prewarm policy over a host memory budget (bounded memory)",
    )
    replay.add_argument(
        "--functions", type=int, default=1000, metavar="N",
        help="distinct functions in the trace population (default 1000)",
    )
    replay.add_argument(
        "--hours", type=float, default=1.0,
        help="simulated duration in hours (default 1.0)",
    )
    replay.add_argument(
        "--policy", type=str, default=None, metavar="P",
        help="sandbox lifecycle policy: none | fixed-<seconds> | hybrid "
        "| hybrid-<bin_seconds> (default: REPRO_PREWARM_POLICY or "
        "hybrid; see 'repro list --policies')",
    )
    replay.add_argument(
        "--memory-budget", type=float, default=4096.0, metavar="MB",
        help="host memory budget for resident sandboxes (default 4096)",
    )
    replay.add_argument(
        "--sandbox-mb", type=float, default=128.0, metavar="MB",
        help="resident footprint of one sandbox (default 128)",
    )
    replay.add_argument(
        "--groups", type=int, default=1, metavar="G",
        help="capacity cells the budget splits into (a model parameter)",
    )
    replay.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="worker processes for the cells; byte-identical for any N",
    )
    replay.add_argument(
        "--warmup-s", type=float, default=0.0, metavar="S",
        help="exclude arrivals before S seconds from the latency "
        "histogram (steady-state measurement)",
    )
    replay.add_argument("--seed", type=int, default=0)
    replay.set_defaults(func=_cmd_replay)

    profile = subparsers.add_parser(
        "profile",
        help="run one experiment under the deterministic subsystem "
        "profiler; write folded stacks + hotspot table",
    )
    profile.add_argument(
        "name", help="'chaos' or one of " + ", ".join(sorted(EXPERIMENTS))
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--fast", action="store_true")
    profile.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (registry experiments only)",
    )
    profile.add_argument(
        "--failure-rate", type=float, default=0.1, metavar="R",
        help="chaos failure intensity (chaos target only)",
    )
    profile.add_argument("--hosts", type=int, default=4)
    profile.add_argument("--requests", type=int, default=1200)
    profile.add_argument(
        "--out-dir", type=str, default="profiles",
        help="directory for <name>.collapsed / <name>.hotspots.json",
    )
    profile.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="only print the N hottest rows (artifacts are always full)",
    )
    _add_scheduler_flag(profile)
    profile.set_defaults(func=_cmd_profile)

    bench = subparsers.add_parser(
        "bench",
        help="run the sim-kernel performance gate (see benchmarks/perf_gate.py)",
    )
    bench.add_argument("--quick", action="store_true")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--benches", type=str, default=None, metavar="A,B,...")
    bench.add_argument("--write", type=str, default=None, metavar="PATH")
    bench.add_argument("--check", action="store_true")
    bench.add_argument("--baseline", type=str, default=None, metavar="PATH")
    bench.add_argument("--tolerance", type=float, default=0.15)
    bench.add_argument("--require-speedup", type=float, default=None, metavar="X")
    bench.add_argument(
        "--max-obs-overhead", type=float, default=None, metavar="F",
        help="fail if obs-enabled chaos is more than F slower than obs-off",
    )
    bench.add_argument(
        "--require-shard-speedup", type=float, default=None, metavar="X",
        help="fail unless the 4-worker sharded study is >= X times the "
        "serial events/sec (skipped when the machine has too few cores)",
    )
    _add_scheduler_flag(bench)
    bench.set_defaults(func=_cmd_bench)

    lister = subparsers.add_parser(
        "list", help="list experiment ids, titles, and fast-mode estimates"
    )
    lister.add_argument(
        "--policies", action="store_true",
        help="list every registered scheduler/prewarm/dispatch policy "
        "with its env var and effective default",
    )
    lister.set_defaults(func=_cmd_list)

    demo = subparsers.add_parser("demo", help="compare the four start paths")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    validate = subparsers.add_parser(
        "validate", help="check every paper claim against measured values"
    )
    validate.add_argument("--full", action="store_true",
                          help="10 reps and the full vCPU sweep")
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)

    return parser


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import failed_checks, summarize, validate_all

    checks = validate_all(fast=not args.full, seed=args.seed)
    print(summarize(checks))
    return 1 if failed_checks(checks) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
