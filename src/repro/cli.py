"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``       — run the full evaluation, print/write Markdown;
* ``experiment``   — run one paper artifact and print its table/series;
* ``trace``        — run one artifact under the observability layer and
  export Perfetto-loadable Chrome JSON + lossless JSONL traces;
* ``check``        — run one artifact under the correctness harness
  (invariants + differential oracles, optional fault injection);
* ``chaos``        — run the cluster chaos study under seeded
  infrastructure failures (crashes, resume faults) and compare
  resilience modes;
* ``demo``         — the quickstart comparison of the four start paths;
* ``list``         — list the available experiment ids.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.analysis.figures import (
    render_colocation,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.analysis.report import ReportConfig, generate_report
from repro.analysis.tables import render_table1

EXPERIMENTS: Dict[str, str] = {
    "table1": "Table 1 — init/exec/init% for cold/restore/warm x categories",
    "figure1": "Figure 1 — init share per scenario",
    "figure2": "Figure 2 — vanilla resume breakdown vs vCPUs",
    "figure3": "Figure 3 — resume time: vanil/ppsm/coal/horse",
    "figure4": "Figure 4 — init share incl. HORSE",
    "overhead": "§5.2 — CPU and memory overhead",
    "colocation": "§5.4 — colocation with long-running functions",
}


def _run_experiment(name: str, fast: bool, seed: int, platform: str) -> str:
    reps = 3 if fast else 10
    sweep = (1, 8, 36) if fast else (1, 2, 4, 8, 16, 24, 36)
    if name in ("table1", "figure1"):
        from repro.experiments.table1 import run_table1

        result = run_table1(repetitions=reps, seed=seed, platform=platform)
        return render_table1(result) if name == "table1" else render_figure1(result)
    if name == "figure2":
        from repro.experiments.figure2 import run_figure2

        return render_figure2(
            run_figure2(vcpu_counts=sweep, repetitions=reps, platform=platform)
        )
    if name == "figure3":
        from repro.experiments.figure3 import run_figure3

        return render_figure3(
            run_figure3(vcpu_counts=sweep, repetitions=reps, platform=platform)
        )
    if name == "figure4":
        from repro.experiments.figure4 import run_figure4

        return render_figure4(
            run_figure4(repetitions=reps, seed=seed, platform=platform)
        )
    if name == "overhead":
        from repro.experiments.overhead import run_overhead

        result = run_overhead(
            vcpu_counts=(1, 36) if fast else sweep, seed=seed, platform=platform
        )
        lines = []
        for vcpus in result.vcpu_counts():
            lines.append(
                f"uLL vCPUs={vcpus}: mem delta "
                f"{result.memory_delta_bytes(vcpus) / 1000:.1f} kB, "
                f"pause CPU {result.pause_cpu_delta_pct(vcpus):.6f} %, "
                f"resume CPU {result.resume_cpu_delta_pct(vcpus):.6f} %"
            )
        return "\n".join(lines)
    if name == "colocation":
        from repro.experiments.colocation import run_colocation

        counts = (1, 36) if fast else (1, 8, 16, 36)
        return render_colocation(
            run_colocation(vcpu_counts=counts, seed=seed, platform=platform)
        )
    raise ValueError(f"unknown experiment {name!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    report = generate_report(ReportConfig(seed=args.seed, fast=args.fast))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    print(f"== {EXPERIMENTS[args.name]} ({args.platform}) ==\n")
    print(
        _run_experiment(
            args.name, fast=args.fast, seed=args.seed, platform=args.platform
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment instrumented and export its traces.

    The experiment drivers are untouched: platforms built inside the
    ``activate`` block pick the bundle up from the active observability
    context, so any experiment id traces without modification.
    """
    import os

    from repro.obs import (
        MetricRegistry,
        Observability,
        Tracer,
        activate,
        write_chrome_trace,
        write_jsonl,
    )

    if args.name not in EXPERIMENTS:
        print(
            f"unknown experiment {args.name!r}; "
            f"choose from {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    obs = Observability(Tracer(), MetricRegistry())
    with activate(obs):
        rendered = _run_experiment(
            args.name, fast=args.fast, seed=args.seed, platform=args.platform
        )
    os.makedirs(args.out_dir, exist_ok=True)
    chrome_path = os.path.join(args.out_dir, f"{args.name}.trace.json")
    jsonl_path = os.path.join(args.out_dir, f"{args.name}.trace.jsonl")
    write_chrome_trace(obs.tracer, chrome_path)
    write_jsonl(obs.tracer, jsonl_path)
    print(rendered)
    print()
    print(f"== metrics ({len(obs.tracer)} spans) ==")
    print(obs.metrics.render())
    print()
    print(f"wrote {chrome_path} (load in Perfetto / chrome://tracing)")
    print(f"wrote {jsonl_path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run one experiment under the correctness harness.

    Exit status 0 means every invariant held and every differential
    oracle agreed (and, with ``--fault``, that each planned fault found
    an eligible cycle); 1 means violations were reported — which is the
    *expected* outcome of a fault-injection run.
    """
    from repro.check import CHECKABLE, FaultPlan, FaultSpec, run_check
    from repro.obs import MetricRegistry, Observability, Tracer, activate

    if args.name not in CHECKABLE:
        print(
            f"experiment {args.name!r} has no checked runner; "
            f"choose from {', '.join(CHECKABLE)}",
            file=sys.stderr,
        )
        return 2
    try:
        fault_plan = (
            FaultPlan(
                seed=args.seed,
                specs=tuple(FaultSpec(kind) for kind in args.fault),
            )
            if args.fault
            else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    obs = Observability(Tracer(), MetricRegistry())
    with activate(obs):
        report = run_check(
            args.name,
            fast=args.fast,
            platform=args.platform,
            seed=args.seed,
            fault_plan=fault_plan,
            max_ulps=args.max_ulps,
            obs=obs,
        )
    print(report.render())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the chaos experiment under seeded failure injection.

    Exit status 0 means every mode was sound: all submitted requests
    reached a terminal state (completed / shed / failed — none lost)
    and every resilience invariant held; 1 means a mode reported
    violations.  Output is deterministic: two runs with the same seed
    and flags are byte-identical (the CI chaos job diffs them).
    """
    from repro.experiments.chaos import (
        CHAOSABLE,
        ChaosConfig,
        render_chaos,
        run_chaos,
    )

    if args.name not in CHAOSABLE:
        print(
            f"experiment {args.name!r} has no chaos runner; "
            f"choose from {', '.join(CHAOSABLE)}",
            file=sys.stderr,
        )
        return 2
    try:
        config = ChaosConfig(
            hosts=args.hosts,
            failure_rate=args.failure_rate,
            requests=args.requests,
            seed=args.seed,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    result = run_chaos(config)
    print(render_chaos(result))
    return 0 if result.ok else 1


def _cmd_list(_args: argparse.Namespace) -> int:
    for name, description in sorted(EXPERIMENTS.items()):
        print(f"{name:12s} {description}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.faas import FaaSPlatform, FunctionSpec, StartType
    from repro.sim.units import format_duration, seconds
    from repro.workloads import FirewallWorkload

    faas = FaaSPlatform.build("firecracker", seed=args.seed)
    faas.register(FunctionSpec("firewall", FirewallWorkload()))
    print(f"{'start':10s}  {'init':>12s}  {'init %':>8s}")
    for start_type in (StartType.COLD, StartType.RESTORE,
                       StartType.WARM, StartType.HORSE):
        if start_type in (StartType.WARM, StartType.HORSE):
            faas.provision_warm(
                "firewall", count=1, use_horse=start_type is StartType.HORSE
            )
        invocation = faas.trigger("firewall", start_type)
        faas.engine.run(until=faas.engine.now + seconds(3))
        print(
            f"{start_type.value:10s}  "
            f"{format_duration(invocation.initialization_ns):>12s}  "
            f"{invocation.init_percentage:7.2f}%"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HORSE reproduction — experiments and demos",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    report = subparsers.add_parser("report", help="full evaluation report")
    report.add_argument("--fast", action="store_true")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("--out", type=str, default=None)
    report.set_defaults(func=_cmd_report)

    experiment = subparsers.add_parser("experiment", help="one paper artifact")
    experiment.add_argument("name", help=", ".join(sorted(EXPERIMENTS)))
    experiment.add_argument("--fast", action="store_true")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    experiment.set_defaults(func=_cmd_experiment)

    trace = subparsers.add_parser(
        "trace", help="run one artifact traced; export Chrome JSON + JSONL"
    )
    trace.add_argument("name", help=", ".join(sorted(EXPERIMENTS)))
    trace.add_argument("--fast", action="store_true")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    trace.add_argument(
        "--out-dir", type=str, default="traces",
        help="directory for <name>.trace.json / <name>.trace.jsonl",
    )
    trace.set_defaults(func=_cmd_trace)

    check = subparsers.add_parser(
        "check",
        help="run one artifact under the correctness harness "
        "(invariants, differential oracles, fault injection)",
    )
    check.add_argument("name", help="checkable experiment id (figure3)")
    check.add_argument("--fast", action="store_true")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--platform", choices=("firecracker", "xen"), default="firecracker",
        help="hypervisor model (the paper evaluated both)",
    )
    check.add_argument(
        "--fault", action="append", default=[], metavar="KIND",
        help="inject a fault (repeatable): stale_arrayb, stale_posa, "
        "skip_merge_thread, drop_coalesced, clock_skew, "
        "pause_during_resume",
    )
    check.add_argument(
        "--max-ulps", type=int, default=16,
        help="ULP budget for the coalesced-vs-iterated load comparison",
    )
    check.set_defaults(func=_cmd_check)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the cluster chaos study under seeded failure injection "
        "(node crashes, resume faults; breaker vs retries-only vs vanilla)",
    )
    chaos.add_argument("name", help="chaos experiment id (cluster)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--failure-rate", type=float, default=0.1, metavar="R",
        help="failure intensity in [0, 1): resume-fault probability scale "
        "and crash frequency (default 0.1)",
    )
    chaos.add_argument("--hosts", type=int, default=4)
    chaos.add_argument("--requests", type=int, default=1200)
    chaos.set_defaults(func=_cmd_chaos)

    lister = subparsers.add_parser("list", help="list experiment ids")
    lister.set_defaults(func=_cmd_list)

    demo = subparsers.add_parser("demo", help="compare the four start paths")
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    validate = subparsers.add_parser(
        "validate", help="check every paper claim against measured values"
    )
    validate.add_argument("--full", action="store_true",
                          help="10 reps and the full vCPU sweep")
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(func=_cmd_validate)

    return parser


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import failed_checks, summarize, validate_all

    checks = validate_all(fast=not args.full, seed=args.seed)
    print(summarize(checks))
    return 1 if failed_checks(checks) else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
