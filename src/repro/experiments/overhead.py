"""Experiment OV — the §5.2 overhead study.

Procedure (paper): on a server already running 10 1-vCPU sandboxes
(each busy with sysbench), successively create 10 uLL sandboxes, pause
them for 5 seconds, then resume them; sweep the uLL sandboxes' vCPU
count 1 -> 36; sample CPU and memory usage every 500 ms; governor in
performance mode.  Compare HORSE against the vanilla pause/resume.

Paper anchors:

* memory: +~528 KB for the 10 paused sandboxes' P2SM structures
  (~0.01 % of the ~5 GB used by the running sandboxes — the paper
  prints "0.11 %", which does not match its own 528 KB / 5 GB figures;
  we report the arithmetic-consistent value);
* CPU: pause-phase increase <= 0.3 %, resume-phase increase <= 2.7 %,
  both "less than 1 %" in the headline claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.experiments.runner import VCPU_SWEEP, fresh_platform
from repro.hypervisor.dvfs import GovernorMode
from repro.hypervisor.sandbox import Sandbox
from repro.metrics.usage import CpuWorkTracker, UsageSampler
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import MICROSECOND, MILLISECOND, SECOND, milliseconds, seconds
from repro.workloads import SysbenchCpuWorkload, ull_workloads

#: §5.2 constants from the paper.
BACKGROUND_SANDBOXES = 10
ULL_SANDBOXES = 10
PAUSE_HOLD_NS = seconds(5)
SAMPLE_PERIOD_NS = milliseconds(500)
SANDBOX_MEMORY_MB = 512
#: Creation spacing for the "successively create" step.
CREATE_SPACING_NS = milliseconds(200)


@dataclass
class PhaseUsage:
    """CPU work charged in one lifecycle phase (core-ns totals)."""

    pause_work_ns: float = 0.0
    resume_work_ns: float = 0.0
    refresh_work_ns: float = 0.0
    workload_work_ns: float = 0.0

    @property
    def machinery_ns(self) -> float:
        """Pause/resume machinery only (the overhead under study)."""
        return self.pause_work_ns + self.resume_work_ns + self.refresh_work_ns


@dataclass
class OverheadRunResult:
    """One mode's run at one vCPU count."""

    mode: str
    ull_vcpus: int
    usage: PhaseUsage
    extra_memory_bytes: int
    running_memory_bytes: int
    samples: int

    def cpu_overhead_pct(self, phase_work_ns: float, window_ns: int, cores: int) -> float:
        """Work expressed as % of one sampling window's core capacity."""
        return 100.0 * phase_work_ns / (window_ns * cores)

    @property
    def memory_overhead_pct(self) -> float:
        if self.running_memory_bytes == 0:
            return 0.0
        return 100.0 * self.extra_memory_bytes / self.running_memory_bytes


@dataclass
class OverheadResult:
    """HORSE vs vanilla across the vCPU sweep."""

    #: (mode, vcpus) -> run result
    runs: Dict[tuple, OverheadRunResult] = field(default_factory=dict)
    cores: int = 72

    def run(self, mode: str, vcpus: int) -> OverheadRunResult:
        return self.runs[(mode, vcpus)]

    def vcpu_counts(self) -> List[int]:
        return sorted({key[1] for key in self.runs})

    def memory_delta_bytes(self, vcpus: int) -> int:
        return (
            self.run("horse", vcpus).extra_memory_bytes
            - self.run("vanilla", vcpus).extra_memory_bytes
        )

    def pause_cpu_delta_pct(self, vcpus: int) -> float:
        """HORSE-minus-vanilla pause-phase CPU work, as % of one
        sampling window across all cores."""
        horse = self.run("horse", vcpus)
        vanil = self.run("vanilla", vcpus)
        delta = horse.usage.pause_work_ns - vanil.usage.pause_work_ns
        return 100.0 * delta / (SAMPLE_PERIOD_NS * self.cores)

    def resume_cpu_delta_pct(self, vcpus: int) -> float:
        horse = self.run("horse", vcpus)
        vanil = self.run("vanilla", vcpus)
        delta = (
            horse.usage.resume_work_ns
            + horse.usage.refresh_work_ns
            - vanil.usage.resume_work_ns
        )
        return 100.0 * delta / (SAMPLE_PERIOD_NS * self.cores)


def _run_one(
    mode: str, ull_vcpus: int, seed: int, platform: str = "firecracker"
) -> OverheadRunResult:
    """One full §5.2 timeline in one mode ('vanilla' or 'horse')."""
    engine = Engine()
    virt = fresh_platform(platform, governor_mode=GovernorMode.PERFORMANCE)
    rngs = RngRegistry(seed)
    tracker = CpuWorkTracker()
    costs = virt.costs

    # -- background: 10 busy 1-vCPU sysbench sandboxes ------------------
    sysbench = SysbenchCpuWorkload()
    for _ in range(BACKGROUND_SANDBOXES):
        sandbox = Sandbox(vcpus=1, memory_mb=SANDBOX_MEMORY_MB)
        virt.host.allocate_memory(SANDBOX_MEMORY_MB)
        virt.vanilla.place_initial(sandbox, engine.now)

    horse: Optional[HorsePauseResume] = None
    if mode == "horse":
        horse = HorsePauseResume(
            virt.host, virt.policy, virt.costs, config=HorseConfig.full()
        )
    elif mode != "vanilla":
        raise ValueError(f"unknown mode {mode!r}")

    sampler = UsageSampler(engine, SAMPLE_PERIOD_NS)
    sampler.add_gauge("machinery_work_ns", tracker.gauge("machinery"))
    sampler.add_gauge("workload_work_ns", tracker.gauge("workload"))
    sampler.start()

    usage = PhaseUsage()
    extra_memory_peak = 0
    workloads = ull_workloads()
    paused_boxes: List[Sandbox] = []

    def create_and_pause(index: int) -> None:
        nonlocal extra_memory_peak
        sandbox = Sandbox(
            vcpus=ull_vcpus, memory_mb=SANDBOX_MEMORY_MB, is_ull=True
        )
        virt.host.allocate_memory(SANDBOX_MEMORY_MB)
        virt.vanilla.place_initial(sandbox, engine.now)
        if horse is not None:
            pause = horse.pause(sandbox, engine.now)
        else:
            pause = virt.vanilla.pause(sandbox, engine.now)
        usage.pause_work_ns += pause.duration_ns
        tracker.charge("machinery", pause.duration_ns)
        paused_boxes.append(sandbox)
        if horse is not None:
            extra_memory_peak = max(
                extra_memory_peak,
                sum(
                    costs.horse_memory_bytes(b.vcpu_count)
                    for b in paused_boxes
                    if b.assigned_ull_runqueue is not None
                ),
            )
        engine.schedule_after(PAUSE_HOLD_NS, lambda: resume(sandbox, index))

    def resume(sandbox: Sandbox, index: int) -> None:
        refresh_before = (
            horse.ull.refresh_entries_touched if horse is not None else 0
        )
        if horse is not None:
            result = horse.resume(sandbox, engine.now)
            # Merge threads run in parallel: wall time is O(1) but CPU
            # *work* is one dispatch + two writes per thread.
            thread_work = result.merge_threads * (
                costs.p2sm_thread_dispatch_ns + 2 * costs.p2sm_pointer_write_ns
            )
            usage.resume_work_ns += result.total_ns + thread_work
            tracker.charge("machinery", result.total_ns + thread_work)
            refresh_entries = horse.ull.refresh_entries_touched - refresh_before
            refresh_ns = refresh_entries * costs.p2sm_refresh_entry_ns
            usage.refresh_work_ns += refresh_ns
            tracker.charge("machinery", refresh_ns)
        else:
            result = virt.vanilla.resume(sandbox, engine.now)
            usage.resume_work_ns += result.total_ns
            tracker.charge("machinery", result.total_ns)
        # The uLL workload runs right after resume on every vCPU.
        workload = workloads[index % len(workloads)]
        exec_ns = workload.sample_duration_ns(rngs.stream(f"wl-{index}"))
        work = exec_ns * sandbox.vcpu_count
        usage.workload_work_ns += work
        tracker.charge("workload", work)

    for index in range(ULL_SANDBOXES):
        engine.schedule_at(
            index * CREATE_SPACING_NS,
            lambda index=index: create_and_pause(index),
        )

    horizon = ULL_SANDBOXES * CREATE_SPACING_NS + PAUSE_HOLD_NS + seconds(1)
    engine.run(until=horizon)
    sampler.stop()

    running_memory = BACKGROUND_SANDBOXES * SANDBOX_MEMORY_MB * 1024 * 1024
    return OverheadRunResult(
        mode=mode,
        ull_vcpus=ull_vcpus,
        usage=usage,
        extra_memory_bytes=extra_memory_peak,
        running_memory_bytes=running_memory,
        samples=len(sampler.samples),
    )


def run_overhead(
    vcpu_counts: Sequence[int] = VCPU_SWEEP,
    seed: int = 0,
    platform: str = "firecracker",
) -> OverheadResult:
    result = OverheadResult()
    for vcpus in vcpu_counts:
        for mode in ("vanilla", "horse"):
            result.runs[(mode, vcpus)] = _run_one(mode, vcpus, seed, platform)
    result.cores = fresh_platform(platform).host.spec.total_cores
    return result
