"""Chaos study: latency vs failure rate under injected infrastructure churn.

Drives one Poisson-ish request mix (a uLL firewall function plus a
CPU-heavy background function) through the resilient gateway over a
small cluster while the :class:`~repro.resilience.FailureInjector`
crashes nodes and corrupts resumes, and compares *resilience modes*:

* ``breaker``      — full stack: per-node circuit breakers, retries
  with jittered backoff, hedged uLL requests, degradation ladder;
* ``retries-only`` — same stack minus the breakers.  Placement keeps
  routing to sick hosts, so every request pays to rediscover them —
  the breaker's p99 win comes exactly from skipping that;
* ``vanilla``      — no HORSE: functions declassified to non-uLL, pools
  warmed through the vanilla pause path, no hedging.  The
  HORSE-vs-vanilla comparison under churn.

Everything is a pure function of ``(config, seed)``: two same-seed runs
produce identical ``ChaosResult``\\ s (the CLI determinism check diffs
the rendered output byte-for-byte).

Every run is audited: the gateway's ledger/breaker invariants and the
end-of-run "no lost invocations" oracle must come back clean, and any
violation is carried on the outcome for the caller (CLI exits non-zero).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faas.cluster import FaaSCluster
from repro.faas.function import FunctionSpec
from repro.metrics.stats import percentile
from repro.resilience import (
    BreakerConfig,
    FailureConfig,
    FailureInjector,
    HedgePolicy,
    RequestState,
    ResilienceConfig,
    ResilientGateway,
    default_dispatch_policy,
    make_dispatch_policy,
)
from repro.sim.rng import RngRegistry
from repro.sim.units import milliseconds, seconds, to_microseconds
from repro.workloads import FirewallWorkload, SysbenchCpuWorkload
from repro.workloads.base import WorkloadCategory

#: Resilience modes the study compares, in rendering order.
CHAOS_MODES: Tuple[str, ...] = ("breaker", "retries-only", "vanilla")

#: Experiment ids `repro chaos` accepts (mirrors repro.check.CHECKABLE).
CHAOSABLE: Tuple[str, ...] = ("cluster",)


@dataclass(frozen=True)
class ChaosConfig:
    """Shape of one chaos run (identical across the compared modes)."""

    hosts: int = 4
    failure_rate: float = 0.1
    requests: int = 1200
    #: mean request inter-arrival (exponential draws)
    mean_interarrival_ms: float = 5.0
    #: fraction of requests hitting the uLL function
    ull_fraction: float = 0.5
    warm_per_host: int = 3
    #: engine drain horizon after the last submission
    drain_s: float = 60.0
    #: mean host up-time = this / failure_rate (0.25 s at the default
    #: rate 0.1 gives a 2.5 s MTBF — a few crashes inside the ~2 s
    #: arrival window)
    crash_mtbf_base_s: float = 0.25
    seed: int = 0
    #: dispatch-policy spec; resolved at config construction so the
    #: rendered header and trace reflect the actual policy, env var
    #: included (same render iff same policy)
    dispatch: str = field(default_factory=default_dispatch_policy)

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ValueError(
                f"chaos needs >= 2 hosts (hedging/steering), got {self.hosts}"
            )
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.warm_per_host < 1:
            raise ValueError(
                f"warm_per_host must be >= 1, got {self.warm_per_host}"
            )
        make_dispatch_policy(self.dispatch)  # validate eagerly


@dataclass
class ModeOutcome:
    """One resilience mode's aggregate behaviour over a chaos run."""

    mode: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    retries: int = 0
    hedges: int = 0
    redundant_hedges: int = 0
    degradations: Dict[str, int] = field(default_factory=dict)
    breaker_opens: int = 0
    crashes: int = 0
    recoveries: int = 0
    fired: Dict[str, int] = field(default_factory=dict)
    p50_us: float = 0.0
    p95_us: float = 0.0
    p99_us: float = 0.0
    #: latency over the firewall (uLL-class) requests only — the numbers
    #: HORSE exists for, and where the breaker-vs-retries gap shows
    ull_p50_us: float = 0.0
    ull_p99_us: float = 0.0
    violations: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return self.completed + self.shed + self.failed

    @property
    def ok(self) -> bool:
        """Soundness: all requests terminal, all invariants held."""
        return self.resolved == self.submitted and not self.violations


@dataclass
class ChaosResult:
    config: ChaosConfig
    outcomes: Dict[str, ModeOutcome] = field(default_factory=dict)

    def outcome(self, mode: str) -> ModeOutcome:
        return self.outcomes[mode]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes.values())


#: Breaker tuning for the study: trip fast (2 consecutive failures) and
#: back off for a whole second — on a flaky host faulting more than half
#: its resumes, a high open duty-cycle is what moves the p99.
_STUDY_BREAKER = BreakerConfig(failure_threshold=2, open_ns=seconds(1))


def _mode_resilience(mode: str, config: ChaosConfig) -> ResilienceConfig:
    # Recoveries restock to the full provisioning level; a half-warmed
    # host would turn every breaker exclusion elsewhere into cold starts.
    rewarm = config.warm_per_host
    dispatch = config.dispatch
    if mode == "breaker":
        return ResilienceConfig(
            breaker=_STUDY_BREAKER, rewarm_per_host=rewarm, dispatch=dispatch
        )
    if mode == "retries-only":
        return ResilienceConfig(
            breaker=None, rewarm_per_host=rewarm, dispatch=dispatch
        )
    if mode == "vanilla":
        # No uLL class in a vanilla deployment, hence no hedging either.
        return ResilienceConfig(
            breaker=_STUDY_BREAKER,
            hedge=HedgePolicy.disabled(),
            rewarm_per_host=rewarm,
            dispatch=dispatch,
        )
    raise ValueError(f"unknown chaos mode {mode!r}; choose from {CHAOS_MODES}")


def _build_workloads(mode: str):
    """The uLL firewall + background thumbnail pair for one mode.

    The ``vanilla`` mode runs the *same* bodies but declassifies the
    firewall out of the uLL category: same work, no HORSE fast path —
    the apples-to-apples churn comparison.
    """
    firewall = FirewallWorkload()
    firewall.name = "firewall"
    if mode == "vanilla":
        firewall.category = WorkloadCategory.BACKGROUND
    background = SysbenchCpuWorkload()
    background.name = "background"
    return firewall, background


def run_chaos_mode(mode: str, config: ChaosConfig) -> ModeOutcome:
    """One mode, one seeded run, fully drained and audited."""
    resilience = _mode_resilience(mode, config)
    firewall, background = _build_workloads(mode)
    cluster = FaaSCluster(hosts=config.hosts, seed=config.seed)
    cluster.register(FunctionSpec("firewall", firewall, memory_mb=128))
    cluster.register(FunctionSpec("background", background, memory_mb=256))
    use_horse = None if mode != "vanilla" else False
    cluster.provision_warm(
        "firewall", per_host=config.warm_per_host, use_horse=use_horse
    )
    cluster.provision_warm("background", per_host=config.warm_per_host)

    gateway = ResilientGateway(cluster, resilience, seed=config.seed)
    # Faults concentrate on the flaky hosts (calm hosts are nearly
    # clean): that asymmetry is what per-node breakers exploit, and what
    # separates the breaker and retries-only columns at the uLL p99.
    injector = FailureInjector(
        cluster,
        FailureConfig(
            failure_rate=config.failure_rate,
            crash_mtbf_base_s=config.crash_mtbf_base_s,
            calm_factor=0.05,
        ),
        seed=config.seed,
    )
    gateway.attach(injector)

    # The arrival schedule comes from its own stream, so every mode sees
    # the identical workload and the identical failure schedule.
    arrivals = RngRegistry(config.seed).fork("chaos-arrivals").stream("times")
    mean_gap_ns = milliseconds(config.mean_interarrival_ms)
    t = 0
    last = 0
    for index in range(config.requests):
        t += max(1, round(arrivals.expovariate(1.0 / mean_gap_ns)))
        last = t
        ull = arrivals.random() < config.ull_fraction
        name = "firewall" if ull else "background"
        priority = 1 if ull else 0
        cluster.engine.schedule_at(
            t,
            lambda name=name, priority=priority: gateway.submit(
                name, priority=priority
            ),
            label=f"chaos-submit:{index}",
            transient=True,
        )
    injector.schedule_crashes(until_ns=last)
    cluster.engine.run(until=last + seconds(config.drain_s))

    completed = gateway.by_state(RequestState.COMPLETED)
    latencies = sorted(
        to_microseconds(request.latency_ns) for request in completed
    )
    ull_latencies = sorted(
        to_microseconds(request.latency_ns)
        for request in completed
        if request.function == "firewall"
    )
    violations = gateway.invariant_violations() + gateway.unresolved_violations()
    return ModeOutcome(
        mode=mode,
        submitted=len(gateway.requests),
        completed=len(latencies),
        shed=len(gateway.by_state(RequestState.SHED)),
        failed=len(gateway.by_state(RequestState.FAILED)),
        retries=sum(request.retries for request in gateway.requests),
        hedges=sum(request.hedges_used for request in gateway.requests),
        redundant_hedges=sum(
            request.redundant_hedges for request in gateway.requests
        ),
        degradations=dict(sorted(gateway.degradations.transitions.items())),
        breaker_opens=sum(
            breaker.open_count for breaker in gateway.breakers.values()
        ),
        crashes=cluster.stats.crashes,
        recoveries=cluster.stats.recoveries,
        fired=dict(injector.fired),
        p50_us=percentile(latencies, 50.0) if latencies else 0.0,
        p95_us=percentile(latencies, 95.0) if latencies else 0.0,
        p99_us=percentile(latencies, 99.0) if latencies else 0.0,
        ull_p50_us=percentile(ull_latencies, 50.0) if ull_latencies else 0.0,
        ull_p99_us=percentile(ull_latencies, 99.0) if ull_latencies else 0.0,
        violations=violations,
    )


def run_chaos(
    config: Optional[ChaosConfig] = None,
    modes: Tuple[str, ...] = CHAOS_MODES,
) -> ChaosResult:
    """The full study: every mode over the identical seeded schedule."""
    config = config or ChaosConfig()
    result = ChaosResult(config=config)
    for mode in modes:
        result.outcomes[mode] = run_chaos_mode(mode, config)
    return result


def render_chaos(result: ChaosResult) -> str:
    """Fixed-width summary table (byte-stable for the determinism check)."""
    config = result.config
    # The dispatch suffix only appears off the default so the header —
    # and with it every pre-policy golden — is byte-stable.
    dispatch = (
        f" dispatch={config.dispatch}"
        if config.dispatch != "push-least-loaded"
        else ""
    )
    lines = [
        f"chaos: hosts={config.hosts} requests={config.requests} "
        f"failure_rate={config.failure_rate:g} seed={config.seed}"
        f"{dispatch}",
        "",
        f"{'mode':14s} {'done':>5s} {'shed':>5s} {'fail':>5s} {'retry':>6s} "
        f"{'hedge':>6s} {'degr':>5s} {'opens':>6s} "
        f"{'p99 us':>10s} {'uLL p50 us':>11s} {'uLL p99 us':>11s}",
    ]
    for mode in result.outcomes:
        outcome = result.outcomes[mode]
        lines.append(
            f"{outcome.mode:14s} {outcome.completed:5d} {outcome.shed:5d} "
            f"{outcome.failed:5d} {outcome.retries:6d} {outcome.hedges:6d} "
            f"{sum(outcome.degradations.values()):5d} {outcome.breaker_opens:6d} "
            f"{outcome.p99_us:10.1f} {outcome.ull_p50_us:11.2f} "
            f"{outcome.ull_p99_us:11.2f}"
        )
    lines.append("")
    for mode in result.outcomes:
        outcome = result.outcomes[mode]
        degraded = (
            ", ".join(f"{k}:{v}" for k, v in outcome.degradations.items())
            or "none"
        )
        fired = ", ".join(f"{k}:{v}" for k, v in sorted(outcome.fired.items()))
        lines.append(
            f"{outcome.mode}: crashes={outcome.crashes} "
            f"recoveries={outcome.recoveries} degradations=[{degraded}] "
            f"faults=[{fired}]"
        )
        if not outcome.ok:
            lines.append(
                f"{outcome.mode}: UNSOUND — "
                f"{outcome.submitted - outcome.resolved} unresolved, "
                f"{len(outcome.violations)} violations"
            )
            lines.extend(f"  {message}" for message in outcome.violations[:10])
    return "\n".join(lines)
