"""Ablation studies for HORSE's design choices (DESIGN.md §5).

Four ablations beyond the paper's headline experiments:

* :func:`ablate_ull_runqueue_count` — §4.1.3 says more ull_runqueues
  help under high trigger frequency; quantify the effect on pause-time
  balancing, precompute-refresh work and resume latency.
* :func:`ablate_precompute_churn` — P2SM's precomputed structures are
  rebuilt "each time ull_runqueue is updated"; measure how the refresh
  work scales with queue churn and with the number of tied sandboxes.
* :func:`ablate_platform` — run the Figure-3 comparison on both
  hypervisor models (Firecracker/CFS vs Xen/credit2): HORSE's win must
  be scheduler-agnostic.
* :func:`ablate_mechanism_split` — per-step attribution of the HORSE
  win: how much of the saved time comes from the merge (step 4), the
  load update (step 5), and the trimmed command path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.experiments.figure3 import run_figure3
from repro.experiments.runner import fresh_platform
from repro.hypervisor.pause_resume import (
    STEP_FINALIZE,
    STEP_LOAD,
    STEP_LOCK,
    STEP_MERGE,
    STEP_PARSE,
    STEP_SANITY,
)
from repro.hypervisor.sandbox import Sandbox
from repro.hypervisor.vcpu import Vcpu


# ----------------------------------------------------------------------
# Ablation 1: number of reserved ull_runqueues
# ----------------------------------------------------------------------
@dataclass
class UllCountPoint:
    reserved_queues: int
    max_assignment_imbalance: int
    refresh_entries_per_resume: float
    mean_resume_ns: float


def ablate_ull_runqueue_count(
    queue_counts: Sequence[int] = (1, 2, 4, 8),
    sandboxes: int = 16,
    vcpus: int = 8,
) -> List[UllCountPoint]:
    """Pause a burst of uLL sandboxes per queue count, then resume all."""
    points: List[UllCountPoint] = []
    for reserved in queue_counts:
        virt = fresh_platform("firecracker", reserved_ull_cores=reserved)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        boxes = []
        for _ in range(sandboxes):
            sandbox = Sandbox(vcpus=vcpus, memory_mb=256, is_ull=True)
            virt.vanilla.place_initial(sandbox, 0)
            horse.pause(sandbox, 0)
            boxes.append(sandbox)
        counts = horse.ull.assignment_counts().values()
        imbalance = max(counts) - min(counts)
        refresh_before = horse.ull.refresh_entries_touched
        totals = [horse.resume(sandbox, 0).total_ns for sandbox in boxes]
        refresh_work = horse.ull.refresh_entries_touched - refresh_before
        points.append(
            UllCountPoint(
                reserved_queues=reserved,
                max_assignment_imbalance=imbalance,
                refresh_entries_per_resume=refresh_work / sandboxes,
                mean_resume_ns=sum(totals) / len(totals),
            )
        )
    return points


# ----------------------------------------------------------------------
# Ablation 2: precompute maintenance vs queue churn
# ----------------------------------------------------------------------
@dataclass
class ChurnPoint:
    churn_events: int
    tied_sandboxes: int
    refresh_operations: int
    refresh_entries: int
    entries_per_event: float


def ablate_precompute_churn(
    churn_levels: Sequence[int] = (0, 10, 50, 200),
    tied_sandboxes: int = 5,
    vcpus: int = 4,
) -> List[ChurnPoint]:
    """Mutate the ull_runqueue N times and count the refresh work the
    tied (paused) sandboxes' P2SM state incurs."""
    points: List[ChurnPoint] = []
    for churn in churn_levels:
        virt = fresh_platform("firecracker", reserved_ull_cores=1)
        horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
        for _ in range(tied_sandboxes):
            sandbox = Sandbox(vcpus=vcpus, memory_mb=256, is_ull=True)
            virt.vanilla.place_initial(sandbox, 0)
            horse.pause(sandbox, 0)
        queue = horse.ull.queue(horse.ull.queue_ids[0])
        ops_before = horse.ull.refresh_operations
        entries_before = horse.ull.refresh_entries_touched
        for index in range(churn):
            # One independent vCPU lands on / leaves the queue.
            visitor = Vcpu(index=0, sandbox_id=f"churn-{index}")
            queue.entities.insert_sorted(visitor)
            horse.ull.on_queue_updated(queue.runqueue_id)
            queue.entities.remove(visitor)
            horse.ull.on_queue_updated(queue.runqueue_id)
        ops = horse.ull.refresh_operations - ops_before
        entries = horse.ull.refresh_entries_touched - entries_before
        points.append(
            ChurnPoint(
                churn_events=2 * churn,
                tied_sandboxes=tied_sandboxes,
                refresh_operations=ops,
                refresh_entries=entries,
                entries_per_event=entries / (2 * churn) if churn else 0.0,
            )
        )
    return points


# ----------------------------------------------------------------------
# Ablation 3: platform (scheduler) sensitivity
# ----------------------------------------------------------------------
@dataclass
class PlatformComparison:
    platform: str
    vanil_ns: float
    horse_ns: float

    @property
    def speedup(self) -> float:
        return self.vanil_ns / self.horse_ns


def ablate_platform(
    vcpus: int = 36, repetitions: int = 5
) -> List[PlatformComparison]:
    """Figure 3's endpoints on both hypervisor models."""
    comparisons: List[PlatformComparison] = []
    for platform in ("firecracker", "xen"):
        result = run_figure3(
            vcpu_counts=(vcpus,), repetitions=repetitions, platform=platform,
            setups={"vanil": None, "horse": HorseConfig.full()},
        )
        comparisons.append(
            PlatformComparison(
                platform=platform,
                vanil_ns=result.mean_ns("vanil", vcpus),
                horse_ns=result.mean_ns("horse", vcpus),
            )
        )
    return comparisons


# ----------------------------------------------------------------------
# Ablation 4: where does the win come from?
# ----------------------------------------------------------------------
@dataclass
class MechanismSplit:
    vcpus: int
    #: step -> (vanilla ns, horse ns)
    steps: Dict[str, tuple] = field(default_factory=dict)

    def saving_ns(self, step: str) -> float:
        vanil, horse = self.steps[step]
        return vanil - horse

    def total_saving_ns(self) -> float:
        return sum(self.saving_ns(step) for step in self.steps)

    def share_of_saving(self, step: str) -> float:
        total = self.total_saving_ns()
        return self.saving_ns(step) / total if total else 0.0


def ablate_mechanism_split(vcpus: int = 36) -> MechanismSplit:
    """Per-step vanilla-vs-HORSE attribution of the saved time."""
    virt_v = fresh_platform("firecracker")
    sandbox_v = Sandbox(vcpus=vcpus, memory_mb=256)
    virt_v.vanilla.place_initial(sandbox_v, 0)
    virt_v.vanilla.pause(sandbox_v, 0)
    vanilla = virt_v.vanilla.resume(sandbox_v, 0).breakdown.phases

    virt_h = fresh_platform("firecracker")
    horse = HorsePauseResume(virt_h.host, virt_h.policy, virt_h.costs)
    sandbox_h = Sandbox(vcpus=vcpus, memory_mb=256, is_ull=True)
    virt_h.vanilla.place_initial(sandbox_h, 0)
    horse.pause(sandbox_h, 0)
    horse_steps = horse.resume(sandbox_h, 0).breakdown.phases

    split = MechanismSplit(vcpus=vcpus)
    for step in (STEP_PARSE, STEP_LOCK, STEP_SANITY, STEP_MERGE, STEP_LOAD,
                 STEP_FINALIZE):
        split.steps[step] = (
            float(vanilla.get(step, 0)),
            float(horse_steps.get(step, 0)),
        )
    return split
