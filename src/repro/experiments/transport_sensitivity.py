"""Transport-sensitivity study (extension of the paper's §2 premise).

For each trigger transport (local / nanoPU-class / kernel-bypass RPC /
kernel TCP) and each start strategy (warm, HORSE), measure the share of
the Category-3 pipeline (trigger delivery + initialization + execution)
spent *outside* function execution.  The study shows the regime
boundary the paper asserts: HORSE only matters once the trigger path is
in the ns-to-low-us range — behind a ~30 us TCP RPC, the 1 us vanilla
resume is already noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import fresh_platform
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.platform import FaaSPlatform
from repro.faas.transport import ALL_TRANSPORTS, TransportModel
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import seconds
from repro.workloads import ArrayFilterWorkload


@dataclass
class TransportCell:
    transport: str
    scenario: StartType
    mean_overhead_pct: float       # (transport + init) / pipeline
    mean_transport_ns: float
    mean_init_ns: float


@dataclass
class TransportSensitivityResult:
    cells: Dict[tuple, TransportCell] = field(default_factory=dict)

    def cell(self, transport: str, scenario: StartType) -> TransportCell:
        return self.cells[(transport, scenario)]

    def transports(self) -> List[str]:
        return sorted({key[0] for key in self.cells})

    def horse_benefit_pct(self, transport: str) -> float:
        """Overhead-share points HORSE saves vs warm at this transport."""
        warm = self.cell(transport, StartType.WARM).mean_overhead_pct
        horse = self.cell(transport, StartType.HORSE).mean_overhead_pct
        return warm - horse


def run_transport_sensitivity(
    invocations: int = 100,
    seed: int = 0,
    transports: Sequence[TransportModel] = ALL_TRANSPORTS,
) -> TransportSensitivityResult:
    result = TransportSensitivityResult()
    workload_name = "array-filter"
    for transport in transports:
        for scenario in (StartType.WARM, StartType.HORSE):
            rngs = RngRegistry(seed).fork(
                f"{transport.kind.value}-{scenario.value}"
            )
            faas = FaaSPlatform(
                engine=Engine(), virt=fresh_platform("firecracker"), rngs=rngs
            )
            faas.register(FunctionSpec(workload_name, ArrayFilterWorkload()))
            faas.provision_warm(
                workload_name, count=1, use_horse=scenario is StartType.HORSE
            )
            transport_rng = rngs.stream("transport")
            overhead_pcts: List[float] = []
            transport_ns_sum = 0
            init_ns_sum = 0
            for _ in range(invocations):
                delivery_ns = transport.sample_ns(transport_rng)
                invocation = faas.trigger(workload_name, scenario)
                faas.engine.run(until=faas.engine.now + seconds(1))
                pipeline_ns = delivery_ns + invocation.total_ns
                overhead_ns = delivery_ns + invocation.initialization_ns
                overhead_pcts.append(100.0 * overhead_ns / pipeline_ns)
                transport_ns_sum += delivery_ns
                init_ns_sum += invocation.initialization_ns
            result.cells[(transport.kind.value, scenario)] = TransportCell(
                transport=transport.kind.value,
                scenario=scenario,
                mean_overhead_pct=sum(overhead_pcts) / len(overhead_pcts),
                mean_transport_ns=transport_ns_sum / invocations,
                mean_init_ns=init_ns_sum / invocations,
            )
    return result
