"""Unified experiment registry: every paper artifact behind one API.

Each experiment the reproduction can run — a table, a figure, a study —
is described by one :class:`ExperimentSpec`: an id, a human title, a
fast-mode runtime estimate, and a runner that maps an
:class:`ExperimentConfig` (fast/full, seed, platform) to the
experiment's native result object.  ``spec.run(config)`` wraps that
native result in an :class:`ExperimentResult`, which exposes the common
protocol every consumer builds on:

* ``summary()`` — the rendered fixed-width table/series (what the CLI
  prints; byte-identical to the pre-registry output for the original
  experiment ids);
* ``rows()``    — the result flattened to a list of scalar dicts, for
  programmatic consumers and JSON export;
* ``to_json()`` — ``{"experiment", "title", "rows"}`` as a JSON string.

The CLI's ``experiment``/``list``/``trace`` commands and the report
generator drive off :func:`all_specs` — there is no separately
maintained id→function table.  The original ``run_*`` entry points keep
their signatures and remain the primitive layer; the registry is a
veneer over them, so existing callers and tests are untouched.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

_Scalar = (int, float, str, bool)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment runner.

    ``fast`` selects the reduced parameter set (fewer repetitions,
    sparser sweeps) used by tests and smoke runs; ``full`` runs the
    paper-fidelity parameters.  ``platform`` selects the hypervisor
    model where the experiment supports it; runners that model neither
    hypervisor simply ignore it.
    """

    fast: bool = True
    seed: int = 0
    platform: str = "firecracker"
    #: worker-process count for experiments with a sharded runner
    #: (DESIGN.md §12).  Purely an execution knob: results are
    #: byte-identical for any value; runners without a sharded path
    #: ignore it.
    shards: int = 1

    @property
    def repetitions(self) -> int:
        return 3 if self.fast else 10

    @property
    def vcpu_sweep(self) -> tuple:
        return (1, 8, 36) if self.fast else (1, 2, 4, 8, 16, 24, 36)


class ExperimentResult:
    """Uniform wrapper over an experiment's native result object."""

    def __init__(self, spec: "ExperimentSpec", raw: Any) -> None:
        self.spec = spec
        self.raw = raw

    def rows(self) -> List[Dict[str, Any]]:
        """The result as a flat list of scalar dicts."""
        return self.spec.rows_fn(self.raw)

    def summary(self) -> str:
        """The rendered human-readable table/series."""
        return self.spec.renderer(self.raw)

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment": self.spec.id,
                "title": self.spec.title,
                "rows": self.rows(),
            },
            indent=2,
            sort_keys=True,
        )

    def __repr__(self) -> str:
        return f"ExperimentResult({self.spec.id!r}, {len(self.rows())} rows)"


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable paper artifact.

    ``runner`` maps a config to the experiment's native result;
    ``renderer`` turns that result into the CLI's text output, and
    ``rows_fn`` flattens it for JSON export.  ``fast_estimate_s`` is the
    rough wall-clock of a fast-mode run (shown by ``repro list``).
    """

    id: str
    title: str
    fast_estimate_s: float
    runner: Callable[[ExperimentConfig], Any]
    renderer: Callable[[Any], str]
    rows_fn: Callable[[Any], List[Dict[str, Any]]]

    def run(self, config: Optional[ExperimentConfig] = None) -> ExperimentResult:
        return ExperimentResult(self, self.runner(config or ExperimentConfig()))


_REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    if spec.id in _REGISTRY:
        raise ValueError(f"experiment id {spec.id!r} registered twice")
    _REGISTRY[spec.id] = spec
    return spec


def get(experiment_id: str) -> ExperimentSpec:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(experiment_ids())}"
        ) from None


def experiment_ids() -> List[str]:
    return sorted(_REGISTRY)


def all_specs() -> List[ExperimentSpec]:
    return [_REGISTRY[experiment_id] for experiment_id in experiment_ids()]


# ----------------------------------------------------------------------
# Row flattening helpers
# ----------------------------------------------------------------------
def _scalarize(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, _Scalar):
        return value
    return None


def _object_row(obj: Any, extra: Sequence[str] = ()) -> Dict[str, Any]:
    """Scalar fields of a dataclass, plus named computed properties."""
    row: Dict[str, Any] = {}
    if is_dataclass(obj):
        for spec_field in fields(obj):
            value = _scalarize(getattr(obj, spec_field.name))
            if value is not None:
                row[spec_field.name] = value
    for name in extra:
        value = _scalarize(getattr(obj, name))
        if value is not None:
            row[name] = value
    return row


def _grid_rows(result: Any) -> List[Dict[str, Any]]:
    """Rows for a Table1-shaped grid of (category, scenario) cells."""
    rows = []
    for (category, scenario), cell in sorted(
        result.cells.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        rows.append(
            {
                "category": category,
                "scenario": scenario.value,
                "init_us_mean": cell.init_us.mean,
                "exec_us_mean": cell.exec_us.mean,
                "init_pct_mean": cell.init_pct.mean,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Runners — parameter choices identical to the pre-registry CLI.
# ----------------------------------------------------------------------
def _run_table1_grid(config: ExperimentConfig) -> Any:
    from repro.experiments.table1 import run_table1

    return run_table1(
        repetitions=config.repetitions, seed=config.seed, platform=config.platform
    )


def _render_table1(result: Any) -> str:
    from repro.analysis.tables import render_table1

    return render_table1(result)


def _render_figure1(result: Any) -> str:
    from repro.analysis.figures import render_figure1

    return render_figure1(result)


def _run_figure2(config: ExperimentConfig) -> Any:
    from repro.experiments.figure2 import run_figure2

    return run_figure2(
        vcpu_counts=config.vcpu_sweep,
        repetitions=config.repetitions,
        platform=config.platform,
    )


def _render_figure2(result: Any) -> str:
    from repro.analysis.figures import render_figure2

    return render_figure2(result)


def _figure2_rows(result: Any) -> List[Dict[str, Any]]:
    rows = []
    for point in result.points:
        row = {
            "vcpus": point.vcpus,
            "mean_total_ns": point.mean_total_ns,
            "hot_share": point.hot_share,
        }
        for step, mean_ns in sorted(point.mean_step_ns.items()):
            row[f"step_{step}_ns"] = mean_ns
        rows.append(row)
    return rows


def _run_figure3(config: ExperimentConfig) -> Any:
    from repro.experiments.figure3 import run_figure3

    return run_figure3(
        vcpu_counts=config.vcpu_sweep,
        repetitions=config.repetitions,
        platform=config.platform,
    )


def _render_figure3(result: Any) -> str:
    from repro.analysis.figures import render_figure3

    return render_figure3(result)


def _figure3_rows(result: Any) -> List[Dict[str, Any]]:
    rows = []
    for setup in sorted(result.series):
        for vcpus in result.vcpu_counts():
            rows.append(
                {
                    "setup": setup,
                    "vcpus": vcpus,
                    "mean_ns": result.mean_ns(setup, vcpus),
                }
            )
    return rows


def _run_figure4(config: ExperimentConfig) -> Any:
    from repro.experiments.figure4 import run_figure4

    return run_figure4(
        repetitions=config.repetitions, seed=config.seed, platform=config.platform
    )


def _render_figure4(result: Any) -> str:
    from repro.analysis.figures import render_figure4

    return render_figure4(result)


def _run_overhead(config: ExperimentConfig) -> Any:
    from repro.experiments.overhead import run_overhead

    return run_overhead(
        vcpu_counts=(1, 36) if config.fast else config.vcpu_sweep,
        seed=config.seed,
        platform=config.platform,
    )


def _render_overhead(result: Any) -> str:
    lines = []
    for vcpus in result.vcpu_counts():
        lines.append(
            f"uLL vCPUs={vcpus}: mem delta "
            f"{result.memory_delta_bytes(vcpus) / 1000:.1f} kB, "
            f"pause CPU {result.pause_cpu_delta_pct(vcpus):.6f} %, "
            f"resume CPU {result.resume_cpu_delta_pct(vcpus):.6f} %"
        )
    return "\n".join(lines)


def _overhead_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        {
            "vcpus": vcpus,
            "memory_delta_bytes": result.memory_delta_bytes(vcpus),
            "pause_cpu_delta_pct": result.pause_cpu_delta_pct(vcpus),
            "resume_cpu_delta_pct": result.resume_cpu_delta_pct(vcpus),
        }
        for vcpus in result.vcpu_counts()
    ]


def _run_colocation(config: ExperimentConfig) -> Any:
    from repro.experiments.colocation import run_colocation

    return run_colocation(
        vcpu_counts=(1, 36) if config.fast else (1, 8, 16, 36),
        seed=config.seed,
        platform=config.platform,
    )


def _render_colocation(result: Any) -> str:
    from repro.analysis.figures import render_colocation

    return render_colocation(result)


def _colocation_rows(result: Any) -> List[Dict[str, Any]]:
    rows = []
    for (mode, ull_vcpus), run in sorted(result.runs.items()):
        summary = run.summary()
        row = _object_row(summary)
        row.update({"mode": mode, "ull_vcpus": ull_vcpus})
        rows.append(row)
    return rows


def _run_chaos(config: ExperimentConfig) -> Any:
    from repro.experiments.chaos import ChaosConfig, run_chaos

    chaos_config = (
        ChaosConfig(hosts=2, requests=200, seed=config.seed)
        if config.fast
        else ChaosConfig(seed=config.seed)
    )
    return run_chaos(chaos_config)


def _render_chaos(result: Any) -> str:
    from repro.experiments.chaos import render_chaos

    return render_chaos(result)


def _chaos_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        _object_row(result.outcomes[mode], extra=("p99_us", "ull_p50_us", "ull_p99_us"))
        for mode in result.outcomes
    ]


def _run_dispatch_zoo(config: ExperimentConfig) -> Any:
    from repro.experiments.dispatch_zoo import (
        DispatchZooConfig,
        run_dispatch_zoo,
    )

    zoo_config = (
        DispatchZooConfig(
            hosts=2,
            requests=120,
            failure_rates=(0.1,),
            mixes=("balanced", "accel"),
            seed=config.seed,
        )
        if config.fast
        else DispatchZooConfig(seed=config.seed)
    )
    return run_dispatch_zoo(zoo_config)


def _render_dispatch_zoo(result: Any) -> str:
    from repro.experiments.dispatch_zoo import render_dispatch_zoo

    return render_dispatch_zoo(result)


def _dispatch_zoo_rows(result: Any) -> List[Dict[str, Any]]:
    from repro.experiments.dispatch_zoo import dispatch_zoo_rows

    return dispatch_zoo_rows(result)


def _run_cluster_sharded(config: ExperimentConfig) -> Any:
    from repro.experiments.sharded_chaos import (
        ShardedChaosConfig,
        run_sharded_chaos,
    )

    sharded_config = (
        ShardedChaosConfig(groups=4, hosts=2, requests=240, seed=config.seed)
        if config.fast
        else ShardedChaosConfig(seed=config.seed)
    )
    return run_sharded_chaos(sharded_config, shards=config.shards)


def _render_cluster_sharded(result: Any) -> str:
    from repro.experiments.sharded_chaos import render_sharded_chaos

    return render_sharded_chaos(result)


def _run_cluster_recovery(config: ExperimentConfig) -> Any:
    from repro.experiments.cluster_recovery import (
        ClusterRecoveryConfig,
        run_recovery,
    )

    recovery_config = (
        ClusterRecoveryConfig(groups=2, requests=200, seed=config.seed)
        if config.fast
        else ClusterRecoveryConfig(seed=config.seed)
    )
    return run_recovery(recovery_config, shards=config.shards)


def _render_cluster_recovery(result: Any) -> str:
    from repro.experiments.cluster_recovery import render_recovery

    return render_recovery(result)


def _recovery_rows(result: Any) -> List[Dict[str, Any]]:
    from repro.metrics.stats import percentile

    rows = []
    for group in sorted(result.cells):
        cell = result.cells[group]
        rows.append(
            {
                "group": cell.group,
                "submitted": cell.submitted,
                "completed": cell.completed,
                "shed": cell.shed,
                "failed": cell.failed,
                "gw_crashes": cell.gw_crashes,
                "gw_recoveries": cell.gw_recoveries,
                "redispatched": cell.redispatched,
                "fenced": cell.fenced,
                "parked": cell.parked,
                "p99_us": (
                    percentile(cell.latencies_us, 99.0)
                    if cell.latencies_us
                    else 0.0
                ),
                "recovery_p99_us": (
                    percentile(cell.recovery_latencies_us, 99.0)
                    if cell.recovery_latencies_us
                    else 0.0
                ),
                "violations": len(cell.violations),
                "oracle_ok": not result.oracle_mismatches,
            }
        )
    return rows


def _run_cluster_study(config: ExperimentConfig) -> Any:
    from repro.experiments.cluster_study import run_cluster_study

    if config.fast:
        return run_cluster_study(
            hosts=2, functions=3, duration_s=10.0, seed=config.seed
        )
    return run_cluster_study(seed=config.seed)


def _render_cluster_study(result: Any) -> str:
    lines = [
        f"{'policy':14s} {'triggers':>8s} {'cold':>6s} {'cold %':>7s} "
        f"{'balance cv':>10s} {'init us':>9s}"
    ]
    for policy in result.policies():
        outcome = result.outcome(policy)
        lines.append(
            f"{outcome.policy:14s} {outcome.triggers:8d} "
            f"{outcome.cold_fallbacks:6d} {100 * outcome.cold_rate:6.2f}% "
            f"{outcome.balance_cv:10.3f} {outcome.mean_init_us:9.2f}"
        )
    return "\n".join(lines)


def _cluster_study_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        _object_row(result.outcome(policy), extra=("cold_rate",))
        for policy in result.policies()
    ]


def _run_pool_study(config: ExperimentConfig) -> Any:
    from repro.experiments.pool_study import run_pool_study

    if config.fast:
        return run_pool_study(functions=4, duration_s=30.0, seed=config.seed)
    return run_pool_study(seed=config.seed)


def _render_pool_study(result: Any) -> str:
    lines = [
        f"{'policy':14s} {'triggers':>8s} {'hits':>6s} {'hit %':>7s} "
        f"{'cold':>6s} {'evict':>6s} {'peak':>5s} {'init us':>9s}"
    ]
    for name in result.policy_names():
        outcome = result.outcome(name)
        lines.append(
            f"{outcome.policy_name:14s} {outcome.triggers:8d} "
            f"{outcome.warm_hits:6d} {100 * outcome.hit_rate:6.2f}% "
            f"{outcome.cold_starts:6d} {outcome.evictions:6d} "
            f"{outcome.peak_pooled:5d} {outcome.mean_init_us:9.2f}"
        )
    return "\n".join(lines)


def _pool_study_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        _object_row(result.outcome(name), extra=("hit_rate",))
        for name in result.policy_names()
    ]


def _run_slo(config: ExperimentConfig) -> Any:
    from repro.experiments.slo import run_slo

    return run_slo(
        invocations=50 if config.fast else 200,
        seed=config.seed,
        platform=config.platform,
    )


def _render_slo(result: Any) -> str:
    lines = [f"{'category':16s} {'scenario':10s} {'budget us':>10s} {'attained':>9s}"]
    for (category, scenario), cell in sorted(
        result.cells.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        lines.append(
            f"{category:16s} {scenario.value:10s} "
            f"{cell.budget_ns / 1000:10.1f} "
            f"{100 * cell.attainment:8.2f}%"
        )
    return "\n".join(lines)


def _slo_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        _object_row(cell, extra=("attainment",))
        for _key, cell in sorted(
            result.cells.items(), key=lambda item: (item[0][0], item[0][1].value)
        )
    ]


def _run_transport(config: ExperimentConfig) -> Any:
    from repro.experiments.transport_sensitivity import run_transport_sensitivity

    return run_transport_sensitivity(
        invocations=30 if config.fast else 100, seed=config.seed
    )


def _render_transport(result: Any) -> str:
    lines = [
        f"{'transport':12s} {'scenario':10s} {'overhead %':>10s} "
        f"{'transport ns':>13s} {'init ns':>10s}"
    ]
    for (transport, scenario), cell in sorted(
        result.cells.items(), key=lambda item: (item[0][0], item[0][1].value)
    ):
        lines.append(
            f"{transport:12s} {scenario.value:10s} "
            f"{cell.mean_overhead_pct:10.3f} {cell.mean_transport_ns:13.1f} "
            f"{cell.mean_init_ns:10.1f}"
        )
    return "\n".join(lines)


def _transport_rows(result: Any) -> List[Dict[str, Any]]:
    return [
        _object_row(cell)
        for _key, cell in sorted(
            result.cells.items(), key=lambda item: (item[0][0], item[0][1].value)
        )
    ]


def _run_ablations(config: ExperimentConfig) -> Dict[str, Any]:
    from repro.experiments.ablations import (
        ablate_mechanism_split,
        ablate_platform,
        ablate_precompute_churn,
        ablate_ull_runqueue_count,
    )

    results: Dict[str, Any] = {
        "ull_runqueue_count": ablate_ull_runqueue_count(
            queue_counts=(1, 4) if config.fast else (1, 2, 4, 8)
        ),
        "mechanism_split": ablate_mechanism_split(),
    }
    if not config.fast:
        results["precompute_churn"] = ablate_precompute_churn()
        results["platform"] = ablate_platform()
    return results


def _render_ablations(results: Dict[str, Any]) -> str:
    lines = []
    current = None
    for row in _ablations_rows(results):
        name = row.pop("ablation")
        if name != current:
            lines.append(f"== {name} ==")
            current = name
        parts = [f"{k}={v}" for k, v in sorted(row.items())]
        lines.append("  " + " ".join(parts))
    return "\n".join(lines)


def _ablations_rows(results: Dict[str, Any]) -> List[Dict[str, Any]]:
    rows = []
    for name in sorted(results):
        value = results[name]
        points = value if isinstance(value, list) else [value]
        for point in points:
            row = _object_row(point)
            if name == "mechanism_split":
                # Its payload is a step -> (vanilla, horse) dict; flatten
                # to the per-step saving the figure actually reports.
                for step in sorted(point.steps):
                    row[f"saving_{step}_ns"] = point.saving_ns(step)
                row["total_saving_ns"] = point.total_saving_ns()
            row["ablation"] = name
            rows.append(row)
    return rows


def _run_prewarm_frontier(config: ExperimentConfig) -> Any:
    from repro.experiments.prewarm_frontier import run_prewarm_frontier

    return run_prewarm_frontier(
        fast=config.fast, seed=config.seed, shards=config.shards
    )


def _render_prewarm_frontier(result: Any) -> str:
    from repro.experiments.prewarm_frontier import render_prewarm_frontier

    return render_prewarm_frontier(result)


def _prewarm_frontier_rows(result: Any) -> List[Dict[str, Any]]:
    from repro.experiments.prewarm_frontier import prewarm_frontier_rows

    return prewarm_frontier_rows(result)


# ----------------------------------------------------------------------
# The registry itself.  Titles for the original CLI ids are kept
# byte-identical to the pre-registry table so existing output and tests
# are unchanged.
# ----------------------------------------------------------------------
register(
    ExperimentSpec(
        id="table1",
        title="Table 1 — init/exec/init% for cold/restore/warm x categories",
        fast_estimate_s=1.0,
        runner=_run_table1_grid,
        renderer=_render_table1,
        rows_fn=_grid_rows,
    )
)
register(
    ExperimentSpec(
        id="figure1",
        title="Figure 1 — init share per scenario",
        fast_estimate_s=1.0,
        runner=_run_table1_grid,
        renderer=_render_figure1,
        rows_fn=_grid_rows,
    )
)
register(
    ExperimentSpec(
        id="figure2",
        title="Figure 2 — vanilla resume breakdown vs vCPUs",
        fast_estimate_s=1.0,
        runner=_run_figure2,
        renderer=_render_figure2,
        rows_fn=_figure2_rows,
    )
)
register(
    ExperimentSpec(
        id="figure3",
        title="Figure 3 — resume time: vanil/ppsm/coal/horse",
        fast_estimate_s=2.0,
        runner=_run_figure3,
        renderer=_render_figure3,
        rows_fn=_figure3_rows,
    )
)
register(
    ExperimentSpec(
        id="figure4",
        title="Figure 4 — init share incl. HORSE",
        fast_estimate_s=1.0,
        runner=_run_figure4,
        renderer=_render_figure4,
        rows_fn=lambda result: _grid_rows(result.grid),
    )
)
register(
    ExperimentSpec(
        id="overhead",
        title="§5.2 — CPU and memory overhead",
        fast_estimate_s=1.0,
        runner=_run_overhead,
        renderer=_render_overhead,
        rows_fn=_overhead_rows,
    )
)
register(
    ExperimentSpec(
        id="colocation",
        title="§5.4 — colocation with long-running functions",
        fast_estimate_s=4.0,
        runner=_run_colocation,
        renderer=_render_colocation,
        rows_fn=_colocation_rows,
    )
)
register(
    ExperimentSpec(
        id="chaos",
        title="Chaos — resilience modes under seeded failures",
        fast_estimate_s=6.0,
        runner=_run_chaos,
        renderer=_render_chaos,
        rows_fn=_chaos_rows,
    )
)
register(
    ExperimentSpec(
        id="dispatch_zoo",
        title="Zoo — dispatch policies x failure rate x workload mix",
        fast_estimate_s=2.0,
        runner=_run_dispatch_zoo,
        renderer=_render_dispatch_zoo,
        rows_fn=_dispatch_zoo_rows,
    )
)
register(
    ExperimentSpec(
        id="cluster_sharded",
        title="Sharded — chaos study partitioned over worker processes",
        fast_estimate_s=2.0,
        runner=_run_cluster_sharded,
        renderer=_render_cluster_sharded,
        rows_fn=_chaos_rows,
    )
)
register(
    ExperimentSpec(
        id="cluster_recovery",
        title="Recovery — gateway crashes under the exactly-once oracle",
        fast_estimate_s=2.0,
        runner=_run_cluster_recovery,
        renderer=_render_cluster_recovery,
        rows_fn=_recovery_rows,
    )
)
register(
    ExperimentSpec(
        id="cluster_study",
        title="Cluster — placement policies on a multi-host cluster",
        fast_estimate_s=3.0,
        runner=_run_cluster_study,
        renderer=_render_cluster_study,
        rows_fn=_cluster_study_rows,
    )
)
register(
    ExperimentSpec(
        id="pool_study",
        title="Pools — keep-alive policies on an Azure-style trace",
        fast_estimate_s=2.0,
        runner=_run_pool_study,
        renderer=_render_pool_study,
        rows_fn=_pool_study_rows,
    )
)
register(
    ExperimentSpec(
        id="prewarm_frontier",
        title="Frontier — memory budget vs p99 under prewarm policies",
        fast_estimate_s=8.0,
        runner=_run_prewarm_frontier,
        renderer=_render_prewarm_frontier,
        rows_fn=_prewarm_frontier_rows,
    )
)
register(
    ExperimentSpec(
        id="slo",
        title="SLO — deadline attainment per (category, scenario)",
        fast_estimate_s=2.0,
        runner=_run_slo,
        renderer=_render_slo,
        rows_fn=_slo_rows,
    )
)
register(
    ExperimentSpec(
        id="transport_sensitivity",
        title="Transport — trigger-transport overhead sensitivity",
        fast_estimate_s=1.0,
        runner=_run_transport,
        renderer=_render_transport,
        rows_fn=_transport_rows,
    )
)
register(
    ExperimentSpec(
        id="ablations",
        title="Ablations — runqueue count, churn, platform, mechanism split",
        fast_estimate_s=2.0,
        runner=_run_ablations,
        renderer=_render_ablations,
        rows_fn=_ablations_rows,
    )
)
