"""Memory-budget × policy → p99 uLL-latency frontier.

The headline study ROADMAP item 2 asks for: replay an Azure-shaped
trace (streaming, via :mod:`repro.traces.replay`) under each sandbox
lifecycle policy at several host memory budgets, and report where each
policy's p99 init latency lands on the snapshot tiering (HORSE-pausable
~0.13 µs / snapshot restore ~1300 µs / cold boot ~1.5 s).

The workload is calibrated so the frontier has a story to tell:

* a dominant timer-triggered cohort (periods straddling the fixed
  keep-alive windows) — the Serverless-in-the-Wild population where
  histogram prewarming earns its keep;
* fixed keep-alive must hold every periodic sandbox resident the whole
  period to hit the HORSE tier, so it needs the *full* footprint;
* hybrid prewarming parks periodic sandboxes and restores them
  just-in-time, fitting the same p99 into ~70 % of the memory.

Measured result (fast mode, seed 0): at the tight budget only the
hybrid policy keeps p99 on the HORSE-pausable tier (~0.13 µs); both
fixed windows fall to the restore tier (~1300 µs) under LRU pressure,
and fixed-600 only catches up at the ample budget — ~1.6x the memory
for the same tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faas.prewarm import PrewarmConfig, PrewarmResult, run_replay
from repro.traces.replay import ReplayConfig

__all__ = [
    "FrontierConfig",
    "FrontierResult",
    "run_prewarm_frontier",
    "render_prewarm_frontier",
    "prewarm_frontier_rows",
]

#: Policies on the frontier: baseline, two fixed windows bracketing the
#: period range, and the hybrid-histogram policy (10 s bins to match the
#: minute-scale synthetic periods).
FRONTIER_POLICIES = ("none", "fixed-120", "fixed-600", "hybrid-10")

#: Budgets as fractions of the live-function footprint
#: (functions x (1 - idle_fraction) x sandbox_mb): tight / mid / ample.
FRONTIER_BUDGET_FRACTIONS = (0.70, 0.85, 1.10)


@dataclass(frozen=True)
class FrontierConfig:
    """Sweep parameters; ``fast`` halves cardinality for CI."""

    fast: bool = True
    seed: int = 0
    functions: int = 240
    duration_s: float = 3600.0
    warmup_s: float = 2400.0
    sandbox_mb: float = 128.0

    def replay_config(self) -> ReplayConfig:
        return ReplayConfig(
            functions=self.functions,
            duration_s=self.duration_s,
            seed=self.seed,
            mean_rate_per_function=0.04,
            burst_on_fraction=0.35,
            burst_mean_length_s=60.0,
            idle_fraction=0.15,
            periodic_fraction=0.60,
            period_min_s=60.0,
            period_max_s=240.0,
            period_jitter=0.05,
        )

    def budgets_mb(self) -> List[float]:
        live = self.functions * (1.0 - self.replay_config().idle_fraction)
        footprint = live * self.sandbox_mb
        return [round(fraction * footprint) for fraction in FRONTIER_BUDGET_FRACTIONS]


def frontier_config(fast: bool, seed: int) -> FrontierConfig:
    if fast:
        return FrontierConfig(fast=True, seed=seed)
    return FrontierConfig(
        fast=False, seed=seed, functions=2000, duration_s=7200.0, warmup_s=3600.0
    )


@dataclass
class FrontierResult:
    config: FrontierConfig
    #: (policy, budget_mb) -> replay result
    cells: Dict[Tuple[str, float], PrewarmResult] = field(default_factory=dict)

    def violations(self) -> List[str]:
        out: List[str] = []
        for result in self.cells.values():
            out.extend(result.violations())
        return out


def run_prewarm_frontier(
    fast: bool = True, seed: int = 0, shards: int = 1
) -> FrontierResult:
    """Every (policy, budget) cell over the same replayed trace."""
    config = frontier_config(fast, seed)
    replay = config.replay_config()
    result = FrontierResult(config=config)
    for budget_mb in config.budgets_mb():
        for policy in FRONTIER_POLICIES:
            cell = PrewarmConfig(
                replay=replay,
                policy=policy,
                memory_budget_mb=float(budget_mb),
                sandbox_mb=config.sandbox_mb,
                warmup_s=config.warmup_s,
                groups=1,
            )
            result.cells[(policy, float(budget_mb))] = run_replay(
                cell, shards=shards
            )
    return result


def prewarm_frontier_rows(result: FrontierResult) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for (policy, budget_mb), cell in sorted(
        result.cells.items(), key=lambda item: (item[0][1], item[0][0])
    ):
        rows.append(
            {
                "policy": policy,
                "budget_mb": budget_mb,
                "events": cell.events,
                "p50_us": cell.percentile_us(50.0),
                "p99_us": cell.percentile_us(99.0),
                "p999_us": cell.percentile_us(99.9),
                "horse_hits": cell.total("horse_hits"),
                "restores": cell.total("restores"),
                "cold_boots": cell.total("cold_boots"),
                "evictions": cell.total("pressure_evictions"),
                "prewarm_loads": cell.total("prewarm_loads"),
                "peak_resident_mb": sum(
                    c.peak_resident_mb for c in cell.cells
                ),
                "violations": len(cell.violations()),
            }
        )
    return rows


def render_prewarm_frontier(result: FrontierResult) -> str:
    """Fixed-width frontier table, byte-stable per seed."""
    config = result.config
    replay = config.replay_config()
    lines = [
        "Prewarm frontier — memory budget vs p99 init latency",
        f"  functions {config.functions}  duration {config.duration_s:.0f} s"
        f"  warmup {config.warmup_s:.0f} s  seed {config.seed}",
        f"  cohorts: idle {replay.idle_fraction:.2f}"
        f"  periodic {replay.periodic_fraction:.2f}"
        f" ({replay.period_min_s:.0f}-{replay.period_max_s:.0f} s)"
        f"  bursty {1 - replay.idle_fraction - replay.periodic_fraction:.2f}",
        f"  sandbox {config.sandbox_mb:.0f} MB"
        f"  tiers: HORSE 0.132 us | restore 1300 us | cold 1.5 s",
        "",
        f"  {'budget MB':>10} {'policy':>10} {'p50 us':>12} {'p99 us':>12}"
        f" {'p99.9 us':>12} {'horse':>7} {'restore':>8} {'evict':>6}",
    ]
    for row in prewarm_frontier_rows(result):
        lines.append(
            f"  {row['budget_mb']:>10.0f} {row['policy']:>10}"
            f" {row['p50_us']:>12.3f} {row['p99_us']:>12.3f}"
            f" {row['p999_us']:>12.3f} {row['horse_hits']:>7}"
            f" {row['restores']:>8} {row['evictions']:>6}"
        )
    budgets = result.config.budgets_mb()
    tight = float(budgets[0])
    winners = [
        policy
        for policy in FRONTIER_POLICIES
        if result.cells[(policy, tight)].percentile_us(99.0) < 1.0
    ]
    lines += [
        "",
        f"  HORSE-tier p99 at the tight budget ({tight:.0f} MB): "
        + (", ".join(winners) if winners else "none"),
        f"  invariant violations: {len(result.violations())}",
    ]
    return "\n".join(lines)
