"""Experiment T1/F1 — Table 1 and Figure 1 (paper §2).

For each uLL workload category (firewall, NAT, array filter) and each
start scenario (cold, restore, warm), trigger the workload on a
1-vCPU / 512 MB sandbox and measure:

* initialization time (trigger -> sandbox ready);
* average execution time;
* initialization as a percentage of the whole pipeline (Figure 1).

The paper's anchors: cold ~1.5e6 us, restore ~1300 us, warm ~1.1 us;
init shares 99.99 % (cold), 98.7-99.98 % (restore), 6.07/42.3/61.1 %
(warm, categories 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.platform import FaaSPlatform
from repro.experiments.runner import DEFAULT_REPETITIONS, RepeatedMeasurement
from repro.hypervisor.platform import platform_by_name
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import to_microseconds
from repro.workloads import ull_workloads
from repro.workloads.base import Workload

#: The start scenarios of Table 1, in column order.
TABLE1_SCENARIOS = (StartType.COLD, StartType.RESTORE, StartType.WARM)


@dataclass
class ScenarioCell:
    """One (category, scenario) cell of Table 1."""

    category: str
    scenario: StartType
    init_us: RepeatedMeasurement
    exec_us: RepeatedMeasurement
    init_pct: RepeatedMeasurement

    @property
    def mean_init_us(self) -> float:
        return self.init_us.mean

    @property
    def mean_exec_us(self) -> float:
        return self.exec_us.mean

    @property
    def mean_init_pct(self) -> float:
        return self.init_pct.mean


@dataclass
class Table1Result:
    """All cells, indexed by (category name, scenario)."""

    cells: Dict[tuple, ScenarioCell] = field(default_factory=dict)
    vcpus: int = 1
    memory_mb: int = 512

    def cell(self, category: str, scenario: StartType) -> ScenarioCell:
        return self.cells[(category, scenario)]

    def categories(self) -> List[str]:
        return sorted({key[0] for key in self.cells})

    def figure1_series(self) -> Dict[StartType, List[float]]:
        """Init-percentage series per scenario, ordered by category —
        exactly Figure 1's bars."""
        categories = self.categories()
        return {
            scenario: [self.cell(c, scenario).mean_init_pct for c in categories]
            for scenario in TABLE1_SCENARIOS
        }


def _measure_invocation(
    rngs: RngRegistry,
    workload: Workload,
    scenario: StartType,
    vcpus: int,
    memory_mb: int,
    platform: str = "firecracker",
) -> tuple:
    """One repetition: fresh platform, one trigger, one timeline."""
    faas = FaaSPlatform(
        engine=Engine(), virt=platform_by_name(platform), rngs=rngs
    )
    spec = FunctionSpec(
        name=workload.name, workload=workload, vcpus=vcpus, memory_mb=memory_mb
    )
    faas.register(spec)
    if scenario in (StartType.WARM, StartType.HORSE):
        faas.provision_warm(
            workload.name, count=1, use_horse=(scenario is StartType.HORSE)
        )
    invocation = faas.trigger(workload.name, scenario, run_logic=True)
    faas.engine.run()
    return (
        to_microseconds(invocation.initialization_ns),
        to_microseconds(invocation.execution_ns),
        invocation.init_percentage,
    )


def run_table1(
    repetitions: int = DEFAULT_REPETITIONS,
    seed: int = 0,
    vcpus: int = 1,
    memory_mb: int = 512,
    workloads: Sequence[Workload] | None = None,
    scenarios: Sequence[StartType] = TABLE1_SCENARIOS,
    platform: str = "firecracker",
) -> Table1Result:
    """Run the full Table 1 grid (the paper also ran Xen; pass
    platform="xen" for that side)."""
    result = Table1Result(vcpus=vcpus, memory_mb=memory_mb)
    root = RngRegistry(seed)
    for workload in workloads if workloads is not None else ull_workloads():
        for scenario in scenarios:
            init_m = RepeatedMeasurement(f"{workload.name}/{scenario.value}/init")
            exec_m = RepeatedMeasurement(f"{workload.name}/{scenario.value}/exec")
            pct_m = RepeatedMeasurement(f"{workload.name}/{scenario.value}/pct")
            for index in range(repetitions):
                rngs = root.fork(f"{workload.name}-{scenario.value}-{index}")
                init_us, exec_us, pct = _measure_invocation(
                    rngs, workload, scenario, vcpus, memory_mb, platform
                )
                init_m.add(init_us)
                exec_m.add(exec_us)
                pct_m.add(pct)
            result.cells[(workload.name, scenario)] = ScenarioCell(
                category=workload.name,
                scenario=scenario,
                init_us=init_m,
                exec_us=exec_m,
                init_pct=pct_m,
            )
    return result
