"""Dispatch-policy zoo: the scheduling cross-product study.

The pluggable dispatch API (DESIGN.md §15) ships four contenders —
``push-least-loaded``, ``pull``, ``mqfq-sticky``, ``deadline`` — and
this study answers the question the API exists for: *which policy wins
where?*  It runs the full cross-product

    policy × failure rate × workload mix

through the resilient gateway's breaker stack (the chaos study's
``breaker`` mode) over the identical seeded arrival and failure
schedule per (mix, failure-rate) cell, and reports per-class tail
latency: the p99 a uLL firewall request, a background batch request,
and (in the ``accel`` mix) a GPU-tagged inference request each see
under every policy.

Workload mixes:

* ``balanced``  — the chaos study's pair (uLL firewall + CPU-heavy
  background) at a 50/50 split;
* ``ull-heavy`` — same pair, 80 % of requests are uLL: the regime
  where hedging pressure and queue ordering dominate;
* ``accel``     — adds a GPU-tagged ``infer`` function that only half
  the hosts can run (``tag_accelerator``): the heterogeneous-fleet
  regime where dispatch choices interact with placement eligibility.

Every cell is audited exactly like a chaos run: gateway ledger and
policy invariants must come back clean, and any violation rides on the
cell for the caller.  Same seed ⇒ byte-identical rendered table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.chaos import _STUDY_BREAKER
from repro.faas.cluster import FaaSCluster
from repro.faas.function import FunctionSpec
from repro.metrics.stats import percentile
from repro.resilience import (
    FailureConfig,
    FailureInjector,
    RequestState,
    ResilienceConfig,
    ResilientGateway,
)
from repro.resilience.policies import DISPATCH_POLICIES
from repro.sim.rng import RngRegistry
from repro.sim.units import milliseconds, seconds, to_microseconds
from repro.workloads import (
    FirewallWorkload,
    MlInferenceWorkload,
    SysbenchCpuWorkload,
)

#: Workload mixes the zoo compares, in rendering order.
DISPATCH_MIXES: Tuple[str, ...] = ("balanced", "ull-heavy", "accel")

#: uLL fraction per mix; the ``accel`` remainder splits again between
#: the GPU function and background work (see ``_schedule_arrivals``).
_ULL_FRACTION = {"balanced": 0.5, "ull-heavy": 0.8, "accel": 0.5}

#: Fraction of ``accel``-mix requests that hit the GPU-tagged function.
_ACCEL_FRACTION = 0.25


def _zoo_policies() -> Tuple[str, ...]:
    """Every registered dispatch family, in sorted order."""
    return tuple(DISPATCH_POLICIES.families())


@dataclass(frozen=True)
class DispatchZooConfig:
    """Shape of one zoo sweep (identical schedule across policies)."""

    hosts: int = 4
    #: requests per cell (one cell = one policy × rate × mix run)
    requests: int = 600
    failure_rates: Tuple[float, ...] = (0.0, 0.2)
    mixes: Tuple[str, ...] = DISPATCH_MIXES
    #: dispatch-policy specs; default = every registered family
    policies: Tuple[str, ...] = field(default_factory=_zoo_policies)
    mean_interarrival_ms: float = 5.0
    warm_per_host: int = 3
    drain_s: float = 60.0
    crash_mtbf_base_s: float = 0.25
    #: deadline handed to uLL submissions (the deadline policy's signal;
    #: identical for every policy so schedules stay comparable)
    ull_deadline_ns: int = milliseconds(200)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hosts < 2:
            raise ValueError(f"zoo needs >= 2 hosts, got {self.hosts}")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        for rate in self.failure_rates:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"failure_rate must be in [0, 1), got {rate}")
        for mix in self.mixes:
            if mix not in DISPATCH_MIXES:
                raise ValueError(
                    f"unknown mix {mix!r}; choose from {DISPATCH_MIXES}"
                )
        for policy in self.policies:
            DISPATCH_POLICIES.make(policy)  # validate eagerly


@dataclass
class ClassStats:
    """Per request-class aggregate inside one zoo cell."""

    cls: str
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    p50_us: float = 0.0
    p99_us: float = 0.0


@dataclass
class ZooCell:
    """One (policy, failure-rate, mix) run, fully drained and audited."""

    policy: str
    failure_rate: float
    mix: str
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    crashes: int = 0
    classes: Dict[str, ClassStats] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> int:
        return self.completed + self.shed + self.failed

    @property
    def ok(self) -> bool:
        return self.resolved == self.submitted and not self.violations


@dataclass
class DispatchZooResult:
    config: DispatchZooConfig
    cells: Dict[Tuple[str, float, str], ZooCell] = field(default_factory=dict)

    def cell(self, policy: str, failure_rate: float, mix: str) -> ZooCell:
        return self.cells[(policy, failure_rate, mix)]

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells.values())


def _mix_functions(mix: str) -> List[FunctionSpec]:
    firewall = FirewallWorkload()
    firewall.name = "firewall"
    background = SysbenchCpuWorkload()
    background.name = "background"
    specs = [
        FunctionSpec("firewall", firewall, memory_mb=128),
        FunctionSpec("background", background, memory_mb=256),
    ]
    if mix == "accel":
        infer = MlInferenceWorkload()
        infer.name = "infer"
        specs.append(
            FunctionSpec("infer", infer, memory_mb=512, accelerator="gpu")
        )
    return specs


def _schedule_arrivals(
    gateway: ResilientGateway, cluster: FaaSCluster, mix: str,
    config: DispatchZooConfig,
) -> int:
    """Seed the engine with the mix's arrival schedule; returns the last
    arrival instant.  The stream is forked off ``(seed, mix)`` only, so
    every policy and failure rate replays the identical workload."""
    arrivals = (
        RngRegistry(config.seed).fork(f"zoo-arrivals-{mix}").stream("times")
    )
    ull_fraction = _ULL_FRACTION[mix]
    mean_gap_ns = milliseconds(config.mean_interarrival_ms)
    t = 0
    last = 0
    for index in range(config.requests):
        t += max(1, round(arrivals.expovariate(1.0 / mean_gap_ns)))
        last = t
        draw = arrivals.random()
        accel_cut = _ACCEL_FRACTION if mix == "accel" else 0.0
        if draw < accel_cut:
            name, priority, deadline = "infer", 1, config.ull_deadline_ns
        elif draw < accel_cut + ull_fraction:
            name, priority, deadline = "firewall", 1, config.ull_deadline_ns
        else:
            name, priority, deadline = "background", 0, None
        cluster.engine.schedule_at(
            t,
            lambda name=name, priority=priority, deadline=deadline: (
                gateway.submit(name, priority=priority, deadline_ns=deadline)
            ),
            label=f"zoo-submit:{index}",
            transient=True,
        )
    return last


def run_zoo_cell(
    policy: str, failure_rate: float, mix: str, config: DispatchZooConfig
) -> ZooCell:
    """One policy under one failure rate and mix: seeded, drained,
    audited."""
    cluster = FaaSCluster(hosts=config.hosts, seed=config.seed)
    specs = _mix_functions(mix)
    for spec in specs:
        cluster.register(spec)
    if mix == "accel":
        # Half the fleet carries the accelerator — the heterogeneity the
        # eligibility filter (and sticky/pull placement) must respect.
        for index in range(config.hosts // 2):
            cluster.tag_accelerator(index, "gpu")
    for spec in specs:
        cluster.provision_warm(spec.name, per_host=config.warm_per_host)

    resilience = ResilienceConfig(
        breaker=_STUDY_BREAKER,
        rewarm_per_host=config.warm_per_host,
        dispatch=policy,
    )
    gateway = ResilientGateway(cluster, resilience, seed=config.seed)
    injector = FailureInjector(
        cluster,
        FailureConfig(
            failure_rate=failure_rate,
            crash_mtbf_base_s=config.crash_mtbf_base_s,
            calm_factor=0.05,
        ),
        seed=config.seed,
    )
    gateway.attach(injector)

    last = _schedule_arrivals(gateway, cluster, mix, config)
    injector.schedule_crashes(until_ns=last)
    cluster.engine.run(until=last + seconds(config.drain_s))

    cell = ZooCell(policy=policy, failure_rate=failure_rate, mix=mix)
    cell.submitted = len(gateway.requests)
    cell.completed = len(gateway.by_state(RequestState.COMPLETED))
    cell.shed = len(gateway.by_state(RequestState.SHED))
    cell.failed = len(gateway.by_state(RequestState.FAILED))
    cell.crashes = cluster.stats.crashes
    cell.violations = (
        gateway.invariant_violations() + gateway.unresolved_violations()
    )

    by_class: Dict[str, List[float]] = {}
    for request in gateway.requests:
        stats = cell.classes.get(request.function)
        if stats is None:
            stats = cell.classes[request.function] = ClassStats(
                cls=request.function
            )
            by_class[request.function] = []
        stats.submitted += 1
        if request.state is RequestState.COMPLETED:
            stats.completed += 1
            by_class[request.function].append(
                to_microseconds(request.latency_ns)
            )
        elif request.state is RequestState.FAILED:
            stats.failed += 1
        elif request.state is RequestState.SHED:
            stats.shed += 1
    for cls, latencies in by_class.items():
        latencies.sort()
        stats = cell.classes[cls]
        stats.p50_us = percentile(latencies, 50.0) if latencies else 0.0
        stats.p99_us = percentile(latencies, 99.0) if latencies else 0.0
    return cell


def run_dispatch_zoo(
    config: Optional[DispatchZooConfig] = None,
) -> DispatchZooResult:
    """The full cross-product: every policy over every (rate, mix)."""
    config = config or DispatchZooConfig()
    result = DispatchZooResult(config=config)
    for mix in config.mixes:
        for failure_rate in config.failure_rates:
            for policy in config.policies:
                result.cells[(policy, failure_rate, mix)] = run_zoo_cell(
                    policy, failure_rate, mix, config
                )
    return result


def render_dispatch_zoo(result: DispatchZooResult) -> str:
    """Fixed-width per-class comparison table (byte-stable per seed)."""
    config = result.config
    lines = [
        f"dispatch zoo: hosts={config.hosts} requests={config.requests} "
        f"seed={config.seed} policies={','.join(config.policies)}",
        "",
        f"{'mix':10s} {'frate':>5s} {'policy':18s} {'class':10s} "
        f"{'subm':>5s} {'done':>5s} {'shed':>5s} {'fail':>5s} "
        f"{'p50 us':>10s} {'p99 us':>10s}",
    ]
    for mix in config.mixes:
        for failure_rate in config.failure_rates:
            for policy in config.policies:
                cell = result.cell(policy, failure_rate, mix)
                for cls in sorted(cell.classes):
                    stats = cell.classes[cls]
                    lines.append(
                        f"{mix:10s} {failure_rate:5.2f} {policy:18s} "
                        f"{cls:10s} {stats.submitted:5d} {stats.completed:5d} "
                        f"{stats.shed:5d} {stats.failed:5d} "
                        f"{stats.p50_us:10.1f} {stats.p99_us:10.1f}"
                    )
                if not cell.ok:
                    lines.append(
                        f"{mix:10s} {failure_rate:5.2f} {policy:18s} "
                        f"UNSOUND — "
                        f"{cell.submitted - cell.resolved} unresolved, "
                        f"{len(cell.violations)} violations"
                    )
    return "\n".join(lines)


def dispatch_zoo_rows(result: DispatchZooResult) -> List[Dict[str, object]]:
    """Flat scalar rows: one per (policy, rate, mix, class)."""
    rows: List[Dict[str, object]] = []
    for (policy, failure_rate, mix), cell in sorted(result.cells.items()):
        for cls in sorted(cell.classes):
            stats = cell.classes[cls]
            rows.append(
                {
                    "policy": policy,
                    "failure_rate": failure_rate,
                    "mix": mix,
                    "cls": cls,
                    "submitted": stats.submitted,
                    "completed": stats.completed,
                    "shed": stats.shed,
                    "failed": stats.failed,
                    "p50_us": stats.p50_us,
                    "p99_us": stats.p99_us,
                    "ok": cell.ok,
                }
            )
    return rows
