"""Experiment F4 — Figure 4 (paper §5.3): HORSE vs the other starts.

Same pipeline as Table 1 but with HORSE as a fourth scenario: for each
uLL workload, report the sandbox-initialization percentage under cold,
restore, warm and HORSE.  Paper expectations:

* HORSE init share between 0.77 % and 17.64 %;
* HORSE beats warm by up to 8.95x, restore by up to 142.7x, and cold
  by up to 142.84x (ratios of init percentages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.experiments.table1 import Table1Result, run_table1
from repro.faas.invocation import StartType
from repro.workloads.base import Workload

#: Figure 4's scenario order.
FIGURE4_SCENARIOS = (
    StartType.COLD,
    StartType.RESTORE,
    StartType.WARM,
    StartType.HORSE,
)


@dataclass
class Figure4Result:
    """Wraps the 4-scenario grid with the paper's ratio views."""

    grid: Table1Result

    def init_pct(self, category: str, scenario: StartType) -> float:
        return self.grid.cell(category, scenario).mean_init_pct

    def categories(self) -> List[str]:
        return self.grid.categories()

    def series(self) -> Dict[StartType, List[float]]:
        categories = self.categories()
        return {
            scenario: [self.init_pct(c, scenario) for c in categories]
            for scenario in FIGURE4_SCENARIOS
        }

    def horse_advantage(self, scenario: StartType) -> float:
        """Max over categories of scenario-init% / HORSE-init% (the
        paper's 'outclasses by up to Nx' quantity)."""
        if scenario is StartType.HORSE:
            return 1.0
        return max(
            self.init_pct(c, scenario) / self.init_pct(c, StartType.HORSE)
            for c in self.categories()
        )

    def horse_init_pct_range(self) -> tuple:
        values = [self.init_pct(c, StartType.HORSE) for c in self.categories()]
        return (min(values), max(values))


def run_figure4(
    repetitions: int = 10,
    seed: int = 0,
    vcpus: int = 1,
    memory_mb: int = 512,
    workloads: Sequence[Workload] | None = None,
    platform: str = "firecracker",
) -> Figure4Result:
    grid = run_table1(
        repetitions=repetitions,
        seed=seed,
        vcpus=vcpus,
        memory_mb=memory_mb,
        workloads=workloads,
        scenarios=FIGURE4_SCENARIOS,
        platform=platform,
    )
    return Figure4Result(grid=grid)
