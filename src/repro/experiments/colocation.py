"""Experiment CO — the §5.4 colocation study.

Long-running SEBS thumbnail invocations (1 GB, 2 vCPUs, arrival times
from a 30 s Azure-like trace chunk) run next to uLL churn: every
second, 10 uLL sandboxes are resumed from pause.  The uLL sandboxes'
vCPU count sweeps 1 -> 36.  We compare vanilla and HORSE and report the
thumbnail latency mean / p95 / p99.

Paper expectations:

* mean and p95 identical between vanilla and HORSE (uLL isolation on
  the reserved run queue prevents steady-state contention);
* p99: HORSE adds up to ~30 us (~0.00107 % of the p99) at 36 vCPUs —
  the rare case where a P2SM merge thread spills onto a general core
  and preempts a thumbnail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.experiments.runner import fresh_platform
from repro.faas.function import FunctionSpec
from repro.faas.invocation import Invocation, StartType
from repro.faas.platform import FaaSPlatform
from repro.hypervisor.platform import platform_by_name
from repro.hypervisor.sandbox import Sandbox
from repro.metrics.stats import mean, percentile
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import SECOND, milliseconds, seconds, to_microseconds
from repro.traces.azure import AzureTraceConfig, synthesize_trace
from repro.workloads.thumbnail import ThumbnailWorkload

#: §5.4 constants.
TRACE_DURATION_S = 30.0
ULL_RESUMES_PER_SECOND = 10
ULL_SANDBOXES = 10
THUMBNAIL_VCPUS = 2
THUMBNAIL_MEMORY_MB = 1024
ULL_MEMORY_MB = 512
ULL_VCPU_SWEEP = (1, 8, 16, 36)


@dataclass
class LatencySummary:
    mean_us: float
    p95_us: float
    p99_us: float
    invocations: int


@dataclass
class ColocationRun:
    """One mode at one uLL vCPU count."""

    mode: str
    ull_vcpus: int
    latencies_us: List[float]
    preemption_hits: int

    def summary(self) -> LatencySummary:
        return LatencySummary(
            mean_us=mean(self.latencies_us),
            p95_us=percentile(self.latencies_us, 95),
            p99_us=percentile(self.latencies_us, 99),
            invocations=len(self.latencies_us),
        )


@dataclass
class ColocationResult:
    runs: Dict[Tuple[str, int], ColocationRun] = field(default_factory=dict)

    def run(self, mode: str, ull_vcpus: int) -> ColocationRun:
        return self.runs[(mode, ull_vcpus)]

    def vcpu_counts(self) -> List[int]:
        return sorted({key[1] for key in self.runs})

    def p99_overhead_us(self, ull_vcpus: int) -> float:
        horse = self.run("horse", ull_vcpus).summary()
        vanil = self.run("vanilla", ull_vcpus).summary()
        return horse.p99_us - vanil.p99_us

    def p99_overhead_pct(self, ull_vcpus: int) -> float:
        vanil = self.run("vanilla", ull_vcpus).summary()
        if vanil.p99_us == 0:
            return 0.0
        return 100.0 * self.p99_overhead_us(ull_vcpus) / vanil.p99_us

    def mean_delta_us(self, ull_vcpus: int) -> float:
        return (
            self.run("horse", ull_vcpus).summary().mean_us
            - self.run("vanilla", ull_vcpus).summary().mean_us
        )

    def p95_delta_us(self, ull_vcpus: int) -> float:
        return (
            self.run("horse", ull_vcpus).summary().p95_us
            - self.run("vanilla", ull_vcpus).summary().p95_us
        )


@dataclass
class _FlightRecord:
    """An in-flight thumbnail: its cores and window, for spill checks."""

    invocation: Invocation
    cores: Tuple[int, ...]
    start_ns: int
    end_ns: int
    penalty_ns: int = 0


def _thumbnail_arrivals(seed: int) -> List[int]:
    """Arrival instants from a 30 s Azure-like trace chunk, merged over
    functions (the trace drives when the thumbnail fires)."""
    rng = random.Random(seed ^ 0x5EB5)
    config = AzureTraceConfig(
        functions=12, duration_s=TRACE_DURATION_S, mean_rate_per_function=0.5
    )
    trace = synthesize_trace(config, rng)
    return trace.merged_timestamps()


def _run_one(
    mode: str, ull_vcpus: int, seed: int, platform: str = "firecracker"
) -> ColocationRun:
    engine = Engine()
    virt = platform_by_name(platform)
    rngs = RngRegistry(seed)
    faas = FaaSPlatform(engine=engine, virt=virt, rngs=rngs)
    costs = virt.costs

    # Repeatedly thumbnailing the same image set is close to
    # deterministic; a tight envelope (sigma ~= 5 us on 1.8 s) is what
    # makes a 30 us preemption visible at the p99, as the paper's
    # 0.00107 % figure implies.
    thumbnail = ThumbnailWorkload(sigma=3e-6)
    arrivals = _thumbnail_arrivals(seed)
    faas.register(
        FunctionSpec(
            name="thumbnail",
            workload=thumbnail,
            vcpus=THUMBNAIL_VCPUS,
            memory_mb=THUMBNAIL_MEMORY_MB,
        )
    )
    # Pre-warm a base pool; the trigger path tops it up elastically so
    # a burst never falls back to a 1.5 s cold start (which would swamp
    # the percentiles under study).  Both modes provision identically.
    faas.provision_warm("thumbnail", count=16, use_horse=False)

    # -- uLL churn: 10 paused sandboxes, resumed round-robin ------------
    use_horse = mode == "horse"
    horse = HorsePauseResume(
        virt.host, virt.policy, virt.costs,
        ull_manager=faas.ull_manager, config=HorseConfig.full(),
    )
    ull_pool: List[Sandbox] = []
    for _ in range(ULL_SANDBOXES):
        sandbox = Sandbox(vcpus=ull_vcpus, memory_mb=ULL_MEMORY_MB, is_ull=True)
        virt.host.allocate_memory(ULL_MEMORY_MB)
        virt.vanilla.place_initial(sandbox, engine.now)
        if use_horse:
            horse.pause(sandbox, engine.now)
        else:
            virt.vanilla.pause(sandbox, engine.now)
        ull_pool.append(sandbox)

    flights: List[_FlightRecord] = []
    spill_rng = rngs.stream("spills")
    core_rng = rngs.stream("cores")
    exec_rng = rngs.stream("ull-exec")
    general_cores = [rq.core_id for rq in virt.host.general_runqueues()]
    preemption_hits = 0

    def trigger_thumbnail() -> None:
        if faas.pool.size("thumbnail") == 0:
            faas.provision_warm("thumbnail", count=1, use_horse=False)
        invocation = faas.trigger("thumbnail", StartType.WARM)
        cores = tuple(core_rng.sample(general_cores, THUMBNAIL_VCPUS))
        flights.append(
            _FlightRecord(
                invocation=invocation,
                cores=cores,
                start_ns=invocation.exec_start_ns or engine.now,
                end_ns=invocation.exec_end_ns or engine.now,
            )
        )

    def resume_ull() -> None:
        nonlocal preemption_hits
        if not ull_pool:
            return
        sandbox = ull_pool.pop(0)
        if use_horse:
            horse.resume(sandbox, engine.now)
            # Resume-time spills: the merge-thread wakeup and the n
            # freshly runnable vCPUs can displace work off the reserved
            # cores.  The number of potential spill sources scales with
            # the sandbox's vCPU count (len(posA) alone is 1 when the
            # ull_runqueue is empty, yet the paper observes the p99
            # effect precisely at 36 vCPUs); a spill that lands on an
            # in-flight thumbnail's core preempts it for ~30 us.
            sources = sandbox.vcpu_count
            spill_probability = costs.merge_thread_spill_per_thread * sources
            now = engine.now
            for _ in range(sources):
                if spill_rng.random() >= spill_probability:
                    continue
                core = spill_rng.choice(general_cores)
                for flight in flights:
                    if flight.start_ns <= now < flight.end_ns and core in flight.cores:
                        flight.penalty_ns += round(costs.merge_thread_preemption_ns)
                        preemption_hits += 1
        else:
            virt.vanilla.resume(sandbox, engine.now)
        # The uLL workload runs for ~us, then the sandbox is re-paused
        # and becomes available for a later trigger.
        exec_ns = max(200, round(exec_rng.gauss(1_500, 200)))

        def repause() -> None:
            if use_horse:
                horse.pause(sandbox, engine.now)
            else:
                virt.vanilla.pause(sandbox, engine.now)
            ull_pool.append(sandbox)

        engine.schedule_after(exec_ns, repause)

    for when in arrivals:
        engine.schedule_at(when, trigger_thumbnail)
    period = SECOND // ULL_RESUMES_PER_SECOND
    ull_count = round(TRACE_DURATION_S * ULL_RESUMES_PER_SECOND)
    for index in range(ull_count):
        engine.schedule_at(milliseconds(50) + index * period, resume_ull)

    engine.run(until=seconds(TRACE_DURATION_S) + seconds(10))

    latencies = [
        to_microseconds(f.invocation.total_ns + f.penalty_ns)
        for f in flights
        if f.invocation.completed
    ]
    return ColocationRun(
        mode=mode,
        ull_vcpus=ull_vcpus,
        latencies_us=latencies,
        preemption_hits=preemption_hits,
    )


def run_colocation(
    vcpu_counts: Sequence[int] = ULL_VCPU_SWEEP,
    seed: int = 0,
    platform: str = "firecracker",
) -> ColocationResult:
    result = ColocationResult()
    for vcpus in vcpu_counts:
        for mode in ("vanilla", "horse"):
            result.runs[(mode, vcpus)] = _run_one(mode, vcpus, seed, platform)
    return result
