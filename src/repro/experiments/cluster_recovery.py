"""Cluster recovery study: gateway crashes under the exactly-once oracle.

The sharded chaos study (:mod:`repro.experiments.sharded_chaos`) kills
*hosts*; this study kills the control plane itself.  Each failure-domain
cell runs a full :class:`~repro.controlplane.ControlPlane` — ``gateways``
shards behind the consistent-hash ring, each fronting its own
:class:`~repro.faas.cluster.FaaSCluster` on the cell's single engine —
and a :class:`~repro.resilience.GatewayFailureInjector` crashes whole
shards mid-run.  A crashed shard's functions spill to ring successors;
its admitted-but-unresolved requests are re-dispatched from the intent
log when the replacement comes up; when *every* shard is down, arrivals
park at the frontend and drain on the first recovery.

Correctness is not asserted from the chaos run alone: every cell is run
**twice** from the same seed — once with gateway failures, once with
the rate forced to zero — and, when host failures are off, the
origin→terminal-state maps of the two runs must be *identical*.  That
is the exactly-once differential oracle: a crash/recovery schedule may
move latency, but it may not lose, duplicate, or flip the outcome of a
single invocation.  On top of the oracle, every exit asserts the
log-derived invariants (no invocation lost, none duplicated, fencing
monotonicity, no cross-epoch completion).

The PR 7 determinism contract carries over verbatim: ``shards`` (worker
processes) is an execution knob; same seed ⇒ byte-identical merged
trace and rendered output for any worker count, gateway crashes and
all.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.controlplane import (
    ControlPlane,
    GatewayShard,
    exactly_once_checker,
    terminal_outcomes,
)
from repro.experiments.chaos import _build_workloads
from repro.faas.cluster import FaaSCluster
from repro.faas.frontend import DISPATCH_LATENCY_NS, RoutedArrival, plan_arrivals
from repro.faas.function import FunctionSpec
from repro.metrics.stats import percentile
from repro.resilience import (
    AdmissionConfig,
    FailureConfig,
    FailureInjector,
    GatewayFailureConfig,
    GatewayFailureInjector,
    ResilienceConfig,
    default_dispatch_policy,
    make_dispatch_policy,
)
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.sharding import assign_cells, merge_records, windowed_run
from repro.sim.units import seconds, to_microseconds

#: Tie-break rank for record kinds at equal timestamps within one cell.
_KIND_ORDER = {
    "gw-crash": 0,
    "gw-recover": 1,
    "crash": 2,
    "recover": 3,
    "request": 4,
}


@dataclass(frozen=True)
class ClusterRecoveryConfig:
    """Shape of one recovery run (identical across worker counts).

    ``groups`` is the number of failure-domain cells and ``gateways``
    the number of control-plane shards per cell — both *model*
    parameters.  The worker count is an execution knob passed to
    :func:`run_recovery` separately.

    Defaults are tuned for the strict oracle: host failures off,
    admission capacity far above the offered load (shedding depends on
    instantaneous occupancy, which a recovery legitimately perturbs),
    and a request deadline comfortably inside the drain window so every
    request resolves before the engine stops.
    """

    groups: int = 4
    #: control-plane shards per cell
    gateways: int = 3
    #: hosts per gateway shard's cluster
    hosts: int = 2
    gateway_failure_rate: float = 0.2
    #: host-level failure rate (0 keeps the differential oracle strict)
    failure_rate: float = 0.0
    requests: int = 600
    mean_interarrival_ms: float = 5.0
    ull_fraction: float = 0.5
    warm_per_host: int = 3
    drain_s: float = 60.0
    #: per-request retry deadline; must stay well inside ``drain_s``
    deadline_s: float = 30.0
    gw_mtbf_base_s: float = 0.25
    gw_recovery_ms: float = 400.0
    crash_mtbf_base_s: float = 0.25
    #: admission capacity per shard (high: the oracle needs no shedding)
    admission_capacity: int = 4096
    seed: int = 0
    #: dispatch-policy spec for every gateway shard (same convention as
    #: ChaosConfig; the oracle re-runs inherit it, so the differential
    #: exactly-once comparison holds per policy)
    dispatch: str = field(default_factory=default_dispatch_policy)

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if self.gateways < 1:
            raise ValueError(f"gateways must be >= 1, got {self.gateways}")
        if self.hosts < 2:
            raise ValueError(
                f"each shard needs >= 2 hosts (hedging), got {self.hosts}"
            )
        if not 0.0 <= self.gateway_failure_rate < 1.0:
            raise ValueError(
                f"gateway_failure_rate must be in [0, 1), got "
                f"{self.gateway_failure_rate}"
            )
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not 0.0 < self.deadline_s < self.drain_s:
            raise ValueError(
                f"deadline_s must be in (0, drain_s), got {self.deadline_s}"
            )
        make_dispatch_policy(self.dispatch)  # validate eagerly


@dataclass
class RecoveryCellOutcome:
    """One failure-domain cell's results (picklable plain data)."""

    group: int
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    gw_crashes: int = 0
    gw_recoveries: int = 0
    #: orphaned requests re-dispatched from intent logs, all shards
    redispatched: int = 0
    #: stale pre-crash completions dropped by fencing, all shards
    fenced: int = 0
    parked: int = 0
    drained: int = 0
    host_crashes: int = 0
    #: sorted completion latencies (µs); pooled for percentiles
    latencies_us: List[float] = field(default_factory=list)
    #: subset whose lifetime overlapped a gateway outage window
    recovery_latencies_us: List[float] = field(default_factory=list)
    #: origin -> terminal state (the oracle comparand)
    outcomes: Dict[int, str] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    events_executed: int = 0
    windows: int = 0
    records: List[dict] = field(default_factory=list)


def recovery_cell_seed(seed: int, group: int) -> int:
    """The derived root seed for one cell — pure in (seed, group)."""
    return RngRegistry(seed).fork(f"recovery-cell-{group}").root_seed


def run_recovery_cell(
    config: ClusterRecoveryConfig,
    group: int,
    arrivals: Sequence[RoutedArrival],
) -> RecoveryCellOutcome:
    """One cell: N gateway shards, one engine, gateway chaos, audit."""
    seed = recovery_cell_seed(config.seed, group)
    rngs = RngRegistry(seed)
    engine = Engine()
    resilience = ResilienceConfig(
        default_deadline_ns=seconds(config.deadline_s),
        admission=AdmissionConfig(
            capacity=config.admission_capacity, reserved_slots=8
        ),
        dispatch=config.dispatch,
    )
    shards: List[GatewayShard] = []
    host_injectors: List[FailureInjector] = []
    for index in range(config.gateways):
        shard_seed = rngs.fork(f"gateway-{index}").root_seed
        cluster = FaaSCluster(
            hosts=config.hosts, seed=shard_seed, engine=engine
        )
        firewall, background = _build_workloads("horse")
        cluster.register(FunctionSpec("firewall", firewall, memory_mb=128))
        cluster.register(FunctionSpec("background", background, memory_mb=256))
        cluster.provision_warm("firewall", per_host=config.warm_per_host)
        cluster.provision_warm("background", per_host=config.warm_per_host)
        shard = GatewayShard(index, cluster, resilience, seed=shard_seed)
        if config.failure_rate > 0.0:
            injector = FailureInjector(
                cluster,
                FailureConfig(
                    failure_rate=config.failure_rate,
                    crash_mtbf_base_s=config.crash_mtbf_base_s,
                    calm_factor=0.05,
                ),
                seed=shard_seed,
                domain=group,
            )
            shard.attach(injector)
            host_injectors.append(injector)
        shards.append(shard)

    plane = ControlPlane(engine, shards)
    gw_injector = GatewayFailureInjector(
        plane,
        GatewayFailureConfig(
            gateway_failure_rate=config.gateway_failure_rate,
            mtbf_base_s=config.gw_mtbf_base_s,
            recovery_ms=config.gw_recovery_ms,
        ),
        seed=seed,
        domain=group,
    )

    records: List[dict] = []
    #: closed outage intervals per shard: shard -> [(crash, recover)]
    outage_start: Dict[int, int] = {}
    outages: List[Tuple[int, int]] = []
    gw_injector.on_crash.append(
        lambda index, now: (
            records.append(
                {"t": now, "shard": group, "kind": "gw-crash", "gw": index}
            ),
            outage_start.__setitem__(index, now),
        )
    )
    gw_injector.on_recover.append(
        lambda index, now: (
            records.append(
                {"t": now, "shard": group, "kind": "gw-recover", "gw": index}
            ),
            outages.append((outage_start.pop(index), now)),
        )
    )
    for cluster_index, injector in enumerate(host_injectors):
        injector.on_crash.append(
            lambda index, now, gw=cluster_index: records.append(
                {"t": now, "shard": group, "kind": "crash",
                 "gw": gw, "host": index}
            )
        )
        injector.on_recover.append(
            lambda index, now, gw=cluster_index: records.append(
                {"t": now, "shard": group, "kind": "recover",
                 "gw": gw, "host": index}
            )
        )

    deadline_ns = seconds(config.deadline_s)
    deliveries = [
        (
            arrival.deliver_ns,
            lambda a=arrival: plane.submit(
                a.function,
                priority=a.priority,
                origin=a.index,
                deadline_ns=deadline_ns,
            ),
        )
        for arrival in arrivals
    ]
    last = arrivals[-1].deliver_ns if arrivals else 0
    gw_injector.schedule_crashes(until_ns=last)
    for injector in host_injectors:
        injector.schedule_crashes(until_ns=last)
    windows = windowed_run(
        engine,
        deliveries,
        lookahead_ns=DISPATCH_LATENCY_NS,
        drain_until=last + seconds(config.drain_s),
        label="recovery-submit",
    )

    # An outage still open when the run drains closes at engine.now.
    for index in sorted(outage_start):
        outages.append((outage_start[index], engine.now))

    outcomes = terminal_outcomes(plane)
    latencies: List[float] = []
    recovery_latencies: List[float] = []
    for shard in plane.shards:
        for record in shard.log.outcomes():
            if record.state != "completed" or record.latency_ns < 0:
                continue
            value = to_microseconds(record.latency_ns)
            latencies.append(value)
            started = record.t - record.latency_ns
            if any(started <= end and record.t >= start
                   for start, end in outages):
                recovery_latencies.append(value)
    latencies.sort()
    recovery_latencies.sort()

    violations = [
        f"g{group}: {message}"
        for message in exactly_once_checker(plane)(engine.now)
    ]
    for shard in plane.shards:
        violations.extend(
            f"g{group}/gw{shard.shard_id}: {message}"
            for message in shard.gateway.invariant_violations()
        )

    counted = list(outcomes.values())
    for arrival in arrivals:
        record = {
            "t": arrival.deliver_ns,
            "shard": group,
            "kind": "request",
            "req": arrival.index,
            "fn": arrival.function,
            "state": outcomes.get(arrival.index, "lost"),
        }
        records.append(record)
    records.sort(
        key=lambda r: (
            r["t"], _KIND_ORDER[r["kind"]], r.get("req", r.get("gw", 0))
        )
    )

    return RecoveryCellOutcome(
        group=group,
        submitted=len(arrivals),
        completed=sum(1 for state in counted if state == "completed"),
        shed=sum(1 for state in counted if state == "shed"),
        failed=sum(1 for state in counted if state == "failed"),
        gw_crashes=gw_injector.crashes,
        gw_recoveries=gw_injector.recoveries,
        redispatched=sum(shard.redispatched for shard in shards),
        fenced=sum(shard.fenced_completions for shard in shards),
        parked=plane.parked_total,
        drained=plane.drained_total,
        host_crashes=sum(
            injector.fired["node_crash"] for injector in host_injectors
        ),
        latencies_us=latencies,
        recovery_latencies_us=recovery_latencies,
        outcomes=outcomes,
        violations=violations,
        events_executed=engine.events_executed,
        windows=windows,
        records=records,
    )


def _run_cell_batch(payload) -> List[RecoveryCellOutcome]:
    """Worker entry point (top-level, picklable): a batch of cells.

    Each task is ``(config, group)`` — chaos cells and their
    zero-gateway-failure oracle twins travel through the same pool,
    distinguished only by the config they carry.
    """
    tasks, arrivals_by_group = payload
    return [
        run_recovery_cell(config, group, arrivals_by_group[group])
        for config, group in tasks
    ]


@dataclass
class ClusterRecoveryResult:
    config: ClusterRecoveryConfig
    cells: Dict[int, RecoveryCellOutcome] = field(default_factory=dict)
    #: same cells re-run with gateway_failure_rate forced to zero
    oracle_cells: Dict[int, RecoveryCellOutcome] = field(default_factory=dict)
    #: oracle verdicts, one line per divergence (empty = exactly-once)
    oracle_mismatches: List[str] = field(default_factory=list)
    #: whether the strict outcome-identity oracle applied (host rate 0)
    oracle_strict: bool = True
    records: List[dict] = field(default_factory=list)
    events_executed: int = 0
    windows: int = 0

    @property
    def violations(self) -> List[str]:
        problems = [
            message
            for cell in self.cells.values()
            for message in cell.violations
        ]
        problems.extend(
            message
            for cell in self.oracle_cells.values()
            for message in cell.violations
        )
        problems.extend(self.oracle_mismatches)
        return problems

    @property
    def ok(self) -> bool:
        return not self.violations


def _compare_oracle(
    group: int,
    chaos: RecoveryCellOutcome,
    oracle: RecoveryCellOutcome,
) -> List[str]:
    """Differential exactly-once: identical origin→terminal-state maps."""
    mismatches: List[str] = []
    origins = sorted(set(chaos.outcomes) | set(oracle.outcomes))
    for origin in origins:
        left = chaos.outcomes.get(origin, "missing")
        right = oracle.outcomes.get(origin, "missing")
        if left != right:
            mismatches.append(
                f"g{group}: origin {origin} diverged from oracle: "
                f"chaos={left} zero-failure={right}"
            )
    return mismatches


def run_recovery(
    config: Optional[ClusterRecoveryConfig] = None,
    shards: int = 1,
    parallel: Optional[bool] = None,
) -> ClusterRecoveryResult:
    """The full study: every cell plus its oracle twin, over workers.

    ``shards`` is the worker count — an execution knob.  Chaos cells
    and oracle cells are all independent pure functions of
    ``(config, seed, group)``, so they share one pool; results are
    byte-identical for any worker count.
    """
    config = config or ClusterRecoveryConfig()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    arrivals_by_group = plan_arrivals(
        requests=config.requests,
        groups=config.groups,
        mean_interarrival_ms=config.mean_interarrival_ms,
        ull_fraction=config.ull_fraction,
        seed=config.seed,
    )
    oracle_config = replace(config, gateway_failure_rate=0.0)
    tasks: List[Tuple[ClusterRecoveryConfig, int]] = [
        (config, group) for group in range(config.groups)
    ] + [(oracle_config, group) for group in range(config.groups)]
    assignment = assign_cells(len(tasks), shards)
    payloads = [
        (
            [tasks[i] for i in batch],
            {
                group: arrivals_by_group[group]
                for _cfg, group in (tasks[i] for i in batch)
            },
        )
        for batch in assignment
    ]
    use_processes = shards > 1 if parallel is None else (parallel and shards > 1)
    if use_processes:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        with context.Pool(processes=shards) as pool:
            batches = pool.map(_run_cell_batch, payloads)
    else:
        batches = [_run_cell_batch(payload) for payload in payloads]

    result = ClusterRecoveryResult(config=config)
    result.oracle_strict = config.failure_rate == 0.0
    # Tasks are [chaos cells..., oracle cells...]; the pool preserves
    # payload order, so the assignment indices identify each twin.
    for batch_index, batch in enumerate(batches):
        for offset, cell in enumerate(batch):
            task_index = assignment[batch_index][offset]
            task_config, group = tasks[task_index]
            if task_config is config:
                result.cells[group] = cell
            else:
                result.oracle_cells[group] = cell
    if result.oracle_strict:
        for group in range(config.groups):
            result.oracle_mismatches.extend(
                _compare_oracle(
                    group, result.cells[group], result.oracle_cells[group]
                )
            )
    result.records = merge_records(
        [result.cells[group].records for group in range(config.groups)]
    )
    result.events_executed = sum(
        cell.events_executed for cell in result.cells.values()
    )
    result.windows = sum(cell.windows for cell in result.cells.values())
    return result


def render_recovery(result: ClusterRecoveryResult) -> str:
    """Fixed-width summary, byte-stable and worker-count-free."""
    config = result.config
    cells = [result.cells[group] for group in range(config.groups)]
    latencies = sorted(v for cell in cells for v in cell.latencies_us)
    recovery = sorted(
        v for cell in cells for v in cell.recovery_latencies_us
    )
    steady_count = len(latencies) - len(recovery)
    dispatch = (
        f" dispatch={config.dispatch}"
        if config.dispatch != "push-least-loaded"
        else ""
    )
    lines = [
        f"cluster-recovery: groups={config.groups} gateways={config.gateways} "
        f"hosts/gw={config.hosts} requests={config.requests} "
        f"gw_failure_rate={config.gateway_failure_rate:g} "
        f"host_failure_rate={config.failure_rate:g} seed={config.seed}"
        f"{dispatch}",
        "",
        f"{'cell':>4s} {'subm':>5s} {'done':>5s} {'shed':>5s} {'fail':>5s} "
        f"{'gwcrash':>8s} {'redisp':>7s} {'fenced':>7s} {'parked':>7s} "
        f"{'p99 us':>10s}",
    ]
    for cell in cells:
        p99 = (
            percentile(cell.latencies_us, 99.0) if cell.latencies_us else 0.0
        )
        lines.append(
            f"g{cell.group:>3d} {cell.submitted:5d} {cell.completed:5d} "
            f"{cell.shed:5d} {cell.failed:5d} {cell.gw_crashes:8d} "
            f"{cell.redispatched:7d} {cell.fenced:7d} {cell.parked:7d} "
            f"{p99:10.1f}"
        )
    lines.append("")
    lines.append(
        f"latency: completions={len(latencies)} "
        f"p50_us={percentile(latencies, 50.0) if latencies else 0.0:.2f} "
        f"p99_us={percentile(latencies, 99.0) if latencies else 0.0:.2f}"
    )
    lines.append(
        f"recovery-window: completions={len(recovery)} "
        f"p99_us={percentile(recovery, 99.0) if recovery else 0.0:.2f} "
        f"(steady completions={steady_count})"
    )
    lines.append(
        f"control-plane: gw_crashes={sum(c.gw_crashes for c in cells)} "
        f"gw_recoveries={sum(c.gw_recoveries for c in cells)} "
        f"redispatched={sum(c.redispatched for c in cells)} "
        f"fenced={sum(c.fenced for c in cells)} "
        f"parked={sum(c.parked for c in cells)} "
        f"drained={sum(c.drained for c in cells)}"
    )
    if result.oracle_strict:
        verdict = (
            "identical"
            if not result.oracle_mismatches
            else f"{len(result.oracle_mismatches)} DIVERGENCES"
        )
        lines.append(f"oracle: zero-failure twin outcomes {verdict}")
    else:
        lines.append(
            "oracle: strict identity waived (host failures enabled); "
            "log invariants still enforced"
        )
    if not result.ok:
        lines.append(f"UNSOUND — {len(result.violations)} violations")
        lines.extend(f"  {message}" for message in result.violations[:10])
    lines.append("")
    lines.append(
        f"recovery: events={result.events_executed} windows={result.windows} "
        f"lookahead_ns={DISPATCH_LATENCY_NS} trace_records={len(result.records)}"
    )
    return "\n".join(lines)


def trace_jsonl(result: ClusterRecoveryResult) -> str:
    """The merged trace as canonical JSONL (byte-stable form)."""
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in result.records
    )


def write_trace_jsonl(result: ClusterRecoveryResult, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(trace_jsonl(result))
