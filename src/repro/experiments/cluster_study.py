"""Cluster placement study (multi-host extension).

Routes an Azure-like multi-function trace across a small cluster under
each placement policy and reports, per policy:

* cold-start fallbacks (warm-path misses on the chosen host),
* load balance across hosts (coefficient of variation of per-host
  trigger counts),
* mean initialization latency.

Warm-affinity should dominate on cold fallbacks (it looks for a pooled
sandbox before placing), round-robin on raw balance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faas.cluster import (
    FaaSCluster,
    LeastLoadedPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    WarmAffinityPlacement,
)
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.metrics.stats import mean, stddev
from repro.sim.units import seconds, to_microseconds
from repro.traces.azure import AzureTraceConfig, synthesize_trace
from repro.workloads import SysbenchCpuWorkload


@dataclass
class PlacementOutcome:
    policy: str
    triggers: int
    cold_fallbacks: int
    balance_cv: float            # stddev/mean of per-host trigger counts
    mean_init_us: float

    @property
    def cold_rate(self) -> float:
        return self.cold_fallbacks / self.triggers if self.triggers else 0.0


@dataclass
class ClusterStudyResult:
    outcomes: Dict[str, PlacementOutcome] = field(default_factory=dict)
    hosts: int = 0

    def outcome(self, policy: str) -> PlacementOutcome:
        return self.outcomes[policy]

    def policies(self) -> List[str]:
        return sorted(self.outcomes)


def _default_policies() -> Dict[str, PlacementPolicy]:
    return {
        "round-robin": RoundRobinPlacement(),
        "least-loaded": LeastLoadedPlacement(),
        "warm-affinity": WarmAffinityPlacement(),
    }


def run_cluster_study(
    hosts: int = 4,
    functions: int = 6,
    duration_s: float = 60.0,
    warm_per_host: int = 1,
    seed: int = 0,
    policies: Optional[Dict[str, PlacementPolicy]] = None,
) -> ClusterStudyResult:
    trace = synthesize_trace(
        AzureTraceConfig(
            functions=functions,
            duration_s=duration_s,
            mean_rate_per_function=1.5,
            burst_on_fraction=0.25,   # bursty enough to drain pools
        ),
        random.Random(seed ^ 0xC1),
    )
    result = ClusterStudyResult(hosts=hosts)
    for policy_name, policy in (policies or _default_policies()).items():
        cluster = FaaSCluster(hosts=hosts, seed=seed, placement=policy)
        for function in trace.function_names():
            # ~100 ms rounds: long enough that bursts overlap and a
            # host's single warm sandbox is often still busy, which is
            # what separates the placement policies.
            workload = SysbenchCpuWorkload()
            workload.name = function
            cluster.register(FunctionSpec(function, workload, memory_mb=128))
            cluster.provision_warm(function, per_host=warm_per_host)

        init_us: List[float] = []

        def fire(function: str) -> None:
            invocation = cluster.trigger(function, StartType.WARM)
            cluster.engine.schedule_at(
                invocation.exec_end_ns,
                lambda: init_us.append(
                    to_microseconds(invocation.initialization_ns)
                ),
            )

        for function in trace.function_names():
            for when in trace.invocations[function]:
                cluster.engine.schedule_at(
                    when, lambda function=function: fire(function)
                )
        cluster.engine.run(until=seconds(duration_s) + seconds(10))

        per_host = [
            cluster.stats.per_host_triggers.get(i, 0) for i in range(hosts)
        ]
        balance_cv = (
            stddev([float(c) for c in per_host]) / mean([float(c) for c in per_host])
            if any(per_host)
            else 0.0
        )
        result.outcomes[policy_name] = PlacementOutcome(
            policy=policy_name,
            triggers=cluster.stats.triggers,
            cold_fallbacks=cluster.stats.cold_fallbacks,
            balance_cv=balance_cv,
            mean_init_us=mean(init_us) if init_us else 0.0,
        )
    return result
