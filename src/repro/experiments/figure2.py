"""Experiment F2 — Figure 2 (paper §3.2): resume-cost breakdown.

Manually pause then resume a sandbox on the vanilla path while varying
its vCPU allocation from 1 to 36, recording the time each of the six
resume steps takes.  The paper's findings, which this driver verifies:

* steps 4 (sorted merge) + 5 (load update) account for 87.5-93.1 % of
  the resume;
* their contribution grows with the sandbox's vCPU count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import (
    DEFAULT_REPETITIONS,
    VCPU_SWEEP,
    fresh_platform,
    paused_sandbox,
)
from repro.hypervisor.pause_resume import HOT_STEPS
from repro.metrics.recorder import BreakdownRecorder


@dataclass
class BreakdownPoint:
    """Mean per-step costs at one vCPU count."""

    vcpus: int
    mean_total_ns: float
    mean_step_ns: Dict[str, float]
    step_shares: Dict[str, float]

    @property
    def hot_share(self) -> float:
        """Combined share of steps 4+5 (the paper's 87.5-93.1 % band)."""
        return sum(self.step_shares.get(step, 0.0) for step in HOT_STEPS)


@dataclass
class Figure2Result:
    points: List[BreakdownPoint] = field(default_factory=list)
    platform: str = "firecracker"

    def vcpu_counts(self) -> List[int]:
        return [p.vcpus for p in self.points]

    def hot_shares(self) -> List[float]:
        return [p.hot_share for p in self.points]

    def point(self, vcpus: int) -> BreakdownPoint:
        for p in self.points:
            if p.vcpus == vcpus:
                return p
        raise KeyError(f"no breakdown point for {vcpus} vCPUs")


def run_figure2(
    vcpu_counts: Sequence[int] = VCPU_SWEEP,
    repetitions: int = DEFAULT_REPETITIONS,
    platform: str = "firecracker",
    memory_mb: int = 512,
) -> Figure2Result:
    """Collect the vanilla resume breakdown over the vCPU sweep."""
    result = Figure2Result(platform=platform)
    for vcpus in vcpu_counts:
        recorder = BreakdownRecorder()
        for _ in range(repetitions):
            virt = fresh_platform(platform)
            sandbox = paused_sandbox(virt, vcpus=vcpus, memory_mb=memory_mb)
            resume = virt.vanilla.resume(sandbox, 0)
            recorder.record(resume.breakdown)
        result.points.append(
            BreakdownPoint(
                vcpus=vcpus,
                mean_total_ns=recorder.mean_total_ns(),
                mean_step_ns=recorder.mean_phase_ns(),
                step_shares=recorder.mean_shares(),
            )
        )
    return result
