"""Dispatcher-driven interference ablation (mechanistic §5.4 check).

The colocation experiment (``repro.experiments.colocation``) injects
merge-thread interference *stochastically* (spill probability x 30 us
penalty).  This ablation validates that model mechanistically: it runs
long-running work as real :class:`~repro.hypervisor.dispatch.WorkItem`
jobs on per-core dispatchers, and each HORSE resume's merge thread
preempts a victim core through the dispatcher's priority-preemption
path (``CoreDispatcher.preempt``), exactly as §4.1.3 describes ("merge
threads are given the highest priority to preempt any task on the run
queue where it is scheduled").

The measured victim delay per preemption is then compared with the
stochastic model's penalty constant, and the completion-time
distribution shows the same mean-intact / tail-only signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.hot_resume import HorsePauseResume
from repro.experiments.runner import fresh_platform
from repro.hypervisor.dispatch import HostDispatcher, WorkItem
from repro.hypervisor.sandbox import Sandbox
from repro.hypervisor.vcpu import Vcpu
from repro.metrics.stats import mean, percentile
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import SECOND, milliseconds, seconds, to_microseconds


@dataclass
class DispatchInterferenceResult:
    jobs: int
    resumes: int
    preemptions: int
    delay_per_preemption_us: float
    mean_completion_ms: float
    p99_completion_ms: float
    baseline_mean_completion_ms: float
    baseline_p99_completion_ms: float

    @property
    def mean_delta_us(self) -> float:
        return 1000.0 * (self.mean_completion_ms - self.baseline_mean_completion_ms)

    @property
    def p99_delta_us(self) -> float:
        return 1000.0 * (self.p99_completion_ms - self.baseline_p99_completion_ms)


def _run_jobs(
    with_interference: bool,
    jobs: int,
    job_ns: int,
    resumes: int,
    resume_period_ns: int,
    spill_every: int,
    seed: int,
) -> tuple:
    """Run *jobs* fixed-size work items; optionally strike cores with
    merge-thread preemptions on a deterministic cadence."""
    engine = Engine()
    virt = fresh_platform("firecracker")
    dispatcher = HostDispatcher(engine, virt.host, virt.policy, virt.costs)
    horse = HorsePauseResume(virt.host, virt.policy, virt.costs)
    rng = RngRegistry(seed).stream("victims")

    completions: List[int] = []
    busy_cores: List[int] = []
    for index in range(jobs):
        vcpu = Vcpu(index=0, sandbox_id=f"job-{index}")
        item = WorkItem(
            vcpu=vcpu,
            remaining_ns=job_ns,
            on_complete=lambda it: completions.append(it.completed_at),
        )
        core = dispatcher.submit_to_least_busy(item)
        busy_cores.append(core.runqueue.core_id)

    preemptions = 0
    delays: List[int] = []

    def do_resume(index: int) -> None:
        nonlocal preemptions
        sandbox = Sandbox(vcpus=4, memory_mb=128, is_ull=True)
        virt.vanilla.place_initial(sandbox, engine.now)
        horse.pause(sandbox, engine.now)
        horse.resume(sandbox, engine.now)
        if with_interference and (index + 1) % spill_every == 0:
            # One merge thread spills onto a busy general core: strike
            # through the dispatcher's priority-preemption path.
            victim_core = rng.choice(busy_cores)
            delay = dispatcher.core(victim_core).preempt(
                round(virt.costs.p2sm_merge_cost_ns(4))
            )
            if delay > 0:
                preemptions += 1
                delays.append(delay)

    for index in range(resumes):
        engine.schedule_at(
            milliseconds(1) + index * resume_period_ns,
            lambda index=index: do_resume(index),
        )
    engine.run(until=seconds(30))

    completion_ms = [c / 1e6 for c in completions]
    return completion_ms, preemptions, delays


def run_dispatch_interference(
    jobs: int = 40,
    job_ms: int = 2_000,
    resumes: int = 40,
    resumes_per_second: int = 10,
    spill_every: int = 2,
    seed: int = 0,
) -> DispatchInterferenceResult:
    job_ns = milliseconds(job_ms)
    period = SECOND // resumes_per_second
    baseline, _, _ = _run_jobs(
        False, jobs, job_ns, resumes, period, spill_every, seed
    )
    disturbed, preemptions, delays = _run_jobs(
        True, jobs, job_ns, resumes, period, spill_every, seed
    )
    return DispatchInterferenceResult(
        jobs=jobs,
        resumes=resumes,
        preemptions=preemptions,
        delay_per_preemption_us=(
            to_microseconds(round(mean(delays))) if delays else 0.0
        ),
        mean_completion_ms=mean(disturbed),
        p99_completion_ms=percentile(disturbed, 99),
        baseline_mean_completion_ms=mean(baseline),
        baseline_p99_completion_ms=percentile(baseline, 99),
    )
