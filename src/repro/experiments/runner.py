"""Shared experiment machinery.

Every experiment driver follows the paper's procedure: repeat the
measurement (10x by default, "enough for us to achieve 95% confidence
interval <= 3%"), vary one parameter, and summarize with mean + CI.
This module hosts the repetition loop, per-repetition RNG forking, and
small helpers for building fresh fixtures so repetitions never share
mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Iterable, List, Sequence, TypeVar

from repro.hypervisor.platform import VirtualizationPlatform, platform_by_name
from repro.hypervisor.sandbox import Sandbox
from repro.metrics.stats import ConfidenceInterval, confidence_interval_95
from repro.sim.rng import RngRegistry

T = TypeVar("T")

#: The paper's repetition count.
DEFAULT_REPETITIONS = 10

#: The vCPU sweep of Figures 2/3 and the §5.2/§5.4 studies.
VCPU_SWEEP = (1, 2, 4, 8, 16, 24, 36)


@dataclass
class RepeatedMeasurement:
    """Mean/CI over repetitions of one scalar measurement."""

    label: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"{self.label}: no values recorded")
        return sum(self.values) / len(self.values)

    @property
    def ci95(self) -> ConfidenceInterval:
        return confidence_interval_95(self.values)


def repeat(
    measure: Callable[[RngRegistry, int], float],
    repetitions: int = DEFAULT_REPETITIONS,
    seed: int = 0,
    label: str = "measurement",
) -> RepeatedMeasurement:
    """Run *measure* once per repetition with a forked RNG registry.

    *measure* receives ``(rngs, repetition_index)`` and returns one
    scalar.  Fixtures must be built inside *measure* so repetitions are
    independent.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    root = RngRegistry(seed)
    result = RepeatedMeasurement(label=label)
    for index in range(repetitions):
        result.add(measure(root.fork(f"rep-{index}"), index))
    return result


def fresh_platform(name: str = "firecracker", **kwargs) -> VirtualizationPlatform:
    """A brand-new hypervisor instance (no shared run-queue state)."""
    return platform_by_name(name, **kwargs)


def paused_sandbox(
    virt: VirtualizationPlatform, vcpus: int, memory_mb: int = 512
) -> Sandbox:
    """Create, place, and vanilla-pause one sandbox at t=0."""
    sandbox = Sandbox(vcpus=vcpus, memory_mb=memory_mb)
    virt.vanilla.place_initial(sandbox, 0)
    virt.vanilla.pause(sandbox, 0)
    return sandbox


@dataclass
class SweepSeries(Generic[T]):
    """One named series over a parameter sweep (e.g. resume ns vs vCPUs)."""

    name: str
    parameter: str
    points: Dict[T, RepeatedMeasurement] = field(default_factory=dict)

    def add_point(self, value: T, measurement: RepeatedMeasurement) -> None:
        self.points[value] = measurement

    def parameters(self) -> List[T]:
        return sorted(self.points)

    def means(self) -> List[float]:
        return [self.points[p].mean for p in self.parameters()]

    def as_rows(self) -> List[tuple]:
        return [
            (p, self.points[p].mean, self.points[p].ci95.half_width)
            for p in self.parameters()
        ]


def max_relative_ci(series: Iterable[RepeatedMeasurement]) -> float:
    """Largest CI half-width / mean across measurements (QA check:
    the paper targets <= 3 %)."""
    worst = 0.0
    for measurement in series:
        worst = max(worst, measurement.ci95.relative_half_width)
    return worst
