"""Restore ablation: the FaaSnap trade-off behind the paper's 1300 us.

The paper treats *restore* as a flat ~1300 us baseline.  Mechanistically
(FaaSnap), that number is a point on a curve: prefetch more of the
function's working set and the restore call takes longer but the first
request faults less; prefetch less and the restore returns quickly but
the first request pays major faults.  This ablation sweeps the prefetch
fraction and reports

* restore latency (the paper's metric),
* first-request fault penalty,
* effective first-invocation readiness (restore + penalty) — the
  quantity a latency-sensitive user actually experiences,

showing that no point on the curve approaches warm/HORSE territory,
which is the paper's argument for attacking the resume path instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hypervisor.memory import (
    DEFAULT_WORKING_SET,
    GuestMemory,
    LazyRestoreModel,
    WorkingSet,
)


@dataclass
class RestorePoint:
    prefetch_fraction: float
    prefetched_pages: int
    restore_ns: int
    first_request_penalty_ns: int

    @property
    def effective_ready_ns(self) -> int:
        """Restore call + first-request fault cost."""
        return self.restore_ns + self.first_request_penalty_ns


def ablate_restore_prefetch(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    working_set: WorkingSet = DEFAULT_WORKING_SET,
    memory_mb: int = 512,
    model: LazyRestoreModel = LazyRestoreModel(),
) -> List[RestorePoint]:
    """Sweep the fraction of the working set prefetched at restore."""
    points: List[RestorePoint] = []
    ordered_pages = sorted(working_set.pages)
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        prefetch_count = round(fraction * len(ordered_pages))
        prefetched = WorkingSet(pages=frozenset(ordered_pages[:prefetch_count]))

        memory = GuestMemory(size_mb=memory_mb)
        memory.evict_all()
        memory.prefetch(prefetched.pages)

        restore_ns = model.restore_ns(prefetched)
        penalty_ns = model.first_request_penalty_ns(memory, working_set)
        points.append(
            RestorePoint(
                prefetch_fraction=fraction,
                prefetched_pages=prefetch_count,
                restore_ns=restore_ns,
                first_request_penalty_ns=penalty_ns,
            )
        )
    return points
