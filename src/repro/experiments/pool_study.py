"""Warm-pool study: keep-alive policy vs hit rate under Azure-like load.

The paper's premise is that warm starts are the only viable path for
uLL work — which makes the *pool hit rate* the FaaS platform's key
operational metric.  This study drives a multi-function Azure-like
trace against the platform under different keep-alive policies and
reports, per policy:

* warm hit rate (fraction of triggers served from the pool),
* cold starts incurred,
* mean initialization latency across all triggers,
* evictions and peak pooled sandbox count (the memory cost of warmth).

Policies compared: fixed windows of several lengths, and the adaptive
ATC'20 hybrid histogram policy (via :class:`HybridKeepAlive` over
:class:`repro.faas.prewarm.HybridHistogram`), mirroring the fixed vs
"Serverless in the Wild" trade-off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import fresh_platform
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.keepalive import FixedKeepAlive, HybridKeepAlive, KeepAlivePolicy
from repro.faas.prewarm import HybridHistogram
from repro.faas.platform import FaaSPlatform
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import seconds, to_microseconds
from repro.traces.azure import AzureTraceConfig, synthesize_trace
from repro.workloads import ull_workloads


@dataclass
class PolicyOutcome:
    policy_name: str
    triggers: int
    warm_hits: int
    cold_starts: int
    evictions: int
    peak_pooled: int
    mean_init_us: float

    @property
    def hit_rate(self) -> float:
        return self.warm_hits / self.triggers if self.triggers else 0.0


@dataclass
class PoolStudyResult:
    outcomes: Dict[str, PolicyOutcome] = field(default_factory=dict)

    def outcome(self, policy_name: str) -> PolicyOutcome:
        return self.outcomes[policy_name]

    def policy_names(self) -> List[str]:
        return sorted(self.outcomes)

    def best_hit_rate(self) -> str:
        return max(self.outcomes, key=lambda n: self.outcomes[n].hit_rate)


def _default_policies() -> Dict[str, KeepAlivePolicy]:
    # The adaptive baseline is the ATC'20 hybrid policy (via the
    # HybridKeepAlive facade), binned finely enough for a 120 s study
    # and falling back to a 30 s window until it has seen 4 gaps.
    histogram = HybridKeepAlive(
        HybridHistogram(
            bin_width_ns=seconds(5),
            bins=60,
            min_observations=4,
            default_keep_ns=seconds(30),
        )
    )
    return {
        "fixed-5s": FixedKeepAlive(seconds(5)),
        "fixed-30s": FixedKeepAlive(seconds(30)),
        "fixed-120s": FixedKeepAlive(seconds(120)),
        "histogram": histogram,
    }


def run_pool_study(
    policies: Optional[Dict[str, KeepAlivePolicy]] = None,
    functions: int = 8,
    duration_s: float = 120.0,
    mean_rate_per_function: float = 0.2,
    seed: int = 0,
) -> PoolStudyResult:
    """Replay one synthesized trace against each keep-alive policy."""
    trace = synthesize_trace(
        AzureTraceConfig(
            functions=functions,
            duration_s=duration_s,
            mean_rate_per_function=mean_rate_per_function,
            burst_on_fraction=0.4,
        ),
        random.Random(seed ^ 0xA27),
    )
    result = PoolStudyResult()
    for policy_name, policy in (policies or _default_policies()).items():
        result.outcomes[policy_name] = _run_policy(
            policy_name, policy, trace, seed
        )
    return result


def _run_policy(policy_name, policy, trace, seed) -> PolicyOutcome:
    engine = Engine()
    faas = FaaSPlatform(
        engine=engine,
        virt=fresh_platform("firecracker"),
        rngs=RngRegistry(seed),
        keepalive=policy,
    )
    bodies = ull_workloads()
    for index, function in enumerate(trace.function_names()):
        workload = type(bodies[index % len(bodies)])()
        workload.name = function  # one deployment per trace function
        faas.register(FunctionSpec(function, workload, memory_mb=128))

    stats = {
        "triggers": 0, "warm_hits": 0, "cold_starts": 0, "peak_pooled": 0,
    }
    init_us: List[float] = []
    last_trigger_ns: Dict[str, int] = {}

    def fire(function: str) -> None:
        stats["triggers"] += 1
        now = engine.now
        previous = last_trigger_ns.get(function)
        if previous is not None:
            policy.observe_idle_gap(function, now - previous)
        last_trigger_ns[function] = now
        spec = faas.registry.get(function)
        if faas.pool.size(function) > 0:
            stats["warm_hits"] += 1
            start = StartType.HORSE if spec.is_ull else StartType.WARM
        else:
            stats["cold_starts"] += 1
            start = StartType.COLD
        invocation = faas.trigger(function, start)
        engine.schedule_at(
            invocation.exec_end_ns,
            lambda: init_us.append(to_microseconds(invocation.initialization_ns)),
        )
        stats["peak_pooled"] = max(stats["peak_pooled"], faas.pool.total_size())

    for function in trace.function_names():
        for when in trace.invocations[function]:
            engine.schedule_at(when, lambda function=function: fire(function))
    engine.run(until=seconds(trace.config.duration_s) + seconds(10))
    stats["peak_pooled"] = max(stats["peak_pooled"], faas.pool.total_size())

    return PolicyOutcome(
        policy_name=policy_name,
        triggers=stats["triggers"],
        warm_hits=stats["warm_hits"],
        cold_starts=stats["cold_starts"],
        evictions=faas.pool.evictions,
        peak_pooled=stats["peak_pooled"],
        mean_init_us=sum(init_us) / len(init_us) if init_us else 0.0,
    )
