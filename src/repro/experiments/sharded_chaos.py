"""Sharded chaos study: the cluster run partitioned over worker processes.

The legacy chaos study (:mod:`repro.experiments.chaos`) simulates one
cluster on one engine in one process — which caps it at a single core.
This study scales the same comparison out: the cluster is modelled as
``groups`` independent failure-domain *cells*, each a full resilient
stack (its own :class:`~repro.faas.cluster.FaaSCluster`, gateway,
breakers, and :class:`~repro.resilience.FailureInjector`) simulated by
its own :class:`~repro.sim.engine.Engine`.  Requests enter through the
shard front-end (:mod:`repro.faas.frontend`): the router assigns each
arrival to a cell and delivers it after the fixed gateway-dispatch hop
— the only cross-shard message in the model, and therefore the
conservative lookahead that lets each cell simulate ahead safely
(:func:`repro.sim.sharding.windowed_run`).

``shards`` selects how many worker processes the fixed set of cells is
distributed over (:func:`repro.sim.sharding.assign_cells`).  The hard
invariant — enforced by the shard-invariance property suite and the CI
subprocess diff — is that the worker count changes only wall-clock:

    same seed  ⇒  byte-identical merged trace, metrics, and rendered
    output for ANY ``shards`` (1, 2, 4, 8, ...).

That holds because every cell is a pure function of ``(config, seed,
group)``: per-cell RNG registries are forked from the root seed by
group id, the routed arrival plan is drawn once from dedicated streams,
and the merge is the pinned deterministic order of
:func:`repro.sim.sharding.merge_records`.  Nothing in the rendered
output or the trace mentions the worker count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.chaos import (
    CHAOS_MODES,
    ModeOutcome,
    _build_workloads,
    _mode_resilience,
)
from repro.faas.cluster import FaaSCluster
from repro.faas.frontend import DISPATCH_LATENCY_NS, RoutedArrival, plan_arrivals
from repro.faas.function import FunctionSpec
from repro.metrics.stats import percentile
from repro.resilience import (
    FailureConfig,
    FailureInjector,
    RequestState,
    ResilientGateway,
    default_dispatch_policy,
    make_dispatch_policy,
)
from repro.sim.rng import RngRegistry
from repro.sim.sharding import assign_cells, merge_records, windowed_run
from repro.sim.units import seconds, to_microseconds

#: Tie-break rank for record kinds at equal timestamps within one cell.
_KIND_ORDER = {"crash": 0, "recover": 1, "request": 2}


@dataclass(frozen=True)
class ShardedChaosConfig:
    """Shape of one sharded chaos run (identical across modes and
    worker counts).  ``groups`` is the number of failure-domain cells —
    a *model* parameter fixed by the config; the worker count is an
    execution knob passed to :func:`run_sharded_chaos` separately, so
    changing it cannot change the simulated system.
    """

    groups: int = 8
    #: hosts per cell (the legacy study's ``hosts``, per failure domain)
    hosts: int = 2
    failure_rate: float = 0.1
    #: global request count, routed across the cells
    requests: int = 1200
    mean_interarrival_ms: float = 5.0
    ull_fraction: float = 0.5
    warm_per_host: int = 3
    drain_s: float = 60.0
    crash_mtbf_base_s: float = 0.25
    seed: int = 0
    #: dispatch-policy spec for every cell's gateway (resolved at
    #: construction, same convention as ChaosConfig)
    dispatch: str = field(default_factory=default_dispatch_policy)

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")
        if self.hosts < 2:
            raise ValueError(
                f"each cell needs >= 2 hosts (hedging/steering), got {self.hosts}"
            )
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.warm_per_host < 1:
            raise ValueError(
                f"warm_per_host must be >= 1, got {self.warm_per_host}"
            )
        make_dispatch_policy(self.dispatch)  # validate eagerly


@dataclass
class CellOutcome:
    """One (mode, failure-domain cell) sub-simulation's results.

    Everything here is picklable plain data: cells cross the process
    boundary on the way back from the workers.
    """

    mode: str
    group: int
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    failed: int = 0
    retries: int = 0
    hedges: int = 0
    redundant_hedges: int = 0
    degradations: Dict[str, int] = field(default_factory=dict)
    breaker_opens: int = 0
    crashes: int = 0
    recoveries: int = 0
    fired: Dict[str, int] = field(default_factory=dict)
    #: sorted per-cell completion latencies (µs); pooled for percentiles
    latencies_us: List[float] = field(default_factory=list)
    ull_latencies_us: List[float] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    events_executed: int = 0
    windows: int = 0
    #: per-cell trace stream, sorted by (t, kind, id) — merge input
    records: List[dict] = field(default_factory=list)


def cell_seed(seed: int, group: int) -> int:
    """The derived root seed for one cell — pure in (seed, group)."""
    return RngRegistry(seed).fork(f"shard-cell-{group}").root_seed


def run_cell(
    mode: str,
    config: ShardedChaosConfig,
    group: int,
    arrivals: Sequence[RoutedArrival],
) -> CellOutcome:
    """One failure-domain cell, one mode: build, drive, audit.

    Mirrors :func:`repro.experiments.chaos.run_chaos_mode`, scoped to
    the cell's own engine and seeded purely from ``(seed, group)``.
    The arrival stream is delivered through the conservative-lookahead
    windows of :func:`windowed_run` — the cell never simulates past a
    horizon it could still receive a dispatch below.
    """
    seed = cell_seed(config.seed, group)
    resilience = _mode_resilience(mode, config)
    firewall, background = _build_workloads(mode)
    cluster = FaaSCluster(hosts=config.hosts, seed=seed)
    cluster.register(FunctionSpec("firewall", firewall, memory_mb=128))
    cluster.register(FunctionSpec("background", background, memory_mb=256))
    use_horse = None if mode != "vanilla" else False
    cluster.provision_warm(
        "firewall", per_host=config.warm_per_host, use_horse=use_horse
    )
    cluster.provision_warm("background", per_host=config.warm_per_host)

    gateway = ResilientGateway(cluster, resilience, seed=seed)
    injector = FailureInjector(
        cluster,
        FailureConfig(
            failure_rate=config.failure_rate,
            crash_mtbf_base_s=config.crash_mtbf_base_s,
            calm_factor=0.05,
        ),
        seed=seed,
        domain=group,
    )
    gateway.attach(injector)

    records: List[dict] = []
    engine = cluster.engine
    injector.on_crash.append(
        lambda index, now: records.append(
            {"t": now, "shard": group, "mode": mode, "kind": "crash", "host": index}
        )
    )
    injector.on_recover.append(
        lambda index, now: records.append(
            {"t": now, "shard": group, "mode": mode, "kind": "recover", "host": index}
        )
    )

    deliveries = [
        (
            arrival.deliver_ns,
            lambda name=arrival.function, priority=arrival.priority: gateway.submit(
                name, priority=priority
            ),
        )
        for arrival in arrivals
    ]
    last = arrivals[-1].deliver_ns if arrivals else 0
    injector.schedule_crashes(until_ns=last)
    windows = windowed_run(
        engine,
        deliveries,
        lookahead_ns=DISPATCH_LATENCY_NS,
        drain_until=last + seconds(config.drain_s),
        label="chaos-submit",
    )

    for arrival, request in zip(arrivals, gateway.requests):
        records.append(
            {
                "t": request.submit_ns,
                "shard": group,
                "mode": mode,
                "kind": "request",
                "req": arrival.index,
                "fn": request.function,
                "state": request.state.value,
                "lat_ns": request.latency_ns if request.latency_ns is not None else -1,
                "retries": request.retries,
                "hedges": request.hedges_used,
            }
        )
    records.sort(
        key=lambda r: (r["t"], _KIND_ORDER[r["kind"]], r.get("req", r.get("host", 0)))
    )

    completed = gateway.by_state(RequestState.COMPLETED)
    latencies = sorted(
        to_microseconds(request.latency_ns) for request in completed
    )
    ull_latencies = sorted(
        to_microseconds(request.latency_ns)
        for request in completed
        if request.function == "firewall"
    )
    violations = [
        f"g{group}: {message}"
        for message in gateway.invariant_violations()
        + gateway.unresolved_violations()
    ]
    return CellOutcome(
        mode=mode,
        group=group,
        submitted=len(gateway.requests),
        completed=len(latencies),
        shed=len(gateway.by_state(RequestState.SHED)),
        failed=len(gateway.by_state(RequestState.FAILED)),
        retries=sum(request.retries for request in gateway.requests),
        hedges=sum(request.hedges_used for request in gateway.requests),
        redundant_hedges=sum(
            request.redundant_hedges for request in gateway.requests
        ),
        degradations=dict(sorted(gateway.degradations.transitions.items())),
        breaker_opens=sum(
            breaker.open_count for breaker in gateway.breakers.values()
        ),
        crashes=cluster.stats.crashes,
        recoveries=cluster.stats.recoveries,
        fired=dict(injector.fired),
        latencies_us=latencies,
        ull_latencies_us=ull_latencies,
        violations=violations,
        events_executed=engine.events_executed,
        windows=windows,
        records=records,
    )


def _run_cell_batch(payload) -> List[CellOutcome]:
    """Worker entry point: run an assigned batch of (mode, group) cells.

    Top-level (picklable) on purpose; receives only plain data.  Cells
    run in task order inside the batch — irrelevant for results (each
    cell is self-contained) but kept deterministic anyway.
    """
    config, tasks, arrivals_by_group = payload
    return [
        run_cell(mode, config, group, arrivals_by_group[group])
        for mode, group in tasks
    ]


@dataclass
class ShardedChaosResult:
    config: ShardedChaosConfig
    outcomes: Dict[str, ModeOutcome] = field(default_factory=dict)
    cells: Dict[Tuple[str, int], CellOutcome] = field(default_factory=dict)
    #: deterministic merged trace (mode-major, then (t, shard, index))
    records: List[dict] = field(default_factory=list)
    events_executed: int = 0
    windows: int = 0

    def outcome(self, mode: str) -> ModeOutcome:
        return self.outcomes[mode]

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes.values())


def _aggregate_mode(
    mode: str, cells: Sequence[CellOutcome]
) -> ModeOutcome:
    """Fold one mode's cells into the legacy ModeOutcome shape.

    Counters sum; latency percentiles are computed over the pooled
    per-cell latency lists, so they describe the whole sharded cluster,
    not an average of averages.
    """
    degradations: Dict[str, int] = {}
    fired: Dict[str, int] = {}
    violations: List[str] = []
    for cell in cells:
        for key, value in cell.degradations.items():
            degradations[key] = degradations.get(key, 0) + value
        for key, value in cell.fired.items():
            fired[key] = fired.get(key, 0) + value
        violations.extend(cell.violations)
    latencies = sorted(
        value for cell in cells for value in cell.latencies_us
    )
    ull_latencies = sorted(
        value for cell in cells for value in cell.ull_latencies_us
    )
    return ModeOutcome(
        mode=mode,
        submitted=sum(cell.submitted for cell in cells),
        completed=sum(cell.completed for cell in cells),
        shed=sum(cell.shed for cell in cells),
        failed=sum(cell.failed for cell in cells),
        retries=sum(cell.retries for cell in cells),
        hedges=sum(cell.hedges for cell in cells),
        redundant_hedges=sum(cell.redundant_hedges for cell in cells),
        degradations=dict(sorted(degradations.items())),
        breaker_opens=sum(cell.breaker_opens for cell in cells),
        crashes=sum(cell.crashes for cell in cells),
        recoveries=sum(cell.recoveries for cell in cells),
        fired=dict(sorted(fired.items())),
        p50_us=percentile(latencies, 50.0) if latencies else 0.0,
        p95_us=percentile(latencies, 95.0) if latencies else 0.0,
        p99_us=percentile(latencies, 99.0) if latencies else 0.0,
        ull_p50_us=percentile(ull_latencies, 50.0) if ull_latencies else 0.0,
        ull_p99_us=percentile(ull_latencies, 99.0) if ull_latencies else 0.0,
        violations=violations,
    )


def run_sharded_chaos(
    config: Optional[ShardedChaosConfig] = None,
    shards: int = 1,
    modes: Tuple[str, ...] = CHAOS_MODES,
    parallel: Optional[bool] = None,
) -> ShardedChaosResult:
    """The full sharded study: every (mode, cell) over *shards* workers.

    ``shards`` is the worker count.  ``parallel=False`` forces the
    worker batches to run sequentially in-process (the partition, the
    windowed drivers, and the merge are exercised identically — only
    the OS processes are skipped); the default uses real worker
    processes whenever ``shards > 1``.  Results are byte-identical
    either way, and for every worker count — that is the contract.
    """
    config = config or ShardedChaosConfig()
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    arrivals_by_group = plan_arrivals(
        requests=config.requests,
        groups=config.groups,
        mean_interarrival_ms=config.mean_interarrival_ms,
        ull_fraction=config.ull_fraction,
        seed=config.seed,
    )
    tasks = [(mode, group) for mode in modes for group in range(config.groups)]
    assignment = assign_cells(len(tasks), shards)
    payloads = [
        (
            config,
            [tasks[i] for i in batch],
            {
                group: arrivals_by_group[group]
                for _mode, group in (tasks[i] for i in batch)
            },
        )
        for batch in assignment
    ]
    use_processes = shards > 1 if parallel is None else (parallel and shards > 1)
    if use_processes:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        with context.Pool(processes=shards) as pool:
            batches = pool.map(_run_cell_batch, payloads)
    else:
        batches = [_run_cell_batch(payload) for payload in payloads]

    result = ShardedChaosResult(config=config)
    for batch in batches:
        for cell in batch:
            result.cells[(cell.mode, cell.group)] = cell
    for mode in modes:
        mode_cells = [result.cells[(mode, g)] for g in range(config.groups)]
        result.outcomes[mode] = _aggregate_mode(mode, mode_cells)
        result.records.extend(
            merge_records([cell.records for cell in mode_cells])
        )
    result.events_executed = sum(
        cell.events_executed for cell in result.cells.values()
    )
    result.windows = sum(cell.windows for cell in result.cells.values())
    return result


def render_sharded_chaos(result: ShardedChaosResult) -> str:
    """Fixed-width summary, byte-stable and worker-count-free.

    The worker count is deliberately absent: two runs of the same seed
    at any ``shards`` must render identically (the CI shard job diffs
    them), so only model parameters and simulated results may appear.
    """
    config = result.config
    modes = list(result.outcomes)
    dispatch = (
        f" dispatch={config.dispatch}"
        if config.dispatch != "push-least-loaded"
        else ""
    )
    lines = [
        f"chaos-sharded: groups={config.groups} hosts/group={config.hosts} "
        f"requests={config.requests} failure_rate={config.failure_rate:g} "
        f"seed={config.seed}{dispatch}",
        "shard-load: "
        + " ".join(
            f"g{group}={result.cells[(modes[0], group)].submitted}"
            for group in range(config.groups)
        ),
        "",
        f"{'mode':14s} {'done':>5s} {'shed':>5s} {'fail':>5s} {'retry':>6s} "
        f"{'hedge':>6s} {'degr':>5s} {'opens':>6s} "
        f"{'p99 us':>10s} {'uLL p50 us':>11s} {'uLL p99 us':>11s}",
    ]
    for mode in modes:
        outcome = result.outcomes[mode]
        lines.append(
            f"{outcome.mode:14s} {outcome.completed:5d} {outcome.shed:5d} "
            f"{outcome.failed:5d} {outcome.retries:6d} {outcome.hedges:6d} "
            f"{sum(outcome.degradations.values()):5d} {outcome.breaker_opens:6d} "
            f"{outcome.p99_us:10.1f} {outcome.ull_p50_us:11.2f} "
            f"{outcome.ull_p99_us:11.2f}"
        )
    lines.append("")
    for mode in modes:
        outcome = result.outcomes[mode]
        degraded = (
            ", ".join(f"{k}:{v}" for k, v in outcome.degradations.items())
            or "none"
        )
        fired = ", ".join(f"{k}:{v}" for k, v in sorted(outcome.fired.items()))
        lines.append(
            f"{outcome.mode}: crashes={outcome.crashes} "
            f"recoveries={outcome.recoveries} degradations=[{degraded}] "
            f"faults=[{fired}]"
        )
        if not outcome.ok:
            lines.append(
                f"{outcome.mode}: UNSOUND — "
                f"{outcome.submitted - outcome.resolved} unresolved, "
                f"{len(outcome.violations)} violations"
            )
            lines.extend(f"  {message}" for message in outcome.violations[:10])
    lines.append("")
    lines.append(
        f"sharded: events={result.events_executed} windows={result.windows} "
        f"lookahead_ns={DISPATCH_LATENCY_NS} trace_records={len(result.records)}"
    )
    return "\n".join(lines)


def trace_jsonl(result: ShardedChaosResult) -> str:
    """The merged trace as canonical JSONL (one record per line).

    Keys are sorted and separators fixed, so the artifact is
    byte-identical for byte-identical record streams — the form the
    cross-process determinism regression diffs.
    """
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in result.records
    )


def write_trace_jsonl(result: ShardedChaosResult, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(trace_jsonl(result))
