"""Energy/DVFS ablation: why coalesce instead of skip? (DESIGN.md §5)

The obvious cheaper alternative to HORSE's coalesced load update is to
*skip* step 5 on the fast path altogether.  This ablation quantifies
what that would cost: after resuming an n-vCPU sandbox onto the
ull_runqueue,

* **coalesced** leaves the load variable exactly where n per-vCPU folds
  would (error 0, identical DVFS frequency, identical power);
* **skipped** leaves the pre-resume load, so the governor underclocks
  the core hosting n freshly runnable vCPUs — the frequency error and
  the resulting power deficit grow with n.

This is the design argument for §4.2: coalescing keeps the O(1) cost
*and* the exact semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.coalesce import CoalescedUpdate
from repro.hypervisor.dvfs import DvfsGovernor, FrequencyRange, GovernorMode
from repro.hypervisor.energy import CorePowerModel, frequency_error_ratio
from repro.hypervisor.load_tracking import DEFAULT_ENTITY_WEIGHT, RunqueueLoad


@dataclass
class EnergyAblationPoint:
    vcpus: int
    true_load: float
    coalesced_load: float
    skipped_load: float
    coalesced_freq_error: float
    skipped_freq_error: float
    skipped_power_deficit_watts: float


def ablate_skip_vs_coalesce(
    vcpu_counts: Sequence[int] = (1, 4, 8, 16, 36),
    initial_load: float = 50.0,
) -> List[EnergyAblationPoint]:
    """Compare the three load-update policies after one resume."""
    governor = DvfsGovernor(
        mode=GovernorMode.ONDEMAND,
        frequency=FrequencyRange(800_000, 3_500_000),
    )
    power = CorePowerModel()
    points: List[EnergyAblationPoint] = []
    for vcpus in vcpu_counts:
        # Ground truth: n per-vCPU PELT folds (the vanilla semantics).
        truth = RunqueueLoad(value=initial_load)
        for _ in range(vcpus):
            truth.enqueue_entity(0, DEFAULT_ENTITY_WEIGHT)

        # HORSE: one precomputed fused update.
        fused_state = RunqueueLoad(value=initial_load)
        template = fused_state.enqueue_update(DEFAULT_ENTITY_WEIGHT)
        fused = CoalescedUpdate.precompute(template.alpha, template.beta, vcpus)
        fused_state.apply_coalesced(0, fused.alpha_n, fused.beta_sum)

        # Naive fast path: skip the update entirely.
        skipped_load = initial_load

        coalesced_error = frequency_error_ratio(
            governor, truth.value, fused_state.value
        )
        skipped_error = frequency_error_ratio(governor, truth.value, skipped_load)
        true_khz = governor.target_khz(truth.value)
        stale_khz = governor.target_khz(skipped_load)
        deficit = power.power_watts(true_khz) - power.power_watts(stale_khz)
        points.append(
            EnergyAblationPoint(
                vcpus=vcpus,
                true_load=truth.value,
                coalesced_load=fused_state.value,
                skipped_load=skipped_load,
                coalesced_freq_error=coalesced_error,
                skipped_freq_error=skipped_error,
                skipped_power_deficit_watts=deficit,
            )
        )
    return points
