"""SLO attainment: the paper's central question, quantified.

"Can a uLL workload meet its low latency requirements if triggered in
a sandbox?" (§1).  This experiment answers it as a deadline-attainment
probability: for each uLL category and each start strategy, what
fraction of invocations complete (trigger -> function end) within the
category's latency budget?

Budgets follow the category definitions: 20 us (Category 1), 5 us
(Category 2, ~3x its 1.5 us mean), 2 us (Category 3).  Cold and
restore attain ~0 everywhere; vanilla warm starts lose Category 2/3
attainment to the ~1.1 us resume; HORSE restores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import fresh_platform
from repro.faas.function import FunctionSpec
from repro.faas.invocation import StartType
from repro.faas.platform import FaaSPlatform
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.units import microseconds, seconds
from repro.workloads import ull_workloads
from repro.workloads.base import Workload

#: Per-category latency budgets (ns).
DEFAULT_BUDGETS_NS: Dict[str, int] = {
    "firewall": microseconds(20),
    "nat": microseconds(5),
    "array-filter": microseconds(2),
}

SLO_SCENARIOS = (StartType.COLD, StartType.RESTORE, StartType.WARM,
                 StartType.HORSE)


@dataclass
class AttainmentCell:
    category: str
    scenario: StartType
    budget_ns: int
    attained: int
    total: int

    @property
    def attainment(self) -> float:
        return self.attained / self.total if self.total else 0.0


@dataclass
class SloResult:
    cells: Dict[tuple, AttainmentCell] = field(default_factory=dict)
    invocations_per_cell: int = 0

    def cell(self, category: str, scenario: StartType) -> AttainmentCell:
        return self.cells[(category, scenario)]

    def categories(self) -> List[str]:
        return sorted({key[0] for key in self.cells})

    def attainment(self, category: str, scenario: StartType) -> float:
        return self.cell(category, scenario).attainment


def run_slo(
    invocations: int = 200,
    seed: int = 0,
    budgets_ns: Dict[str, int] | None = None,
    workloads: Sequence[Workload] | None = None,
    scenarios: Sequence[StartType] = SLO_SCENARIOS,
    platform: str = "firecracker",
) -> SloResult:
    """Measure deadline attainment per (category, scenario)."""
    if invocations < 1:
        raise ValueError(f"invocations must be >= 1, got {invocations}")
    budgets = dict(budgets_ns or DEFAULT_BUDGETS_NS)
    result = SloResult(invocations_per_cell=invocations)
    root = RngRegistry(seed)
    for workload in workloads if workloads is not None else ull_workloads():
        budget = budgets.get(workload.name)
        if budget is None:
            raise KeyError(f"no latency budget for workload {workload.name!r}")
        for scenario in scenarios:
            rngs = root.fork(f"{workload.name}-{scenario.value}")
            faas = FaaSPlatform(
                engine=Engine(), virt=fresh_platform(platform), rngs=rngs
            )
            faas.register(FunctionSpec(workload.name, workload))
            if scenario in (StartType.WARM, StartType.HORSE):
                faas.provision_warm(
                    workload.name,
                    count=1,
                    use_horse=scenario is StartType.HORSE,
                )
            reuses_pool = scenario in (StartType.WARM, StartType.HORSE)
            attained = 0
            for _ in range(invocations):
                invocation = faas.trigger(
                    workload.name, scenario, return_to_pool=reuses_pool
                )
                faas.engine.run(until=faas.engine.now + seconds(3))
                if invocation.total_ns <= budget:
                    attained += 1
                if not reuses_pool:
                    # Cold/restore create a fresh sandbox per trigger;
                    # tear it down so 200 iterations don't exhaust the
                    # host's 128 GB.
                    faas.virt.host.release_memory(
                        faas.registry.get(workload.name).memory_mb
                    )
            result.cells[(workload.name, scenario)] = AttainmentCell(
                category=workload.name,
                scenario=scenario,
                budget_ns=budget,
                attained=attained,
                total=invocations,
            )
    return result
