"""Experiment F3 — Figure 3 (paper §5.1): resume time by setup.

Resume a previously paused sandbox under four setups while sweeping
its vCPU count:

* ``vanil`` — the unmodified resume path;
* ``ppsm`` — P2SM only;
* ``coal`` — load-update coalescing only;
* ``horse`` — both mechanisms plus the trimmed command path.

Expectations from the paper: coal improves the resume by 16-20 %, ppsm
by 55-69 %, HORSE by up to ~85 % ("up to 7.16x"), and the HORSE resume
time is flat (~150 ns) in the vCPU count.  (Our measured HORSE ratio
exceeds 7.16x at high vCPU counts — see EXPERIMENTS.md on the paper's
internally inconsistent anchors.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.experiments.runner import (
    DEFAULT_REPETITIONS,
    VCPU_SWEEP,
    RepeatedMeasurement,
    fresh_platform,
)
from repro.hypervisor.sandbox import Sandbox

#: Setup name -> HorseConfig (None = the vanilla path).
SETUPS: Dict[str, HorseConfig | None] = {
    "vanil": None,
    "ppsm": HorseConfig.ppsm_only(),
    "coal": HorseConfig.coalescing_only(),
    "horse": HorseConfig.full(),
}


@dataclass
class Figure3Result:
    """Resume-time series per setup over the vCPU sweep."""

    #: setup -> vcpus -> measurement (ns)
    series: Dict[str, Dict[int, RepeatedMeasurement]] = field(default_factory=dict)
    platform: str = "firecracker"

    def mean_ns(self, setup: str, vcpus: int) -> float:
        return self.series[setup][vcpus].mean

    def vcpu_counts(self) -> List[int]:
        any_setup = next(iter(self.series.values()))
        return sorted(any_setup)

    def improvement(self, setup: str, vcpus: int) -> float:
        """Fractional resume-time improvement of *setup* over vanil."""
        vanil = self.mean_ns("vanil", vcpus)
        return 1.0 - self.mean_ns(setup, vcpus) / vanil

    def speedup(self, setup: str, vcpus: int) -> float:
        return self.mean_ns("vanil", vcpus) / self.mean_ns(setup, vcpus)

    def max_improvement(self, setup: str) -> float:
        return max(self.improvement(setup, v) for v in self.vcpu_counts())

    def min_improvement(self, setup: str) -> float:
        return min(self.improvement(setup, v) for v in self.vcpu_counts())

    def horse_flatness(self) -> float:
        """max/min HORSE resume time across the sweep (1.0 = flat)."""
        values = [self.mean_ns("horse", v) for v in self.vcpu_counts()]
        return max(values) / min(values)


def _resume_once(
    platform: str, config: HorseConfig | None, vcpus: int, memory_mb: int
) -> int:
    """One repetition: fresh platform, pause via the setup's path,
    resume, return total ns."""
    virt = fresh_platform(platform)
    sandbox = Sandbox(vcpus=vcpus, memory_mb=memory_mb, is_ull=config is not None)
    virt.vanilla.place_initial(sandbox, 0)
    if config is None:
        virt.vanilla.pause(sandbox, 0)
        return virt.vanilla.resume(sandbox, 0).total_ns
    horse = HorsePauseResume(virt.host, virt.policy, virt.costs, config=config)
    horse.pause(sandbox, 0)
    return horse.resume(sandbox, 0).total_ns


def run_figure3(
    vcpu_counts: Sequence[int] = VCPU_SWEEP,
    repetitions: int = DEFAULT_REPETITIONS,
    platform: str = "firecracker",
    memory_mb: int = 512,
    setups: Dict[str, HorseConfig | None] | None = None,
) -> Figure3Result:
    result = Figure3Result(platform=platform)
    for name, config in (setups or SETUPS).items():
        result.series[name] = {}
        for vcpus in vcpu_counts:
            measurement = RepeatedMeasurement(f"{name}/{vcpus}")
            for _ in range(repetitions):
                measurement.add(_resume_once(platform, config, vcpus, memory_mb))
            result.series[name][vcpus] = measurement
    return result
