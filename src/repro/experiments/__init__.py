"""Experiment drivers: one module per paper table/figure.

========  =============================  ==========================
exp id    paper artifact                 driver
========  =============================  ==========================
T1        Table 1                        :func:`repro.experiments.table1.run_table1`
F1        Figure 1                       Table 1 result, ``figure1_series``
F2        Figure 2                       :func:`repro.experiments.figure2.run_figure2`
F3        Figure 3                       :func:`repro.experiments.figure3.run_figure3`
OV        §5.2 overhead                  :func:`repro.experiments.overhead.run_overhead`
F4        Figure 4                       :func:`repro.experiments.figure4.run_figure4`
CO        §5.4 colocation                :func:`repro.experiments.colocation.run_colocation`
========  =============================  ==========================
"""

from repro.experiments.ablations import (
    ablate_mechanism_split,
    ablate_platform,
    ablate_precompute_churn,
    ablate_ull_runqueue_count,
)
from repro.experiments.ablations_energy import ablate_skip_vs_coalesce
from repro.experiments.colocation import (
    ColocationResult,
    ColocationRun,
    run_colocation,
)
from repro.experiments.pool_study import PoolStudyResult, run_pool_study
from repro.experiments.registry import (
    ExperimentConfig,
    ExperimentResult,
    ExperimentSpec,
    all_specs,
    experiment_ids,
    get,
    register,
)
from repro.experiments.slo import SloResult, run_slo
from repro.experiments.figure2 import Figure2Result, run_figure2
from repro.experiments.figure3 import SETUPS, Figure3Result, run_figure3
from repro.experiments.figure4 import FIGURE4_SCENARIOS, Figure4Result, run_figure4
from repro.experiments.overhead import OverheadResult, run_overhead
from repro.experiments.runner import (
    DEFAULT_REPETITIONS,
    VCPU_SWEEP,
    RepeatedMeasurement,
    repeat,
)
from repro.experiments.table1 import (
    TABLE1_SCENARIOS,
    ScenarioCell,
    Table1Result,
    run_table1,
)

__all__ = [
    "ablate_mechanism_split",
    "ablate_platform",
    "ablate_precompute_churn",
    "ablate_ull_runqueue_count",
    "ablate_skip_vs_coalesce",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentSpec",
    "all_specs",
    "experiment_ids",
    "get",
    "register",
    "PoolStudyResult",
    "run_pool_study",
    "SloResult",
    "run_slo",
    "ColocationResult",
    "ColocationRun",
    "run_colocation",
    "Figure2Result",
    "run_figure2",
    "SETUPS",
    "Figure3Result",
    "run_figure3",
    "FIGURE4_SCENARIOS",
    "Figure4Result",
    "run_figure4",
    "OverheadResult",
    "run_overhead",
    "DEFAULT_REPETITIONS",
    "VCPU_SWEEP",
    "RepeatedMeasurement",
    "repeat",
    "TABLE1_SCENARIOS",
    "ScenarioCell",
    "Table1Result",
    "run_table1",
]
