"""Simulated synchronization resources.

The hypervisor model needs a lock around the resume path (the paper's
step 2 acquires a lock "to prevent a parallel resume of another paused
sandbox").  These primitives operate in *simulated* time: acquiring a
contended lock suspends the acquiring process until release.

For the common non-process code paths (direct event callbacks) the lock
also exposes a synchronous try/acquire API with explicit owners, which
the pause/resume paths use together with charged lock-operation costs
from the cost model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.engine import Engine
from repro.sim.errors import ResourceError
from repro.sim.process import Waitable


class SimLock:
    """A FIFO mutual-exclusion lock in simulated time."""

    def __init__(self, engine: Engine, label: str = "lock") -> None:
        self._engine = engine
        self.label = label
        self._owner: Optional[Any] = None
        self._waiters: Deque[Waitable] = deque()
        self.acquisitions = 0
        self.contentions = 0

    @property
    def locked(self) -> bool:
        return self._owner is not None

    @property
    def owner(self) -> Optional[Any]:
        return self._owner

    def try_acquire(self, owner: Any) -> bool:
        """Immediately take the lock if free; never blocks."""
        if owner is None:
            raise ResourceError(f"{self.label}: owner must not be None")
        if self._owner is None:
            self._owner = owner
            self.acquisitions += 1
            return True
        return False

    def acquire_wait(self, owner: Any) -> Waitable:
        """Return a waitable fired once *owner* holds the lock.

        If the lock is free, the waitable fires at the current instant.
        Otherwise the owner joins a FIFO queue.
        """
        gate = Waitable(self._engine, label=f"{self.label}:acquire")
        if self.try_acquire(owner):
            gate.fire(owner)
        else:
            self.contentions += 1
            gate.last_value = owner  # stash pending owner for release()
            self._waiters.append(gate)
        return gate

    def release(self, owner: Any) -> None:
        """Release the lock; hands off to the next FIFO waiter if any."""
        if self._owner is None:
            raise ResourceError(f"{self.label}: release of an unheld lock")
        if self._owner is not owner and self._owner != owner:
            raise ResourceError(
                f"{self.label}: release by non-owner {owner!r} "
                f"(held by {self._owner!r})"
            )
        if self._waiters:
            gate = self._waiters.popleft()
            self._owner = gate.last_value
            self.acquisitions += 1
            gate.fire(self._owner)
        else:
            self._owner = None

    def __repr__(self) -> str:
        state = f"held by {self._owner!r}" if self._owner is not None else "free"
        return f"SimLock({self.label!r}, {state}, waiters={len(self._waiters)})"


class SimSemaphore:
    """Counting semaphore in simulated time (FIFO wakeups)."""

    def __init__(self, engine: Engine, permits: int, label: str = "sem") -> None:
        if permits < 0:
            raise ResourceError(f"{label}: negative permit count {permits}")
        self._engine = engine
        self.label = label
        self._permits = permits
        self._waiters: Deque[Waitable] = deque()

    @property
    def available(self) -> int:
        return self._permits

    def try_acquire(self) -> bool:
        if self._permits > 0:
            self._permits -= 1
            return True
        return False

    def acquire_wait(self) -> Waitable:
        gate = Waitable(self._engine, label=f"{self.label}:acquire")
        if self.try_acquire():
            gate.fire(None)
        else:
            self._waiters.append(gate)
        return gate

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().fire(None)
        else:
            self._permits += 1

    def __repr__(self) -> str:
        return (
            f"SimSemaphore({self.label!r}, permits={self._permits}, "
            f"waiters={len(self._waiters)})"
        )
