"""Seeded random-number streams for deterministic experiments.

Each subsystem takes its own named stream derived from a single root
seed, so adding randomness to one component never perturbs the draws of
another — the standard trick for reproducible discrete-event studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A family of independent :class:`random.Random` streams.

    Streams are derived as ``sha256(root_seed || name)`` so the mapping
    from (seed, name) to stream is stable across Python versions and
    process runs.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the named stream."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.root_seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngRegistry":
        """Derive a child registry (e.g. per-repetition) from this one."""
        digest = hashlib.sha256(f"{self.root_seed}|fork|{salt}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:
        return f"RngRegistry(root_seed={self.root_seed}, streams={sorted(self._streams)})"
