"""Time units for the simulation kernel.

All simulated time in this project is carried as an **integer number of
nanoseconds**.  Integers keep event ordering exact (no floating-point
drift across long runs) and make it trivial to express the paper's
nanosecond-scale operations (a HORSE resume is ~150 ns) next to its
second-scale ones (a cold boot is ~1.5 s) without loss of precision.

The helpers below convert human-friendly quantities into nanoseconds and
back.  They accept floats on input (``microseconds(1.1)``) but always
return ``int`` nanoseconds, rounding to the nearest nanosecond.
"""

from __future__ import annotations

NANOSECOND: int = 1
MICROSECOND: int = 1_000
MILLISECOND: int = 1_000_000
SECOND: int = 1_000_000_000


def nanoseconds(value: float) -> int:
    """Return *value* nanoseconds as integer simulated time."""
    return round(value)


def microseconds(value: float) -> int:
    """Return *value* microseconds as integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Return *value* milliseconds as integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Return *value* seconds as integer nanoseconds."""
    return round(value * SECOND)


def to_microseconds(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns / MICROSECOND


def to_milliseconds(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / MILLISECOND


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / SECOND


def format_duration(ns: int) -> str:
    """Render a duration with the most natural unit, e.g. ``'1.10 us'``.

    Used by reports and experiment tables; the unit breakpoints follow
    common systems-paper conventions (ns below 1 us, us below 1 ms, ...).
    """
    if ns < 0:
        return "-" + format_duration(-ns)
    if ns < MICROSECOND:
        return f"{ns} ns"
    if ns < MILLISECOND:
        return f"{ns / MICROSECOND:.2f} us"
    if ns < SECOND:
        return f"{ns / MILLISECOND:.2f} ms"
    return f"{ns / SECOND:.2f} s"
