"""Events: the unit of work of the simulation engine.

An :class:`Event` is a callback bound to a simulated time.  Events are
totally ordered by ``(time, priority, sequence)``:

* ``time`` — when the event fires;
* ``priority`` — ties at the same instant fire lowest-priority-number
  first, which lets e.g. a scheduler-tick event run before user work
  scheduled at the same nanosecond;
* ``sequence`` — a monotonically increasing counter that makes ordering
  of otherwise-equal events deterministic (FIFO) and keeps comparisons
  from ever reaching the (uncomparable) callback.

``Event`` is deliberately a plain ``__slots__`` class rather than a
dataclass: the engine allocates one per scheduled callback, which makes
it the hottest object in the whole simulator.  Slots cut per-instance
memory roughly in half and make attribute access a fixed-offset load,
and the hand-written comparison methods avoid the tuple the generated
dataclass ordering would build on every heap sift.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class EventPriority(enum.IntEnum):
    """Tie-break classes for events firing at the same instant.

    Lower values fire first.  The gaps leave room for experiment code to
    define intermediate classes without renumbering.
    """

    INTERRUPT = 0
    #: Infrastructure failures (node crashes, recoveries).  A crash
    #: scheduled at the same nanosecond as user work must strike first,
    #: so the work observes the failed world — otherwise replay order
    #: would depend on insertion order alone.
    FAILURE = 5
    SCHEDULER = 10
    NORMAL = 20
    BACKGROUND = 30


class Event:
    """A scheduled callback; ordered by (time, priority, sequence).

    ``transient`` marks events whose handle the scheduling call site
    discards (process sleeps, waitable wake-ups, spawn/join hops): the
    engine is free to recycle those objects through its free-list after
    they fire, because no live reference can observe the reuse.  Events
    scheduled the ordinary way are never recycled, so holding the return
    value of :meth:`Engine.schedule_at` and cancelling it later is
    always safe.  ``generation`` counts reuses of one object — the
    pooling property tests pin that a recycled event never carries its
    previous occupant's callback.
    """

    __slots__ = (
        "time",
        "priority",
        "sequence",
        "callback",
        "cancelled",
        "label",
        "transient",
        "generation",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        sequence: int,
        callback: Optional[Callable[[], None]],
        cancelled: bool = False,
        label: str = "",
        transient: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.cancelled = cancelled
        self.label = label
        self.transient = transient
        self.generation = 0

    # ------------------------------------------------------------------
    # Ordering — (time, priority, sequence); sequence is unique, so two
    # distinct events never compare equal and the callback never enters
    # a comparison.
    # ------------------------------------------------------------------
    def sort_key(self) -> tuple:
        """The total-order key ``(time, priority, sequence)``."""
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.sequence < other.sequence

    def __le__(self, other: "Event") -> bool:
        return not other.__lt__(self)

    def __gt__(self, other: "Event") -> bool:
        return other.__lt__(self)

    def __ge__(self, other: "Event") -> bool:
        return not self.__lt__(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.priority == other.priority
            and self.sequence == other.sequence
        )

    def __hash__(self) -> int:
        return hash((self.time, self.priority, self.sequence))

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is lazy — the event stays in the scheduler but
        becomes a no-op.  This is O(1) and avoids queue surgery.
        """
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__name__", "<callback>")
        return f"Event(t={self.time}, prio={self.priority}, {name}, {state})"
