"""Events: the unit of work of the simulation engine.

An :class:`Event` is a callback bound to a simulated time.  Events are
totally ordered by ``(time, priority, sequence)``:

* ``time`` — when the event fires;
* ``priority`` — ties at the same instant fire lowest-priority-number
  first, which lets e.g. a scheduler-tick event run before user work
  scheduled at the same nanosecond;
* ``sequence`` — a monotonically increasing counter that makes ordering
  of otherwise-equal events deterministic (FIFO) and keeps comparisons
  from ever reaching the (uncomparable) callback.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


class EventPriority(enum.IntEnum):
    """Tie-break classes for events firing at the same instant.

    Lower values fire first.  The gaps leave room for experiment code to
    define intermediate classes without renumbering.
    """

    INTERRUPT = 0
    #: Infrastructure failures (node crashes, recoveries).  A crash
    #: scheduled at the same nanosecond as user work must strike first,
    #: so the work observes the failed world — otherwise replay order
    #: would depend on insertion order alone.
    FAILURE = 5
    SCHEDULER = 10
    NORMAL = 20
    BACKGROUND = 30


@dataclass(order=True)
class Event:
    """A scheduled callback; ordered by (time, priority, sequence)."""

    time: int
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is lazy — the event stays in the heap but becomes a
        no-op.  This is O(1) and avoids heap surgery.
        """
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.callback, "__name__", "<callback>")
        return f"Event(t={self.time}, prio={self.priority}, {name}, {state})"
