"""The discrete-event simulation engine.

A classic event-heap kernel: callers schedule callbacks at future
simulated instants; :meth:`Engine.run` pops events in time order,
advances the clock, and invokes them.  All higher layers (hypervisor,
FaaS platform, experiments) are built on this single primitive plus the
generator-based processes in :mod:`repro.sim.process`.

Determinism contract: given the same schedule calls in the same order
and the same seeded RNG streams, a run is bit-for-bit reproducible.
Nothing in the engine consults wall-clock time or unseeded randomness.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Optional

from repro.sim.clock import SimClock
from repro.sim.errors import EngineStoppedError, SchedulingInPastError
from repro.sim.event import Event, EventPriority


class Engine:
    """Event-heap discrete-event simulation engine."""

    def __init__(self, start_time: int = 0) -> None:
        self.clock = SimClock(start_time)
        self._heap: list[Event] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        #: callbacks invoked as f(event) after each executed event —
        #: how the repro.check invariant registry observes every step.
        self._watchers: list[Callable[[Event], None]] = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Number of events the engine has fired so far."""
        return self._events_executed

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute simulated time *when*."""
        if self._stopped:
            raise EngineStoppedError("cannot schedule on a stopped engine")
        if when < self.clock.now:
            raise SchedulingInPastError(
                f"cannot schedule at {when}, now is {self.clock.now}"
            )
        event = Event(
            time=when,
            priority=int(priority),
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> Event:
        """Schedule *callback* after *delay* nanoseconds from now."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay}")
        return self.schedule_at(self.clock.now + delay, callback, priority, label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the heap drains, *until* is reached, or
        *max_events* have fired.  Returns the number of events executed
        by this call.

        When *until* is given, the clock is left exactly at *until* even
        if the heap drains earlier, so back-to-back ``run(until=...)``
        calls tile time contiguously.
        """
        if self._stopped:
            raise EngineStoppedError("engine has been stopped")
        executed = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                event = heapq.heappop(self._heap)
                self.clock.advance_to(event.time)
                event.callback()
                executed += 1
                self._events_executed += 1
                if self._watchers:
                    for watcher in self._watchers:
                        watcher(event)
        finally:
            self._running = False
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return executed

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if none left."""
        return self.run(max_events=1) == 1

    def peek_next_time(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending_events(self) -> Iterable[Event]:
        """Snapshot of non-cancelled pending events (unsorted)."""
        return [event for event in self._heap if not event.cancelled]

    def add_watcher(self, watcher: Callable[[Event], None]) -> None:
        """Call *watcher(event)* after every executed event.

        Watchers must not schedule or mutate simulation state; they
        exist for cross-cutting observation (invariant checking, test
        assertions).  An idle engine pays nothing for an empty list.
        """
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Callable[[Event], None]) -> None:
        """Detach a previously added watcher (no-op if absent)."""
        if watcher in self._watchers:
            self._watchers.remove(watcher)

    def stop(self) -> None:
        """Permanently stop the engine; further scheduling raises."""
        self._stopped = True
        self._heap.clear()

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.clock.now}, pending={len(self._heap)}, "
            f"executed={self._events_executed})"
        )
