"""The discrete-event simulation engine.

Callers schedule callbacks at future simulated instants;
:meth:`Engine.run` pops events in time order, advances the clock, and
invokes them.  All higher layers (hypervisor, FaaS platform,
experiments) are built on this single primitive plus the
generator-based processes in :mod:`repro.sim.process`.

The pending-event set is pluggable (``Engine(scheduler="heap")`` or
``"calendar"`` — see :mod:`repro.sim.schedulers`): a binary heap, or a
calendar queue with amortized O(1) push/pop for throughput-bound runs.
Both drain events in the identical total order, so the choice never
changes results, only wall-clock.  The process-wide default comes from
:func:`set_default_scheduler` or the ``REPRO_SIM_SCHEDULER``
environment variable, and is the calendar queue: it drains the chaos
profile >2x faster than the heap (``BENCH_sim_kernel.json``) and the
cross-scheduler identity is CI-enforced, so the heap survives as the
reference implementation the calendar is diffed against.

Hot-path design (see DESIGN.md §10): events are ``__slots__`` objects;
events whose handles the call site discards (process sleeps, wake-ups)
are marked *transient* and recycled through a free-list instead of
being reallocated; and :meth:`Engine.run` keeps a no-watcher dispatch
branch whose per-event work is one scheduler pop, one clock store, and
the callback itself.

Determinism contract: given the same schedule calls in the same order
and the same seeded RNG streams, a run is bit-for-bit reproducible —
whichever scheduler is selected.  Nothing in the engine consults
wall-clock time or unseeded randomness.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional

from repro.sim.clock import SimClock
from repro.sim.errors import EngineStoppedError, SchedulingInPastError
from repro.sim.event import Event, EventPriority
from repro.sim.schedulers import make_scheduler, scheduler_kinds

#: Upper bound on pooled Event objects per engine.  Beyond this the
#: free-list stops growing and surplus events fall to the allocator.
_POOL_CAP = 4096

_ENV_SCHEDULER = "REPRO_SIM_SCHEDULER"

#: Plain-int default for schedule_* priorities.  EventPriority is an
#: IntEnum; using the member itself as the default would make every
#: default-priority call pay an ``int()`` conversion in schedule_at.
_PRIORITY_NORMAL = int(EventPriority.NORMAL)

_default_scheduler = os.environ.get(_ENV_SCHEDULER, "calendar")
if _default_scheduler not in scheduler_kinds():
    _default_scheduler = "calendar"


def set_default_scheduler(kind: str) -> str:
    """Set the scheduler new :class:`Engine` instances use by default.

    Returns the previous default.  Engines built with an explicit
    ``scheduler=`` argument are unaffected.
    """
    global _default_scheduler
    if kind not in scheduler_kinds():
        raise ValueError(
            f"unknown scheduler {kind!r}; choose from {scheduler_kinds()}"
        )
    previous = _default_scheduler
    _default_scheduler = kind
    return previous


def default_scheduler() -> str:
    """The scheduler kind new engines currently default to."""
    return _default_scheduler


class Engine:
    """Discrete-event simulation engine with pluggable schedulers."""

    def __init__(self, start_time: int = 0, scheduler: Optional[str] = None) -> None:
        self.clock = SimClock(start_time)
        self._sched = make_scheduler(scheduler or _default_scheduler)
        # Bound method cached once: the scheduler never changes after
        # construction and every schedule_* call pushes exactly once.
        self._push = self._sched.push
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._pool: List[Event] = []
        self._pool_cap = _POOL_CAP
        #: callbacks invoked as f(event) after each executed event —
        #: how the repro.check invariant registry observes every step.
        self._watchers: list[Callable[[Event], None]] = []
        # Engines built inside a repro.obs.profile.profiling() block
        # route dispatch through the profiled drain; everyone else pays
        # one None check per run() call.  Imported lazily to keep the
        # sim kernel import-independent of the obs package.
        from repro.obs.profile import current_profiler

        self._profiler = current_profiler()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.clock.now

    @property
    def scheduler(self) -> str:
        """The scheduler kind this engine runs on ("heap"/"calendar")."""
        return self._sched.kind

    @property
    def events_executed(self) -> int:
        """Number of events the engine has fired so far."""
        return self._events_executed

    def schedule_at(
        self,
        when: int,
        callback: Callable[[], None],
        priority: int = _PRIORITY_NORMAL,
        label: str = "",
        transient: bool = False,
    ) -> Event:
        """Schedule *callback* at absolute simulated time *when*.

        ``transient=True`` is a promise that the caller discards the
        returned handle: the engine may then recycle the Event object
        through its free-list after the event fires or is skipped.
        Never retain (or cancel) a transient event past its instant.
        """
        if self._stopped:
            raise EngineStoppedError("cannot schedule on a stopped engine")
        if when < self.clock._now:
            raise SchedulingInPastError(
                f"cannot schedule at {when}, now is {self.clock._now}"
            )
        if type(priority) is not int:
            priority = int(priority)
        sequence = self._sequence
        self._sequence = sequence + 1
        if transient and self._pool:
            event = self._pool.pop()
            event.time = when
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
            event.label = label
            event.generation += 1
        else:
            event = Event(
                time=when,
                priority=priority,
                sequence=sequence,
                callback=callback,
                label=label,
                transient=transient,
            )
        self._push(event)
        return event

    def schedule_after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = _PRIORITY_NORMAL,
        label: str = "",
        transient: bool = False,
    ) -> Event:
        """Schedule *callback* after *delay* nanoseconds from now."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay}")
        return self.schedule_at(
            self.clock._now + delay, callback, priority, label, transient
        )

    def schedule_transient_after(
        self,
        delay: int,
        callback: Callable[[], None],
        priority: int = 20,
        label: str = "",
    ) -> None:
        """Lean transient scheduling for the process-layer hot path.

        Equivalent to ``schedule_after(..., transient=True)`` with the
        handle discarded, minus the per-call overhead that path pays:
        no Event returned, no enum coercion (*priority* must already be
        a plain int), one combined bounds check.  Every simulated
        sleep, wake-up, and spawn/join hop funnels through here, which
        is why it exists.
        """
        if delay < 0 or self._stopped:
            if self._stopped:
                raise EngineStoppedError("cannot schedule on a stopped engine")
            raise SchedulingInPastError(f"negative delay {delay}")
        when = self.clock._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = when
            event.priority = priority
            event.sequence = sequence
            event.callback = callback
            event.cancelled = False
            event.label = label
            event.generation += 1
        else:
            event = Event(
                time=when,
                priority=priority,
                sequence=sequence,
                callback=callback,
                label=label,
                transient=True,
            )
        self._push(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, *until* is reached, or
        *max_events* have fired.  Returns the number of events executed
        by this call.

        When *until* is given, the clock is left exactly at *until* even
        if the queue drains earlier, so back-to-back ``run(until=...)``
        calls tile time contiguously.
        """
        if self._stopped:
            raise EngineStoppedError("engine has been stopped")
        executed = 0
        self._running = True
        clock = self.clock
        pop_due = self._sched.pop_due
        try:
            if self._profiler is not None and max_events is None:
                executed = self._run_profiled(until, self._profiler)
            elif max_events is None and not self._watchers:
                # Fast path: no step budget, no observers.  Each
                # scheduler ships its own inlined dispatch loop.
                executed = self._sched.drain(self, until)
            else:
                while True:
                    if max_events is not None and executed >= max_events:
                        break
                    event = pop_due(until)
                    if event is None:
                        break
                    if event.cancelled:
                        self._recycle(event)
                        continue
                    clock.advance_to(event.time)
                    event.callback()
                    executed += 1
                    self._events_executed += 1
                    for watcher in self._watchers:
                        watcher(event)
                    self._recycle(event)
        finally:
            self._running = False
        if until is not None and clock._now < until:
            clock.advance_to(until)
        return executed

    def _run_profiled(self, until: Optional[int], profiler) -> int:
        """Dispatch loop with per-event subsystem attribution.

        Mirrors the watcher-capable slow path (never the schedulers'
        inlined drains) so every event passes through one place where
        its label, simulated interval, and callback wall time can be
        recorded.  Sample counts and sim-ns are deterministic; wall-ns
        is measured but kept out of the deterministic artifacts.
        """
        import time as _time

        executed = 0
        clock = self.clock
        pop_due = self._sched.pop_due
        watchers = self._watchers
        record = profiler.record
        perf = _time.perf_counter_ns
        last_sim = clock._now
        while True:
            t0 = perf()
            event = pop_due(until)
            profiler.scheduler_wall_ns += perf() - t0
            if event is None:
                break
            if event.cancelled:
                profiler.record_cancelled()
                self._recycle(event)
                continue
            when = event.time
            clock.advance_to(when)
            label = event.label
            t0 = perf()
            event.callback()
            wall = perf() - t0
            executed += 1
            self._events_executed += 1
            record(label, when - last_sim, wall)
            last_sim = when
            if watchers:
                t0 = perf()
                for watcher in watchers:
                    watcher(event)
                profiler.watcher_wall_ns += perf() - t0
            self._recycle(event)
        return executed

    def _recycle(self, event: Event) -> None:
        """Return a fired/skipped transient event to the free-list."""
        if event.transient and len(self._pool) < _POOL_CAP:
            event.callback = None
            self._pool.append(event)

    def step(self) -> bool:
        """Fire exactly one pending event.  Returns False if none left."""
        return self.run(max_events=1) == 1

    def peek_next_time(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or None."""
        sched = self._sched
        while True:
            event = sched.peek()
            if event is None:
                return None
            if not event.cancelled:
                return event.time
            sched.pop_due(None)
            self._recycle(event)

    def pending_events(self) -> List[Event]:
        """Sorted snapshot of non-cancelled pending events.

        The snapshot is ordered by the firing order ``(time, priority,
        sequence)`` regardless of which scheduler backs the engine —
        callers (invariant checkers, tests, debuggers) see the exact
        sequence the engine would drain, never raw heap or bucket
        layout.  Mutating the returned list does not affect the engine.

        Sequence numbers are engine-local, so this ordering is only
        meaningful *within* one engine.  For a merged view across the
        per-shard engines of a sharded run, use
        :func:`repro.sim.sharding.merged_pending`, which pins the
        cross-shard tie-break at equal ``(time, priority)`` to the
        shard id (then the per-shard sequence) — comparing raw
        sequences across engines would be arbitrary.
        """
        return sorted(
            (event for event in self._sched.iter_pending() if not event.cancelled),
        )

    def add_watcher(self, watcher: Callable[[Event], None]) -> None:
        """Call *watcher(event)* after every executed event.

        Watchers must not schedule or mutate simulation state; they
        exist for cross-cutting observation (invariant checking, test
        assertions).  An idle engine pays nothing for an empty list —
        the no-watcher dispatch branch never consults it.
        """
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: Callable[[Event], None]) -> None:
        """Detach a previously added watcher (no-op if absent)."""
        if watcher in self._watchers:
            self._watchers.remove(watcher)

    def stop(self) -> None:
        """Permanently stop the engine; further scheduling raises."""
        self._stopped = True
        self._sched.clear()
        self._pool.clear()

    def __repr__(self) -> str:
        return (
            f"Engine(now={self.clock.now}, scheduler={self._sched.kind}, "
            f"pending={len(self._sched)}, executed={self._events_executed})"
        )
