"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator that *yields* commands to
the engine: sleep for a delay, wait on a :class:`Waitable`, or spawn a
child process and wait for it.  This gives experiment code a readable,
sequential style::

    def client(env):
        yield Sleep(microseconds(5))
        response = yield Wait(server_done)
        ...

The engine resumes the generator when the yielded condition is met.
Processes are cooperative and single-threaded; all concurrency is
simulated, which keeps runs deterministic.

Hot-path notes: every sleep, wake-up, spawn hop, and join hop becomes
one engine event, which makes this module the engine's biggest caller.
All of those events are scheduled *transient* — the handles are
discarded here, so the engine recycles the Event objects through its
free-list — and the per-event labels are precomputed per process /
waitable instead of being formatted per schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.errors import ProcessError

ProcessGenerator = Generator["Command", Any, Any]


class Command:
    """Base class for values a process may yield to the engine."""

    __slots__ = ()


@dataclass
class Sleep(Command):
    """Suspend the process for *delay* nanoseconds."""

    delay: int


@dataclass
class Wait(Command):
    """Suspend the process until *waitable* fires.

    The value passed to the waitable's :meth:`Waitable.fire` becomes the
    result of the ``yield`` expression.
    """

    waitable: "Waitable"


@dataclass
class Spawn(Command):
    """Start a child process; the yield returns the child Process."""

    generator: ProcessGenerator
    label: str = ""


@dataclass
class Join(Command):
    """Suspend until *process* completes; yield returns its result."""

    process: "Process"


class Waitable:
    """A one-shot or repeating signal processes can wait on.

    ``fire(value)`` wakes every currently-waiting process with *value*.
    A waitable may fire multiple times; each fire releases the waiters
    registered since the previous fire.
    """

    __slots__ = ("_engine", "_label", "_wake_label", "_waiters",
                 "fire_count", "last_value")

    def __init__(self, engine: Engine, label: str = "") -> None:
        self._engine = engine
        self._label = label
        self._wake_label = f"wake:{label}"
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def add_waiter(self, wake: Callable[[Any], None]) -> None:
        self._waiters.append(wake)

    def fire(self, value: Any = None) -> None:
        """Wake all current waiters with *value* at the current instant."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        schedule = self._engine.schedule_transient_after
        for wake in waiters:
            # Wake via the event queue so ordering with other same-instant
            # events stays deterministic.
            schedule(0, lambda wake=wake: wake(value), label=self._wake_label)

    def __repr__(self) -> str:
        return f"Waitable({self._label!r}, waiters={len(self._waiters)})"


class Process:
    """A running simulated process driving a generator to completion."""

    __slots__ = ("_engine", "_generator", "label", "_sleep_label", "done",
                 "result", "error", "_completion", "_started")

    def __init__(self, engine: Engine, generator: ProcessGenerator, label: str = "") -> None:
        self._engine = engine
        self._generator = generator
        self.label = label or getattr(generator, "__name__", "process")
        self._sleep_label = f"sleep:{self.label}"
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._completion = Waitable(engine, label=f"{self.label}:done")
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "Process":
        """Begin executing the generator at the current instant."""
        if self._started:
            raise ProcessError(f"process {self.label!r} already started")
        self._started = True
        self._engine.schedule_transient_after(
            0, lambda: self._advance(None), label=f"start:{self.label}"
        )
        return self

    def completion(self) -> Waitable:
        """Waitable fired (with the process result) when it finishes."""
        return self._completion

    # ------------------------------------------------------------------
    def _advance(self, send_value: Any) -> None:
        """Resume the generator, interpret the next yielded command."""
        try:
            command = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # surface user bugs, don't swallow
            self.error = exc
            self.done = True
            self._completion.fire(None)
            raise
        self._dispatch(command)

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, Sleep):
            if command.delay < 0:
                raise ProcessError(f"{self.label}: negative sleep {command.delay}")
            self._engine.schedule_transient_after(
                command.delay, lambda: self._advance(None), label=self._sleep_label
            )
        elif isinstance(command, Wait):
            command.waitable.add_waiter(self._advance)
        elif isinstance(command, Spawn):
            child = Process(self._engine, command.generator, label=command.label)
            child.start()
            self._engine.schedule_transient_after(0, lambda: self._advance(child))
        elif isinstance(command, Join):
            if command.process.done:
                self._engine.schedule_transient_after(
                    0, lambda: self._advance(command.process.result)
                )
            else:
                command.process.completion().add_waiter(self._advance)
        else:
            raise ProcessError(
                f"{self.label}: yielded {command!r}, expected a sim Command"
            )

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self._completion.fire(result)

    def __repr__(self) -> str:
        state = "done" if self.done else ("running" if self._started else "new")
        return f"Process({self.label!r}, {state})"


def spawn(engine: Engine, generator: ProcessGenerator, label: str = "") -> Process:
    """Convenience: create and immediately start a process."""
    return Process(engine, generator, label=label).start()
