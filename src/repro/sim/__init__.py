"""Discrete-event simulation kernel.

This package is the substrate everything else runs on: an integer-
nanosecond clock, an event heap, generator-based processes, simulated
locks/semaphores, and seeded RNG streams.  See DESIGN.md §3.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Engine
from repro.sim.errors import (
    EngineStoppedError,
    ProcessError,
    ResourceError,
    SchedulingInPastError,
    SimError,
)
from repro.sim.event import Event, EventPriority
from repro.sim.process import Join, Process, Sleep, Spawn, Wait, Waitable, spawn
from repro.sim.resources import SimLock, SimSemaphore
from repro.sim.rng import RngRegistry
from repro.sim.sharding import (
    assign_cells,
    merge_records,
    merged_pending,
    windowed_run,
)
from repro.sim.tracing import NULL_TRACE, TraceEvent, TraceLog
from repro.sim.units import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_duration,
    microseconds,
    milliseconds,
    nanoseconds,
    seconds,
    to_microseconds,
    to_milliseconds,
    to_seconds,
)

__all__ = [
    "SimClock",
    "Engine",
    "SimError",
    "SchedulingInPastError",
    "EngineStoppedError",
    "ProcessError",
    "ResourceError",
    "Event",
    "EventPriority",
    "Process",
    "Sleep",
    "Wait",
    "Spawn",
    "Join",
    "Waitable",
    "spawn",
    "SimLock",
    "SimSemaphore",
    "RngRegistry",
    "assign_cells",
    "merge_records",
    "merged_pending",
    "windowed_run",
    "NULL_TRACE",
    "TraceEvent",
    "TraceLog",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "nanoseconds",
    "microseconds",
    "milliseconds",
    "seconds",
    "to_microseconds",
    "to_milliseconds",
    "to_seconds",
    "format_duration",
]
