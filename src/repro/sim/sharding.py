"""Sharded parallel execution: per-shard engines, conservative lookahead.

One Python process caps the reproduction at a single core's event rate.
This module is the kernel-level half of the sharded execution layer
(DESIGN.md §12): a cluster run is partitioned into independent *cells*
(failure domains / host groups), each simulated by its own
:class:`~repro.sim.engine.Engine`, and the cells are distributed over
worker processes.  Three primitives live here:

* :func:`assign_cells` — the deterministic cell→worker partition.  The
  assignment is round-robin over the sorted cell list, so it is a pure
  function of ``(cell count, worker count)`` and never depends on
  scheduling order.
* :func:`windowed_run` — the conservative-lookahead driver for one
  shard engine.  Cross-shard messages enter a cell only at gateway
  dispatch, whose minimum latency *L* is known; therefore once every
  shard has reached global time *W*, all deliveries below ``W + L`` are
  already known and a shard may safely simulate that far.  The driver
  releases the delivery stream window by window and advances the engine
  with ``run(until=horizon)``.  When the next delivery is further than
  one lookahead away it fast-forwards the horizon to that delivery's
  instant — the classic null-message optimization: a delivery stamped
  *t* proves its sender had reached ``t - L``, so nothing can arrive
  before *t*.
* :func:`merge_records` / :func:`merged_pending` — the deterministic
  merge.  Per-shard streams are combined in ascending ``(time, shard,
  per-shard index)`` order (for pending events: ``(time, priority,
  shard, sequence)``), a total order pinned by tests so the merged view
  is byte-identical for any worker count.

Determinism contract: every function here is a pure function of its
inputs.  Worker count changes *where* a cell simulates, never *what* it
simulates, so the merged trace is invariant under the partition — the
shard-invariance property suite (``tests/sim/test_shard_invariance.py``)
enforces exactly that.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.sim.engine import Engine
from repro.sim.event import Event


def assign_cells(cells: int, shards: int) -> Tuple[Tuple[int, ...], ...]:
    """Partition cell ids ``0..cells-1`` over *shards* workers.

    Round-robin by cell id: worker ``w`` owns cells ``w, w + shards,
    w + 2*shards, ...`` — deterministic, balanced to within one cell,
    and independent of anything but the two counts.  Workers that end
    up empty (more shards than cells) still appear, as empty tuples.
    """
    if cells < 0:
        raise ValueError(f"cell count must be >= 0, got {cells}")
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return tuple(
        tuple(range(worker, cells, shards)) for worker in range(shards)
    )


def windowed_run(
    engine: Engine,
    deliveries: Sequence[Tuple[int, Callable[[], None]]],
    lookahead_ns: int,
    drain_until: int,
    label: str = "shard-delivery",
) -> int:
    """Drive one shard engine under conservative-lookahead windows.

    *deliveries* is the cell's cross-shard input stream — ``(time,
    callback)`` pairs in ascending time order (gateway-dispatch
    deliveries, already stamped with the dispatch latency).  The driver
    alternates between releasing every delivery due inside the next
    window and running the engine to that window's horizon; after the
    last delivery it drains the engine to *drain_until* in one final
    run.  Returns the number of windows granted (the final drain
    included), which the sharded studies surface as a sanity statistic.

    The window advance is safe by the conservative argument: with
    lookahead *L*, a delivery stamped ``t`` was sent at ``t - L`` at the
    latest, so when the stream's next delivery is at ``t_next`` no
    unseen message can exist below ``t_next`` and the horizon may jump
    there directly instead of crawling in *L*-sized steps.
    """
    if lookahead_ns < 1:
        raise ValueError(f"lookahead must be >= 1 ns, got {lookahead_ns}")
    windows = 0
    horizon = engine.now
    index = 0
    count = len(deliveries)
    while index < count:
        next_time = deliveries[index][0]
        if next_time > horizon + lookahead_ns:
            horizon = next_time
        else:
            horizon += lookahead_ns
        while index < count and deliveries[index][0] <= horizon:
            when, callback = deliveries[index]
            engine.schedule_at(when, callback, label=label, transient=True)
            index += 1
        engine.run(until=horizon)
        windows += 1
    if drain_until > engine.now:
        engine.run(until=drain_until)
    else:
        engine.run()
    return windows + 1


def merge_records(per_shard: Sequence[Sequence[dict]]) -> List[dict]:
    """Merge per-shard record streams into one deterministic trace.

    Each shard's stream is a list of dicts carrying at least ``"t"``
    (sim time, ns) and ``"shard"`` (its shard id); streams are indexed
    by position in *per_shard*.  The merged order is ascending ``(t,
    shard, index within the shard's stream)`` — at equal timestamps the
    lower shard id goes first, and within one shard the stream's own
    order is preserved.  This tie-break is part of the determinism
    contract (pinned in the shard-invariance suite): it depends only on
    record content and shard numbering, never on which worker produced
    the stream or when it finished.
    """
    merged: List[Tuple[int, int, int, dict]] = []
    for shard, records in enumerate(per_shard):
        for index, record in enumerate(records):
            merged.append((record["t"], shard, index, record))
    merged.sort(key=lambda entry: entry[:3])
    return [entry[3] for entry in merged]


def merged_pending(
    engines: Iterable[Engine],
) -> List[Tuple[int, Event]]:
    """Sorted snapshot of pending events across a family of shard engines.

    The multi-shard analogue of :meth:`Engine.pending_events`: returns
    ``(shard_id, event)`` pairs for every non-cancelled pending event,
    ordered by ``(time, priority, shard_id, sequence)``.  Within one
    shard this is exactly the order that engine would drain; across
    shards, ties at equal ``(time, priority)`` are pinned to the lower
    shard id first — per-shard sequence counters are independent, so
    they can only break ties *inside* a shard, never between shards.
    """
    entries: List[Tuple[int, int, int, int, Event]] = []
    for shard, engine in enumerate(engines):
        for event in engine.pending_events():
            entries.append(
                (event.time, event.priority, shard, event.sequence, event)
            )
    entries.sort(key=lambda entry: entry[:4])
    return [(entry[2], entry[4]) for entry in entries]
