"""Structured simulation tracing.

A :class:`TraceLog` records typed events — ``(time_ns, subsystem,
operation, details)`` — from any instrumented component.  It is
entirely opt-in (paths take an optional log; ``NULL_TRACE`` swallows
everything at near-zero cost) and exists for the two things print-
debugging is bad at in a discrete-event system: reconstructing causal
order across subsystems, and asserting *sequences* in tests::

    log = TraceLog()
    log.record(engine.now, "pool", "acquire", function="fw")
    ...
    assert log.operations("pool") == ["acquire", "release"]
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded operation."""

    time_ns: int
    subsystem: str
    operation: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.time_ns:>12d}] {self.subsystem}.{self.operation} {detail}".rstrip()


class TraceLog:
    """Bounded event log with filtering helpers.

    When *capacity* is set, the log is a ring buffer: recording past
    capacity evicts the **oldest** event, so the log always holds the
    most recent window — what you want when diagnosing a failure at the
    end of a long run.  ``dropped`` counts the evicted events, so
    ``len(log) + log.dropped`` is the total ever recorded.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return True

    def record(
        self, time_ns: int, subsystem: str, operation: str, **details: Any
    ) -> None:
        if self.capacity is not None and len(self._events) >= self.capacity:
            self.dropped += 1  # deque(maxlen=...) evicts the oldest
        self._events.append(
            TraceEvent(
                time_ns=time_ns,
                subsystem=subsystem,
                operation=operation,
                details=details,
            )
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        subsystem: Optional[str] = None,
        operation: Optional[str] = None,
        since_ns: int = 0,
    ) -> List[TraceEvent]:
        return [
            event
            for event in self._events
            if (subsystem is None or event.subsystem == subsystem)
            and (operation is None or event.operation == operation)
            and event.time_ns >= since_ns
        ]

    def operations(self, subsystem: Optional[str] = None) -> List[str]:
        """Operation names in record order (for sequence assertions)."""
        return [e.operation for e in self.events(subsystem=subsystem)]

    def last(self) -> Optional[TraceEvent]:
        return self._events[-1] if self._events else None

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def render(self, limit: int = 50) -> str:
        """Human-readable tail of the log."""
        events = list(self._events)  # deques don't slice
        lines = [str(event) for event in events[-limit:]]
        if len(events) > limit:
            lines.insert(0, f"... ({len(events) - limit} earlier events)")
        return "\n".join(lines)


class _NullTraceLog(TraceLog):
    """Sink that drops everything; the default for untraced runs."""

    @property
    def enabled(self) -> bool:
        return False

    def record(self, time_ns, subsystem, operation, **details) -> None:
        return None


#: Shared do-nothing log; pass a real TraceLog to opt in.
NULL_TRACE = _NullTraceLog()
