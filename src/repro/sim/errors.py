"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro.sim` derives from :class:`SimError` so
callers can catch simulation-kernel failures without masking unrelated
bugs in experiment code.
"""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingInPastError(SimError):
    """An event was scheduled before the current simulated time."""


class EngineStoppedError(SimError):
    """An operation required a running engine but it has been stopped."""


class ProcessError(SimError):
    """A simulated process misbehaved (bad yield, double-start, ...)."""


class ResourceError(SimError):
    """A simulated resource was misused (double release, not owner, ...)."""
