"""Monotonic simulated clock.

The clock is owned by the event engine; everything else reads it.  It is
deliberately tiny: a single integer, advanced only by the engine, never
by user code.  Keeping advancement in one place is what makes the whole
simulation deterministic and replayable.
"""

from __future__ import annotations

from repro.sim.errors import SchedulingInPastError


class SimClock:
    """Integer-nanosecond monotonic clock for a simulation run."""

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def advance_to(self, when: int) -> None:
        """Move the clock forward to *when*.

        Only the event engine calls this.  Moving backwards is a bug in
        the engine's heap discipline and raises immediately.
        """
        if when < self._now:
            raise SchedulingInPastError(
                f"clock cannot move backwards: now={self._now}, target={when}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
