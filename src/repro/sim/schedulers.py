"""Pluggable event schedulers: binary heap and calendar queue.

The engine's pending-event set is the single hottest data structure in
the reproduction — every simulated sleep, wake-up, timer, and scheduler
tick passes through it once on the way in and once on the way out.  Two
implementations share one interface:

* :class:`HeapScheduler` — the classic ``heapq`` binary heap the seed
  engine shipped with.  O(log n) push/pop, with each sift performing
  Python-level :meth:`Event.__lt__` calls.
* :class:`CalendarScheduler` — a calendar queue (R. Brown, CACM 1988;
  the default scheduler of ns-3-class network simulators).  Events hash
  into time buckets of width *w*; each bucket keeps ``(-time,
  -priority, -sequence, event)`` tuples sorted descending-by-real-order
  so the bucket minimum pops from the tail in O(1) and inserts go
  through :func:`bisect.insort`, whose comparisons stay entirely in C
  (the negated integers decide before the event object is ever
  reached).  With the resize policy keeping occupancy near one event
  per bucket, push and pop are amortized O(1).

Determinism contract: both schedulers drain events in *exactly* the
same total order — ascending ``(time, priority, sequence)`` — so a run
is bit-for-bit identical whichever is selected.  The differential tests
in ``tests/sim/test_schedulers.py`` pin this, including a byte-identical
``repro chaos`` comparison.

Neither scheduler interprets ``Event.cancelled``; lazily-cancelled
events are popped and skipped by the engine, which owns the free-list
they are recycled into.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Iterator, List, Optional

from repro.sim.event import Event

#: Calendar sizing bounds.  The bucket count stays a power of two so the
#: bucket index is a mask, not a modulo.
_MIN_BUCKETS = 16
_MAX_BUCKETS = 1 << 20


class HeapScheduler:
    """Binary-heap scheduler — the seed engine's data structure."""

    __slots__ = ("_heap",)

    kind = "heap"

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        heappush(self._heap, event)

    def peek(self) -> Optional[Event]:
        """The minimum pending event (cancelled or not), or None."""
        heap = self._heap
        return heap[0] if heap else None

    def pop_due(self, limit: Optional[int]) -> Optional[Event]:
        """Pop and return the minimum event if its time is <= *limit*
        (no limit when None); otherwise leave it and return None."""
        heap = self._heap
        if not heap:
            return None
        if limit is not None and heap[0].time > limit:
            return None
        return heappop(heap)

    def drain(self, engine, until: Optional[int]) -> int:
        """The engine's no-watcher dispatch loop, specialized for the
        heap: pop due events, advance the clock, fire callbacks, and
        recycle transient events into the engine's free-list.  Pop
        order is monotone, so the clock store needs no backwards
        check.  Returns the number executed; the engine's lifetime
        counter is updated even when a callback raises.
        """
        heap = self._heap
        clock = engine.clock
        pool = engine._pool
        pop = heappop
        executed = 0
        try:
            while heap:
                if until is not None and heap[0].time > until:
                    break
                event = pop(heap)
                if event.cancelled:
                    if event.transient and len(pool) < engine._pool_cap:
                        event.callback = None
                        pool.append(event)
                    continue
                clock._now = event.time
                event.callback()
                executed += 1
                if event.transient and len(pool) < engine._pool_cap:
                    event.callback = None
                    pool.append(event)
        finally:
            engine._events_executed += executed
        return executed

    def iter_pending(self) -> Iterator[Event]:
        """All queued events, cancelled included, in no defined order."""
        return iter(self._heap)

    def clear(self) -> None:
        self._heap.clear()


class CalendarScheduler:
    """Calendar-queue scheduler: bucketed timing wheel, amortized O(1).

    Buckets are rotated through like months on a wall calendar: bucket
    ``i`` holds every event whose ``time // width`` hashes to ``i``
    (mod the bucket count), whatever "year" it belongs to.  ``_cursor``
    and ``_horizon`` track the bucket currently being drained and the
    exclusive upper time bound of its current-year window; an event in
    the cursor bucket is due only while its time is below the horizon,
    which is what keeps next-year events parked during this year's pass.

    The cursor only has to move backwards when a push lands *before*
    the current window (possible after the empty-calendar fast-forward
    below); :meth:`push` detects that and rewinds, preserving the
    invariant that the window never lies beyond the earliest pending
    event.  Pop correctness follows: when the cursor bucket's minimum
    is below the horizon it is the global minimum, because every
    earlier-window event would have hashed to an earlier (already
    drained) window.

    A pass that scans a whole year of buckets without finding a due
    event (a sparse calendar) falls back to a direct minimum search and
    teleports the window there, so advancing over dead time is O(bucket
    count), not O(dead time / width).
    """

    __slots__ = (
        "_buckets",
        "_mask",
        "_width",
        "_cursor",
        "_horizon",
        "_size",
        "_resize_enabled",
        "_epoch",
    )

    kind = "calendar"

    def __init__(self, width: int = 1024, buckets: int = _MIN_BUCKETS) -> None:
        if width < 1:
            raise ValueError(f"bucket width must be >= 1 ns, got {width}")
        if buckets < 1 or buckets & (buckets - 1):
            raise ValueError(f"bucket count must be a power of two, got {buckets}")
        self._width = width
        self._buckets: List[list] = [[] for _ in range(buckets)]
        self._mask = buckets - 1
        self._cursor = 0
        self._horizon = width
        self._size = 0
        self._resize_enabled = True
        #: bumped by every rebuild so cached bucket geometry (the drain
        #: loop's locals) can detect a mid-run resize and reload.
        self._epoch = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(self, event: Event) -> None:
        width = self._width
        time = event.time
        window = time // width
        insort(
            self._buckets[window & self._mask],
            (-time, -event.priority, -event.sequence, event),
        )
        size = self._size + 1
        self._size = size
        if time < self._horizon - width:
            # Landed before the current window (the cursor had fast-
            # forwarded over empty time): rewind so the pop scan cannot
            # skip it.
            self._cursor = window & self._mask
            self._horizon = (window + 1) * width
        if size > 2 * (self._mask + 1):
            self._maybe_resize()

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------
    def _position_at_min(self) -> Optional[list]:
        """Advance the window to the bucket holding the global minimum;
        return that bucket (its minimum is the tail entry)."""
        if self._size == 0:
            return None
        buckets = self._buckets
        mask = self._mask
        width = self._width
        cursor = self._cursor
        horizon = self._horizon
        for _ in range(mask + 2):
            bucket = buckets[cursor]
            if bucket and -bucket[-1][0] < horizon:
                self._cursor = cursor
                self._horizon = horizon
                return bucket
            cursor = (cursor + 1) & mask
            horizon += width
        # Scanned a full year without a due event: the calendar is
        # sparse.  Find the true minimum directly and jump to it.
        # Entries are negated, so the earliest real event is the *max*.
        head = max(bucket[-1] for bucket in buckets if bucket)
        window = (-head[0]) // width
        self._cursor = window & mask
        self._horizon = (window + 1) * width
        return buckets[self._cursor]

    def peek(self) -> Optional[Event]:
        """The minimum pending event (cancelled or not), or None."""
        bucket = self._position_at_min()
        return bucket[-1][3] if bucket is not None else None

    def pop_due(self, limit: Optional[int]) -> Optional[Event]:
        """Pop and return the minimum event if its time is <= *limit*
        (no limit when None); otherwise leave it and return None."""
        bucket = self._position_at_min()
        if bucket is None:
            return None
        if limit is not None and -bucket[-1][0] > limit:
            return None
        self._size -= 1
        event = bucket.pop()[3]
        if self._size < (self._mask + 1) // 4 and self._mask + 1 > _MIN_BUCKETS:
            self._maybe_resize()
        return event

    def drain(self, engine, until: Optional[int]) -> int:
        """The engine's no-watcher dispatch loop, specialized for the
        calendar: the common case — the cursor bucket holds the next
        due event — costs one list-tail peek before the callback fires.

        Bucket geometry (width/mask/buckets/cursor/horizon) is cached
        in locals; a push from inside a callback can trigger a rebuild,
        which is detected through ``_epoch`` and reloaded.  Callbacks
        can never *rewind* the window: they run with ``now`` inside the
        current window (``horizon - width <= now < horizon``), so every
        event they schedule (``time >= now``) lands in the cursor
        bucket or a later window, and the cursor only moves between
        callbacks.  Returns the number executed; the engine's lifetime
        counter is updated even when a callback raises.
        """
        clock = engine.clock
        pool = engine._pool
        pool_cap = engine._pool_cap
        executed = 0
        width = self._width
        mask = self._mask
        buckets = self._buckets
        cursor = self._cursor
        horizon = self._horizon
        epoch = self._epoch
        try:
            while self._size:
                bucket = buckets[cursor]
                if bucket:
                    head = bucket[-1]
                    time = -head[0]
                    if time < horizon:
                        if until is not None and time > until:
                            break
                        self._size -= 1
                        event = bucket.pop()[3]
                        if event.cancelled:
                            if event.transient and len(pool) < pool_cap:
                                event.callback = None
                                pool.append(event)
                            continue
                        clock._now = time
                        event.callback()
                        executed += 1
                        if event.transient and len(pool) < pool_cap:
                            event.callback = None
                            pool.append(event)
                        if self._epoch != epoch:
                            epoch = self._epoch
                            width = self._width
                            mask = self._mask
                            buckets = self._buckets
                            cursor = self._cursor
                            horizon = self._horizon
                        continue
                # Cursor bucket has nothing due this window: advance,
                # falling back to a direct jump on a sparse calendar.
                scanned = 0
                while True:
                    cursor = (cursor + 1) & mask
                    horizon += width
                    scanned += 1
                    bucket = buckets[cursor]
                    if bucket and -bucket[-1][0] < horizon:
                        break
                    if scanned > mask:
                        # Negated entries: earliest real event == max.
                        head = max(b[-1] for b in buckets if b)
                        window = (-head[0]) // width
                        cursor = window & mask
                        horizon = (window + 1) * width
                        break
        finally:
            # A callback that raised right after triggering a rebuild
            # leaves the rebuilt (correct) position in place; stale
            # locals must not clobber it.
            if self._epoch == epoch:
                self._cursor = cursor
                self._horizon = horizon
            engine._events_executed += executed
        return executed

    def iter_pending(self) -> Iterator[Event]:
        """All queued events, cancelled included, in no defined order."""
        for bucket in self._buckets:
            for entry in bucket:
                yield entry[3]

    def clear(self) -> None:
        for bucket in self._buckets:
            bucket.clear()
        self._size = 0

    # ------------------------------------------------------------------
    # Resizing — deterministic: depends only on queue content.
    # ------------------------------------------------------------------
    def _maybe_resize(self) -> None:
        if not self._resize_enabled:
            return
        count = self._mask + 1
        if self._size > 2 * count:
            target = count * 2
        elif self._size < count // 4 and count > _MIN_BUCKETS:
            target = max(_MIN_BUCKETS, count // 2)
        else:
            return
        if target > _MAX_BUCKETS:
            return
        self._resize_enabled = False
        try:
            self._rebuild(target, self._ideal_width())
        finally:
            self._resize_enabled = True

    def _ideal_width(self) -> int:
        """Bucket width from the spacing of events near the head.

        Brown's heuristic: sample the earliest events, average their
        positive inter-event gaps, and size buckets to hold a few
        events each.  Falls back to the current width when the sample
        is degenerate (everything at one instant).
        """
        sample = sorted(
            entry[0] for bucket in self._buckets for entry in bucket[-8:]
        )[-64:]
        if len(sample) < 2:
            return self._width
        # Entries are negated times, so the sorted tail is the earliest
        # events; the real-time gap between adjacent distinct entries is
        # (-sample[i]) - (-sample[i+1]) = sample[i+1] - sample[i].
        gaps = [
            sample[i + 1] - sample[i]
            for i in range(len(sample) - 1)
            if sample[i] != sample[i + 1]
        ]
        if not gaps:
            return self._width
        return max(1, (3 * sum(gaps)) // (2 * len(gaps)))

    def _rebuild(self, buckets: int, width: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        self._buckets = [[] for _ in range(buckets)]
        self._mask = buckets - 1
        self._width = width
        self._epoch += 1
        for entry in entries:
            self._buckets[((-entry[0]) // width) & self._mask].append(entry)
        for bucket in self._buckets:
            bucket.sort()
        if entries:
            earliest = min(-entry[0] for entry in entries)
            window = earliest // width
            self._cursor = window & self._mask
            self._horizon = (window + 1) * width
        else:
            self._cursor = 0
            self._horizon = width

    def __repr__(self) -> str:
        return (
            f"CalendarScheduler(size={self._size}, "
            f"buckets={self._mask + 1}, width={self._width})"
        )


_SCHEDULERS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def make_scheduler(kind: str):
    """Instantiate a scheduler by name (``"heap"`` or ``"calendar"``)."""
    try:
        factory = _SCHEDULERS[kind]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {kind!r}; choose from {sorted(_SCHEDULERS)}"
        ) from None
    return factory()


def scheduler_kinds() -> tuple:
    """The selectable scheduler names, stable order."""
    return tuple(sorted(_SCHEDULERS))


def register_scheduler(kind: str, factory) -> None:
    """Register a new scheduler kind (the shared policy-axis
    convention: ``register_*`` + string spec + ``REPRO_*`` env var —
    see :mod:`repro.policyreg`).  *factory* is a zero-argument callable
    returning a fresh scheduler; duplicates are rejected so ``make``
    results cannot depend on import order.
    """
    if not kind or kind != kind.strip():
        raise ValueError(f"bad scheduler kind name {kind!r}")
    if kind in _SCHEDULERS:
        raise ValueError(f"scheduler {kind!r} is already registered")
    _SCHEDULERS[kind] = factory
