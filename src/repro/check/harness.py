"""The checked pause/resume harness.

:class:`CheckHarness` wraps one pause/resume implementation with the
full correctness battery.  A checked cycle runs, in order:

1. **snapshot** — capture the pause state the differential oracle will
   replay (HORSE paths only; the vanilla path *is* the reference);
2. **inject** — let the :class:`~repro.check.faults.FaultInjector`
   corrupt the precomputed state, if a plan says this cycle strikes;
3. **resume** — through the real implementation, with the injector's
   mid-resume hook installed; exceptions do not escape, they become
   ``oracle.resume_exception`` violations (a crash *is* a detection);
4. **oracles** — :func:`~repro.check.oracles.verify_resume` diffs the
   post-merge queue order and load against the vanilla replay;
5. **boundary sweep** — every registered invariant checker runs.

All findings funnel through :meth:`InvariantRegistry.report`, so each
carries the enclosing ``repro.obs`` span context and shows up in traces
as ``check.violation`` instants.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.check.faults import FaultInjector
from repro.check.invariants import InvariantRegistry
from repro.check.oracles import (
    DEFAULT_MAX_ULPS,
    snapshot_before_resume,
    verify_resume,
)
from repro.core.hot_resume import HorsePauseResume
from repro.hypervisor.pause_resume import (
    PauseResult,
    ResumeResult,
    VanillaPauseResume,
)
from repro.hypervisor.sandbox import Sandbox

PauseResumePath = Union[VanillaPauseResume, HorsePauseResume]


class CheckHarness:
    """Runs pause/resume cycles under invariants, faults, and oracles."""

    def __init__(
        self,
        registry: InvariantRegistry,
        injector: Optional[FaultInjector] = None,
        max_ulps: int = DEFAULT_MAX_ULPS,
    ) -> None:
        self.registry = registry
        self.injector = injector
        self.max_ulps = max_ulps
        #: Sandbox the mid-resume fault may pause inside another's
        #: resume window (set by the runner to its resident sandbox).
        self.resident: Optional[Sandbox] = None
        self.cycles = 0

    # ------------------------------------------------------------------
    def checked_pause(
        self,
        path: PauseResumePath,
        sandbox: Sandbox,
        now_ns: int,
        context: str = "",
    ) -> Optional[PauseResult]:
        """Pause through *path*, then sweep every invariant checker."""
        context = context or f"pause:{sandbox.sandbox_id}"
        try:
            result: Optional[PauseResult] = path.pause(sandbox, now_ns)
        except Exception as exc:  # noqa: BLE001 — a crash is a finding
            self.registry.report(
                "oracle.pause_exception",
                [f"{sandbox.sandbox_id}: pause raised {exc!r}"],
                now_ns,
                context,
            )
            result = None
        self.registry.run_boundary(now_ns, context)
        return result

    def checked_resume(
        self,
        path: PauseResumePath,
        sandbox: Sandbox,
        now_ns: int,
        context: str = "",
    ) -> Optional[ResumeResult]:
        """Resume through *path* under the full battery (see module
        docstring for the cycle order)."""
        context = context or f"resume:{sandbox.sandbox_id}"
        self.cycles += 1
        is_horse = isinstance(path, HorsePauseResume)

        snapshot = snapshot_before_resume(path, sandbox) if is_horse else None

        if is_horse and self.injector is not None:
            if sandbox.assigned_ull_runqueue is not None:
                self.injector.inject_before_resume(
                    path, sandbox, path.ull.queue(sandbox.assigned_ull_runqueue)
                )
            previous_hook = path.mid_resume_hook
            path.mid_resume_hook = self.injector.mid_resume_hook(
                path, self.resident
            )
        else:
            previous_hook = None

        result: Optional[ResumeResult] = None
        try:
            result = path.resume(sandbox, now_ns)
        except Exception as exc:  # noqa: BLE001 — a crash is a finding
            self.registry.report(
                "oracle.resume_exception",
                [f"{sandbox.sandbox_id}: resume raised {exc!r}"],
                now_ns,
                context,
            )
        finally:
            if is_horse and self.injector is not None:
                path.mid_resume_hook = previous_hook

        if snapshot is not None:
            assert isinstance(path, HorsePauseResume)
            self.registry.report(
                "oracle.differential",
                verify_resume(snapshot, path, now_ns, self.max_ulps),
                now_ns,
                context,
            )

        self.registry.run_boundary(now_ns, context)
        return result
