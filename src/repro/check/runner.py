"""Checked experiment runs: ``python -m repro check <experiment>``.

:func:`check_figure3` re-runs the Figure-3 pause/resume cycles under
the full correctness battery (invariants + differential oracles +
optional fault injection), then exercises the FaaS warm-pool path with
per-event invariant checking attached to the simulation engine.  Each
cycle gets a fresh platform — exactly like the real experiment — plus a
*resident* uLL sandbox resumed onto the reserved queue first, so the
checked resume always merges into a non-empty queue (the case where
P2SM's precomputed anchors can actually be wrong).

The result is a :class:`CheckReport`: every violation with its span
context, every fault actually injected, and any planned fault that
never found an eligible cycle (a fault that cannot fire proves
nothing — the report makes that state visible rather than vacuous).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.check.faults import FaultInjector, FaultPlan, InjectedFault
from repro.check.harness import CheckHarness
from repro.check.invariants import (
    InvariantRegistry,
    Trigger,
    Violation,
    default_registry,
    event_heap_checker,
    pool_checker,
    runqueue_checker,
)
from repro.check.oracles import DEFAULT_MAX_ULPS
from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.experiments.figure3 import SETUPS
from repro.experiments.runner import fresh_platform
from repro.hypervisor.sandbox import Sandbox
from repro.obs.context import Observability, current as current_obs

#: Experiments the ``check`` command knows how to drive.
CHECKABLE = ("figure3",)

#: vCPUs of the resident sandbox pre-resumed onto the reserved queue.
RESIDENT_VCPUS = 2


@dataclass
class CheckReport:
    """Outcome of one checked run."""

    experiment: str
    platform: str
    cycles: int = 0
    events_checked: int = 0
    checker_names: List[str] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    injected: List[InjectedFault] = field(default_factory=list)
    #: Planned fault kinds that never found an eligible cycle.
    unfired: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.unfired

    def violations_by_checker(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for violation in self.violations:
            counts[violation.checker] = counts.get(violation.checker, 0) + 1
        return counts

    def render(self) -> str:
        lines = [
            f"repro check {self.experiment} ({self.platform}): "
            f"{self.cycles} pause/resume cycles, "
            f"{self.events_checked} engine events checked, "
            f"{len(self.violations)} violation(s)"
        ]
        if self.injected:
            lines.append("injected faults:")
            for fault in self.injected:
                lines.append(
                    f"  * {fault.kind} @ eligible cycle {fault.cycle} "
                    f"on {fault.sandbox_id}: {fault.detail}"
                )
        if self.unfired:
            lines.append(
                "planned faults that never found an eligible cycle: "
                + ", ".join(self.unfired)
            )
        if self.violations:
            lines.append("violations:")
            for violation in self.violations:
                lines.append(f"  ! {violation.render()}")
        else:
            lines.append("all invariants held; all oracles agreed")
        return "\n".join(lines)


def _checked_cycle(
    platform: str,
    config: Optional[HorseConfig],
    vcpus: int,
    memory_mb: int,
    context: str,
    injector: Optional[FaultInjector],
    max_ulps: int,
    obs: Observability,
) -> InvariantRegistry:
    """One Figure-3 cycle (fresh platform) under the full battery."""
    virt = fresh_platform(platform)
    resident = Sandbox(
        vcpus=RESIDENT_VCPUS, memory_mb=memory_mb, is_ull=config is not None
    )
    target = Sandbox(vcpus=vcpus, memory_mb=memory_mb, is_ull=config is not None)
    virt.vanilla.place_initial(resident, 0)
    virt.vanilla.place_initial(target, 0)

    if config is None:
        path = virt.vanilla
        registry = default_registry(
            host=virt.host, sandboxes=[resident, target], obs=obs
        )
    else:
        path = HorsePauseResume(
            virt.host, virt.policy, virt.costs, config=config, obs=obs
        )
        # Seed the reserved queue: the resident's vCPUs land on it, so
        # the checked resume merges into a non-trivial queue.
        path.pause(resident, 0)
        path.resume(resident, 0)
        registry = default_registry(
            host=virt.host,
            sandboxes=[resident, target],
            ull_manager=path.ull,
            obs=obs,
        )

    harness = CheckHarness(registry, injector=injector, max_ulps=max_ulps)
    harness.resident = resident
    harness.checked_pause(path, target, 0, context=f"{context}:pause")
    harness.checked_resume(path, target, 0, context=f"{context}:resume")
    return registry


def _checked_pool_phase(
    platform: str, seed: int, obs: Observability
) -> InvariantRegistry:
    """Warm-pool + engine phase: per-event invariant checking.

    Provisions HORSE-paused sandboxes, triggers a uLL invocation, and
    runs the event loop with run-queue, event-heap, and pool checkers
    firing on every event via the engine watcher.
    """
    from repro.faas import FaaSPlatform, FunctionSpec, StartType
    from repro.faas.keepalive import FixedKeepAlive
    from repro.sim.units import seconds
    from repro.workloads import FirewallWorkload

    # A short keep-alive so eviction events actually fire inside the
    # checked window (eviction is where pool/timer accounting can rot).
    faas = FaaSPlatform.build(
        platform, seed=seed, keepalive=FixedKeepAlive(seconds(1))
    )
    faas.register(FunctionSpec("firewall", FirewallWorkload()))

    registry = InvariantRegistry(obs=obs)
    registry.register(
        "invariant.runqueue",
        runqueue_checker(faas.virt.host),
        trigger=Trigger.EVERY_EVENT,
    )
    registry.register(
        "invariant.event_heap",
        event_heap_checker(faas.engine),
        trigger=Trigger.EVERY_EVENT,
    )
    registry.register(
        "invariant.pool", pool_checker(faas.pool), trigger=Trigger.EVERY_EVENT
    )
    registry.register(
        "invariant.p2sm_freshness",
        lambda _now: faas.ull_manager.check_freshness(),
        trigger=Trigger.EVERY_N_EVENTS,
        every_n=2,
    )
    registry.attach(faas.engine, context="faas")

    faas.provision_warm("firewall", count=2, use_horse=True)
    faas.trigger("firewall", StartType.HORSE, run_logic=True)
    faas.trigger("firewall", StartType.WARM, run_logic=True)
    faas.trigger("firewall", StartType.COLD, run_logic=True)
    faas.engine.run(until=faas.engine.now + seconds(3))
    registry.run_boundary(faas.engine.now, "faas:final")
    return registry


def check_figure3(
    vcpu_counts: Optional[Sequence[int]] = None,
    repetitions: int = 3,
    platform: str = "firecracker",
    memory_mb: int = 512,
    setups: Optional[Dict[str, Optional[HorseConfig]]] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_ulps: int = DEFAULT_MAX_ULPS,
    seed: int = 0,
    fast: bool = False,
    obs: Optional[Observability] = None,
) -> CheckReport:
    """Re-run the Figure-3 cycles checked; see the module docstring."""
    if vcpu_counts is None:
        vcpu_counts = (1, 8, 36) if fast else (1, 2, 4, 8, 16, 24, 36)
    if fast:
        repetitions = min(repetitions, 2)
    active_setups = setups if setups is not None else SETUPS
    injector = (
        FaultInjector(fault_plan)
        if fault_plan is not None and fault_plan.specs
        else None
    )
    obs = obs if obs is not None else current_obs()

    report = CheckReport(experiment="figure3", platform=platform)
    for setup_name, config in active_setups.items():
        for vcpus in vcpu_counts:
            for rep in range(repetitions):
                context = f"{setup_name}/v{vcpus}/r{rep}"
                span = obs.tracer.open_span(
                    "check.cycle", 0, category="check",
                    setup=setup_name, vcpus=vcpus, rep=rep,
                )
                registry = None
                try:
                    registry = _checked_cycle(
                        platform, config, vcpus, memory_mb, context,
                        injector, max_ulps, obs,
                    )
                finally:
                    span.close(
                        0,
                        violations=(
                            len(registry.violations) if registry else 0
                        ),
                    )
                report.cycles += 1
                report.violations.extend(registry.violations)
                for name in registry.checker_names:
                    if name not in report.checker_names:
                        report.checker_names.append(name)

    pool_span = obs.tracer.open_span("check.pool_phase", 0, category="check")
    try:
        pool_registry = _checked_pool_phase(platform, seed, obs)
    finally:
        pool_span.close(0)
    report.violations.extend(pool_registry.violations)
    report.events_checked = pool_registry.events_seen
    for name in pool_registry.checker_names:
        if name not in report.checker_names:
            report.checker_names.append(name)

    if injector is not None:
        report.injected = list(injector.injected)
        fired_kinds = {fault.kind for fault in injector.injected}
        report.unfired = [
            spec.kind
            for spec in injector.plan.specs
            if spec.kind not in fired_kinds
        ]
    return report


def run_check(experiment: str, **kwargs) -> CheckReport:
    """Dispatch by experiment id (the CLI entry point)."""
    if experiment == "figure3":
        return check_figure3(**kwargs)
    raise ValueError(
        f"experiment {experiment!r} has no checked runner; "
        f"choose from {', '.join(CHECKABLE)}"
    )
