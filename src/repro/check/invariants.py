"""The invariant registry: pluggable, trigger-scheduled checkers.

A *checker* is a callable ``f(now_ns) -> list[str]`` returning the
invariant violations it currently observes (empty list = all sound).
Components register checkers with the :class:`InvariantRegistry` at
build time under one of three triggers:

* ``EVERY_EVENT`` — run after every simulation event (via
  :meth:`~repro.sim.engine.Engine.add_watcher`);
* ``EVERY_N_EVENTS`` — run every *n*-th event;
* ``BOUNDARY`` — run only at pause/resume boundaries, where the
  :class:`~repro.check.harness.CheckHarness` calls
  :meth:`InvariantRegistry.run_boundary`.

Checkers never raise on corruption — they *report*.  Every reported
violation is recorded as a :class:`Violation` carrying the ``repro.obs``
span context it occurred under (the innermost open span, e.g. the
harness's per-cycle span) and mirrored into the active observability
bundle as a ``check.violation`` instant plus a ``check.violations``
counter, so traces show exactly where a run went wrong.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.hypervisor.dvfs import sample_violations
from repro.obs.context import Observability, current as current_obs
from repro.sim.engine import Engine

#: A checker inspects the system at *now_ns* and reports problems.
Checker = Callable[[int], List[str]]


class Trigger(enum.Enum):
    """When a registered checker runs."""

    EVERY_EVENT = "every-event"
    EVERY_N_EVENTS = "every-n-events"
    BOUNDARY = "boundary"


@dataclass(frozen=True)
class Violation:
    """One reported invariant/oracle violation, with span context."""

    checker: str
    message: str
    now_ns: int
    context: str = ""
    span_name: Optional[str] = None
    span_id: Optional[int] = None

    def render(self) -> str:
        where = f" [{self.context}]" if self.context else ""
        span = (
            f" (span {self.span_name}#{self.span_id})"
            if self.span_id is not None
            else ""
        )
        return f"{self.checker}{where}{span}: {self.message}"


@dataclass
class _Entry:
    name: str
    checker: Checker
    trigger: Trigger
    every_n: int = 1
    runs: int = 0


class InvariantRegistry:
    """Registered checkers plus the violations they have reported."""

    def __init__(self, obs: Optional[Observability] = None) -> None:
        self.obs = obs if obs is not None else current_obs()
        self._entries: List[_Entry] = []
        #: Entries with a per-event trigger, cached so the engine
        #: watcher does not re-filter (and re-test the trigger kind of)
        #: every entry on every simulation event.  Invalidated by
        #: :meth:`register`.
        self._per_event: Optional[List[_Entry]] = None
        self._event_count = 0
        self.violations: List[Violation] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        checker: Checker,
        trigger: Trigger = Trigger.BOUNDARY,
        every_n: int = 1,
    ) -> None:
        """Register *checker* under *name* to run at *trigger* time."""
        if every_n < 1:
            raise ValueError(f"every_n must be >= 1, got {every_n}")
        self._entries.append(_Entry(name, checker, trigger, every_n))
        self._per_event = None

    @property
    def checker_names(self) -> List[str]:
        return [entry.name for entry in self._entries]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_boundary(self, now_ns: int, context: str = "") -> List[Violation]:
        """Run every checker (any trigger) at a pause/resume boundary.

        Boundary runs are the full sweep: a checker scheduled per-event
        still has something to say at a lifecycle edge.
        """
        found: List[Violation] = []
        for entry in self._entries:
            found.extend(self._run_entry(entry, now_ns, context))
        return found

    def _per_event_entries(self) -> List[_Entry]:
        entries = self._per_event
        if entries is None:
            entries = self._per_event = [
                entry
                for entry in self._entries
                if entry.trigger is not Trigger.BOUNDARY
            ]
        return entries

    def attach(self, engine: Engine, context: str = "") -> None:
        """Install an engine watcher honoring the per-event triggers."""

        def watch(_event) -> None:
            self._event_count += 1
            entries = self._per_event
            if entries is None:
                entries = self._per_event_entries()
            for entry in entries:
                if (
                    entry.trigger is Trigger.EVERY_EVENT
                    or self._event_count % entry.every_n == 0
                ):
                    self._run_entry(entry, engine.now, context)

        engine.add_watcher(watch)

    def _run_entry(
        self, entry: _Entry, now_ns: int, context: str
    ) -> List[Violation]:
        entry.runs += 1
        return self.report(entry.name, entry.checker(now_ns), now_ns, context)

    # ------------------------------------------------------------------
    # Reporting (shared with the oracles and the fault harness)
    # ------------------------------------------------------------------
    def report(
        self,
        checker: str,
        messages: Iterable[str],
        now_ns: int,
        context: str = "",
    ) -> List[Violation]:
        """Turn raw messages into recorded violations with span context."""
        recorded: List[Violation] = []
        current = self.obs.tracer.current_span()
        for message in messages:
            violation = Violation(
                checker=checker,
                message=message,
                now_ns=now_ns,
                context=context,
                span_name=current.name if current is not None else None,
                span_id=current.span_id if current is not None else None,
            )
            recorded.append(violation)
            self.violations.append(violation)
            if self.obs.enabled:
                self.obs.metrics.counter(
                    "check.violations", "invariant/oracle violations"
                ).inc()
                self.obs.tracer.record_instant(
                    "check.violation",
                    now_ns,
                    category="check",
                    checker=checker,
                    message=message,
                    context=context,
                )
        return recorded

    @property
    def events_seen(self) -> int:
        """Engine events observed through :meth:`attach` watchers."""
        return self._event_count

    @property
    def ok(self) -> bool:
        return not self.violations

    def __repr__(self) -> str:
        return (
            f"InvariantRegistry({len(self._entries)} checkers, "
            f"{len(self.violations)} violations)"
        )


# ----------------------------------------------------------------------
# Built-in checker factories
# ----------------------------------------------------------------------
def runqueue_checker(host) -> Checker:
    """Sortedness, size, link integrity, and load sign of every queue."""

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        for runqueue in host.runqueues.values():
            problems.extend(runqueue.invariant_violations())
        return problems

    return check


def lifecycle_checker(host, sandboxes: Sequence) -> Checker:
    """vCPU/sandbox lifecycle legality against actual queue residency.

    * a RUNNABLE vCPU must sit on exactly the queue it claims;
    * a PAUSED sandbox must have no vCPU on any queue;
    * no vCPU may appear on two queues (or twice on one).

    A RUNNING vCPU is legitimately off-queue (the dispatcher pops the
    entity it puts on the core), so only RUNNABLE residency is enforced.
    """
    from repro.hypervisor.sandbox import SandboxState
    from repro.hypervisor.vcpu import VcpuState

    def check(_now_ns: int) -> List[str]:
        problems: List[str] = []
        placement = {}
        for runqueue in host.runqueues.values():
            if runqueue.entities.structure_errors():
                continue  # the runqueue checker owns broken links
            for vcpu in runqueue.entities:
                if vcpu.vcpu_id in placement:
                    problems.append(
                        f"vCPU #{vcpu.vcpu_id} on queues "
                        f"{placement[vcpu.vcpu_id]} and {runqueue.runqueue_id}"
                    )
                placement[vcpu.vcpu_id] = runqueue.runqueue_id
        for sandbox in sandboxes:
            for vcpu in sandbox.vcpus:
                queued = placement.get(vcpu.vcpu_id)
                if sandbox.state is SandboxState.PAUSED and queued is not None:
                    problems.append(
                        f"{sandbox.sandbox_id} is paused but vCPU "
                        f"#{vcpu.vcpu_id} still sits on queue {queued}"
                    )
                if vcpu.state is VcpuState.RUNNABLE:
                    if queued is None:
                        problems.append(
                            f"vCPU #{vcpu.vcpu_id} ({sandbox.sandbox_id}) is "
                            f"runnable but on no queue"
                        )
                    elif queued != vcpu.runqueue_id:
                        problems.append(
                            f"vCPU #{vcpu.vcpu_id} claims queue "
                            f"{vcpu.runqueue_id} but sits on {queued}"
                        )
        return problems

    return check


def event_heap_checker(engine: Engine) -> Checker:
    """Event-heap monotonicity: nothing pending may precede *now*."""

    def check(now_ns: int) -> List[str]:
        problems: List[str] = []
        for event in engine.pending_events():
            if event.time < engine.now:
                problems.append(
                    f"event {event.label or event.sequence!r} scheduled at "
                    f"{event.time} ns, before now={engine.now} ns"
                )
        return problems

    return check


def pool_checker(pool) -> Checker:
    """Warm-pool accounting (paused-only storage, timer consistency)."""

    def check(_now_ns: int) -> List[str]:
        return pool.invariant_violations()

    return check


def p2sm_freshness_checker(ull_manager) -> Checker:
    """arrayB/posA of every tied sandbox must match its queue's state."""

    def check(_now_ns: int) -> List[str]:
        return ull_manager.check_freshness()

    return check


def dvfs_sample_checker(host) -> Checker:
    """No queue's load sample may come from a skewed (future) clock."""

    def check(now_ns: int) -> List[str]:
        return sample_violations(host.runqueues.values(), now_ns)

    return check


def default_registry(
    host=None,
    sandboxes: Optional[Sequence] = None,
    engine: Optional[Engine] = None,
    pool=None,
    ull_manager=None,
    obs: Optional[Observability] = None,
) -> InvariantRegistry:
    """A registry with every applicable built-in checker registered.

    Pass whichever components exist; the registry only wires checkers
    for what it is given.  All built-ins register at the BOUNDARY
    trigger; callers wanting per-event coverage re-register or call
    :meth:`InvariantRegistry.attach` after switching triggers.
    """
    registry = InvariantRegistry(obs=obs)
    if host is not None:
        registry.register("invariant.runqueue", runqueue_checker(host))
        registry.register("invariant.dvfs_clock", dvfs_sample_checker(host))
        if sandboxes is not None:
            registry.register(
                "invariant.lifecycle", lifecycle_checker(host, sandboxes)
            )
    if engine is not None:
        registry.register("invariant.event_heap", event_heap_checker(engine))
    if pool is not None:
        registry.register("invariant.pool", pool_checker(pool))
    if ull_manager is not None:
        registry.register(
            "invariant.p2sm_freshness", p2sm_freshness_checker(ull_manager)
        )
    return registry
