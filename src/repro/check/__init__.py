"""repro.check — the correctness harness (invariants, faults, oracles).

Three pillars, composable but useful alone:

* :mod:`repro.check.invariants` — a registry of pluggable checkers run
  every event, every N events, or at pause/resume boundaries;
* :mod:`repro.check.faults` — a seeded, schedule-controlled fault
  injector whose corruptions replay exactly from ``(seed, plan)``;
* :mod:`repro.check.oracles` — differential oracles replaying each
  HORSE resume through the vanilla path and diffing queue order and
  PELT load to the ULP.

:mod:`repro.check.harness` wires them around one pause/resume cycle,
and :mod:`repro.check.runner` drives whole checked experiments
(``python -m repro check figure3``).
"""

from repro.check.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.check.harness import CheckHarness
from repro.check.invariants import (
    Checker,
    InvariantRegistry,
    Trigger,
    Violation,
    default_registry,
    dvfs_sample_checker,
    event_heap_checker,
    lifecycle_checker,
    p2sm_freshness_checker,
    pool_checker,
    runqueue_checker,
)
from repro.check.oracles import (
    DEFAULT_MAX_ULPS,
    ResumeSnapshot,
    snapshot_before_resume,
    verify_resume,
)
from repro.check.runner import CHECKABLE, CheckReport, check_figure3, run_check

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "CheckHarness",
    "Checker",
    "InvariantRegistry",
    "Trigger",
    "Violation",
    "default_registry",
    "dvfs_sample_checker",
    "event_heap_checker",
    "lifecycle_checker",
    "p2sm_freshness_checker",
    "pool_checker",
    "runqueue_checker",
    "DEFAULT_MAX_ULPS",
    "ResumeSnapshot",
    "snapshot_before_resume",
    "verify_resume",
    "CHECKABLE",
    "CheckReport",
    "check_figure3",
    "run_check",
]
