"""Differential resume oracles.

The fast path's whole claim is *semantic equivalence*: a HORSE resume
must leave the run queue and its tracked load exactly as the vanilla
path would have on the same pause state.  The oracle checks that claim
after every checked resume by replaying the captured pre-resume state
through shadow structures running the vanilla algorithms:

* **queue order** — the pre-resume queue contents plus the sandbox's
  vCPUs are replayed through vanilla per-element ``insert_sorted`` on a
  shadow :class:`~repro.core.linked_list.SortedLinkedList`; the
  resulting vCPU-id sequence must match the real queue exactly
  (including FIFO order among equal keys);
* **load** — the fused coalesced update must be *bit-identical* (0 ULP)
  to the independently recomputed closed form, and within a small ULP
  budget of the n-fold iterated PELT reference (a different operation
  order legitimately rounds differently; empirically the gap is <= 5
  ULPs for n <= 64, so the default budget of 16 has slack without
  masking real corruption).  When coalescing is off, the iterated
  replay performs the very same float operations and must match
  bit-for-bit.

Shadows are built from captured scalars, never aliases into live
structures, so a corrupted queue cannot corrupt its own oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.coalesce import CoalescedUpdate, ulps_apart
from repro.core.hot_resume import HorsePauseResume
from repro.core.linked_list import SortedLinkedList
from repro.hypervisor.load_tracking import (
    DEFAULT_ENTITY_WEIGHT,
    RunqueueLoad,
)
from repro.hypervisor.sandbox import Sandbox

#: Allowed ULP distance between the coalesced result and the n-fold
#: iterated reference (see module docstring for the calibration).
DEFAULT_MAX_ULPS = 16


@dataclass
class ResumeSnapshot:
    """Pre-resume state captured for the differential replay."""

    sandbox_id: str
    queue_id: int
    #: (vcpu_id, sort_key) for every entity on the queue, in queue order
    pre_order: List[Tuple[int, float]]
    #: (vcpu_id, sort_key) for the sandbox's vCPUs, presorted by key
    merge_order: List[Tuple[int, float]]
    #: vCPU weights in sandbox order (the per-vCPU fold order of the
    #: non-coalesced step 5, which the iterated reference replays)
    weights: List[float]
    load_value: float
    load_last_update_ns: int
    coalescing_enabled: bool
    p2sm_enabled: bool


def snapshot_before_resume(
    horse: HorsePauseResume, sandbox: Sandbox
) -> Optional[ResumeSnapshot]:
    """Capture everything the oracle needs, just before a HORSE resume.

    Returns None when the sandbox has no pause-time queue assignment
    (e.g. it was paused through the vanilla path), in which case the
    differential oracle does not apply.
    """
    queue_id = sandbox.assigned_ull_runqueue
    if queue_id is None:
        return None
    queue = horse.ull.queue(queue_id)
    key = queue.sort_key
    merge_vcpus = (
        sandbox.merge_vcpus
        if sandbox.merge_vcpus is not None
        else sorted(sandbox.vcpus, key=key)
    )
    return ResumeSnapshot(
        sandbox_id=sandbox.sandbox_id,
        queue_id=queue_id,
        pre_order=[(v.vcpu_id, key(v)) for v in queue.entities],
        merge_order=[(v.vcpu_id, key(v)) for v in merge_vcpus],
        weights=[v.weight for v in sandbox.vcpus],
        load_value=queue.load.value,
        load_last_update_ns=queue.load.last_update_ns,
        coalescing_enabled=horse.config.enable_coalescing,
        p2sm_enabled=horse.config.enable_p2sm,
    )


def _expected_order(snapshot: ResumeSnapshot) -> List[int]:
    """Vanilla replay: per-element sorted inserts on a shadow list."""
    shadow: SortedLinkedList[Tuple[int, float]] = SortedLinkedList(
        key=lambda pair: pair[1]
    )
    for pair in snapshot.pre_order:
        shadow.insert_sorted(pair)
    for pair in snapshot.merge_order:
        shadow.insert_sorted(pair)
    return [vcpu_id for vcpu_id, _key in shadow]


def _shadow_load(snapshot: ResumeSnapshot) -> RunqueueLoad:
    return RunqueueLoad(
        value=snapshot.load_value,
        last_update_ns=snapshot.load_last_update_ns,
    )


def verify_resume(
    snapshot: ResumeSnapshot,
    horse: HorsePauseResume,
    now_ns: int,
    max_ulps: int = DEFAULT_MAX_ULPS,
) -> List[str]:
    """Diff the post-resume queue against the vanilla replay.

    Returns violation messages (empty = the fast path was semantically
    identical to the vanilla path on this pause state).
    """
    problems: List[str] = []
    queue = horse.ull.queue(snapshot.queue_id)
    prefix = f"{snapshot.sandbox_id} -> queue {snapshot.queue_id}"

    # ---- order oracle -------------------------------------------------
    if queue.entities.structure_errors():
        problems.append(
            f"{prefix}: post-merge queue structurally corrupt, "
            f"order oracle cannot replay"
        )
        actual_order = None
    else:
        actual_order = [vcpu.vcpu_id for vcpu in queue.entities]
    expected_order = _expected_order(snapshot)
    if actual_order is not None and actual_order != expected_order:
        problems.append(
            f"{prefix}: post-merge order diverges from the vanilla "
            f"replay: got {actual_order}, vanilla yields {expected_order}"
        )

    # ---- load oracle --------------------------------------------------
    actual_load = queue.load.value
    n = len(snapshot.weights)
    iterated = _shadow_load(snapshot)
    for weight in snapshot.weights:
        iterated.enqueue_entity(now_ns, weight)
    if snapshot.coalescing_enabled:
        # The fused update must equal the independently recomputed
        # closed form bit-for-bit: same scalars, same two float ops.
        closed = _shadow_load(snapshot)
        template = closed.enqueue_update(DEFAULT_ENTITY_WEIGHT)
        update = CoalescedUpdate.precompute(template.alpha, template.beta, n)
        closed.apply_coalesced(now_ns, update.alpha_n, update.beta_sum)
        if ulps_apart(actual_load, closed.value) != 0:
            problems.append(
                f"{prefix}: coalesced load {actual_load!r} is not "
                f"bit-identical to the closed form {closed.value!r}"
            )
        distance = ulps_apart(actual_load, iterated.value)
        if distance > max_ulps:
            problems.append(
                f"{prefix}: coalesced load {actual_load!r} is {distance} "
                f"ULPs from the {n}-fold iterated reference "
                f"{iterated.value!r} (budget {max_ulps})"
            )
    else:
        # Iterated path: identical float operations, exact match only.
        if ulps_apart(actual_load, iterated.value) != 0:
            problems.append(
                f"{prefix}: iterated load {actual_load!r} diverges from "
                f"the vanilla replay {iterated.value!r}"
            )
    return problems
