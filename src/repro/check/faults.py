"""Deterministic, schedule-controlled fault injection.

Every fault is a seeded corruption of HORSE's pause-time state or of
the resume window, applied at a *specific eligible cycle* of a checked
run.  Replay is exact: the same ``(seed, FaultPlan)`` strikes the same
cycle with the same corruption, so any reported violation reproduces
from two integers and a kind string.

Fault kinds (each models a real failure class of the paper's design):

* ``stale_arrayb`` — arrayB anchors no longer match the target queue's
  node positions (a missed "update on every ull_runqueue change");
* ``stale_posa`` — posA buckets shifted one position (stale insertion
  scan);
* ``skip_merge_thread`` — one merge thread never runs (delayed past the
  resume), so its chain is never spliced in;
* ``drop_coalesced`` — the precomputed fused load update is lost and
  replaced by the identity (the load fold silently dropped);
* ``clock_skew`` — the queue's load was last sampled on a clock running
  ahead of simulated time (skewed DVFS input);
* ``pause_during_resume`` — a concurrent pause of another sandbox lands
  inside the resume window the vanilla global lock would have excluded.

The injector *only corrupts*; detection is the harness's job (invariant
registry + differential oracles).  ``tests/check/test_faults.py`` holds
the mutation-style proof that every kind is actually caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.coalesce import CoalescedUpdate
from repro.core.hot_resume import HorsePauseResume
from repro.hypervisor.load_tracking import PELT_PERIOD_NS
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.sim.rng import RngRegistry

#: Every injectable fault kind, in documentation order.
FAULT_KINDS: Tuple[str, ...] = (
    "stale_arrayb",
    "stale_posa",
    "skip_merge_thread",
    "drop_coalesced",
    "clock_skew",
    "pause_during_resume",
)

#: When a spec does not pin a cycle, the injector strikes one of the
#: first STRIKE_WINDOW eligible cycles, drawn from the plan's seed.
STRIKE_WINDOW = 4

#: Forward skew applied by ``clock_skew`` (three PELT periods).
CLOCK_SKEW_NS = 3 * PELT_PERIOD_NS


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: a kind plus the eligible cycle it strikes.

    ``cycle`` counts *eligible* cycles for this kind (0 = the first
    cycle whose configuration the fault applies to); None lets the
    injector draw the cycle deterministically from the plan seed.
    """

    kind: str
    cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.cycle is not None and self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")


@dataclass(frozen=True)
class FaultPlan:
    """A replayable fault schedule: ``(seed, specs)``."""

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def single(
        cls, kind: str, seed: int = 0, cycle: Optional[int] = None
    ) -> "FaultPlan":
        return cls(seed=seed, specs=(FaultSpec(kind, cycle),))


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault actually applied to a run."""

    kind: str
    cycle: int
    sandbox_id: str
    detail: str


@dataclass
class _ArmedSpec:
    spec: FaultSpec
    strike_cycle: int
    eligible_seen: int = 0
    fired: bool = False


class FaultInjector:
    """Applies a :class:`FaultPlan` to checked pause/resume cycles.

    The harness drives it: once per checked resume it calls
    :meth:`inject_before_resume` (and installs :meth:`mid_resume_hook`
    on the fast path); the injector decides — deterministically — which
    calls strike.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        rng = RngRegistry(plan.seed)
        self._armed: List[_ArmedSpec] = []
        for index, spec in enumerate(plan.specs):
            strike = (
                spec.cycle
                if spec.cycle is not None
                else rng.stream(f"fault:{index}:{spec.kind}").randrange(
                    STRIKE_WINDOW
                )
            )
            self._armed.append(_ArmedSpec(spec=spec, strike_cycle=strike))
        self.injected: List[InjectedFault] = []

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """True once every planned fault has fired."""
        return all(armed.fired for armed in self._armed)

    def _claim(
        self, kinds: Tuple[str, ...], eligible: Callable[[str], bool]
    ) -> List[_ArmedSpec]:
        """Advance eligibility counters; return the specs that strike now."""
        striking: List[_ArmedSpec] = []
        for armed in self._armed:
            if armed.fired or armed.spec.kind not in kinds:
                continue
            if not eligible(armed.spec.kind):
                continue
            if armed.eligible_seen == armed.strike_cycle:
                striking.append(armed)
            armed.eligible_seen += 1
        return striking

    # ------------------------------------------------------------------
    # Pre-resume corruption (pause-time state)
    # ------------------------------------------------------------------
    def inject_before_resume(
        self, horse: HorsePauseResume, sandbox: Sandbox, queue: RunQueue
    ) -> List[InjectedFault]:
        """Corrupt the paused sandbox's precomputed state, per plan."""
        config = horse.config

        def eligible(kind: str) -> bool:
            state = sandbox.p2sm_state
            if kind == "stale_arrayb":
                return (
                    config.enable_p2sm
                    and state is not None
                    and len(state.array_b) > 2
                )
            if kind == "stale_posa":
                return (
                    config.enable_p2sm
                    and state is not None
                    and len(state.array_b) >= 2
                    and bool(state.pos_a)
                )
            if kind == "skip_merge_thread":
                return (
                    config.enable_p2sm
                    and state is not None
                    and bool(state.pos_a)
                )
            if kind == "drop_coalesced":
                return (
                    config.enable_coalescing
                    and sandbox.coalesced_update is not None
                )
            if kind == "clock_skew":
                return True
            return False

        fired: List[InjectedFault] = []
        for armed in self._claim(
            (
                "stale_arrayb",
                "stale_posa",
                "skip_merge_thread",
                "drop_coalesced",
                "clock_skew",
            ),
            eligible,
        ):
            detail = self._apply(armed.spec.kind, sandbox, queue)
            armed.fired = True
            record = InjectedFault(
                kind=armed.spec.kind,
                cycle=armed.eligible_seen,
                sandbox_id=sandbox.sandbox_id,
                detail=detail,
            )
            self.injected.append(record)
            fired.append(record)
        return fired

    def _apply(self, kind: str, sandbox: Sandbox, queue: RunQueue) -> str:
        state = sandbox.p2sm_state
        if kind == "stale_arrayb":
            assert state is not None
            state.array_b[1:] = list(reversed(state.array_b[1:]))
            return (
                f"reversed arrayB[1:] ({len(state.array_b) - 1} anchors now "
                f"point at the wrong positions)"
            )
        if kind == "stale_posa":
            assert state is not None
            modulus = len(state.array_b)
            state.pos_a = {
                (position + 1) % modulus: chain
                for position, chain in state.pos_a.items()
            }
            return f"shifted every posA bucket by +1 mod {modulus}"
        if kind == "skip_merge_thread":
            assert state is not None
            position = min(state.pos_a)
            chain = state.pos_a.pop(position)
            return (
                f"dropped the merge thread for position {position} "
                f"({chain.length} vCPUs never spliced)"
            )
        if kind == "drop_coalesced":
            update = sandbox.coalesced_update
            assert update is not None
            sandbox.coalesced_update = CoalescedUpdate(
                alpha_n=1.0, beta_sum=0.0, n=update.n
            )
            return f"replaced the fused {update.n}-fold update with identity"
        if kind == "clock_skew":
            queue.load.last_update_ns += CLOCK_SKEW_NS
            return (
                f"skewed queue {queue.runqueue_id}'s load sample "
                f"{CLOCK_SKEW_NS} ns into the future"
            )
        raise AssertionError(f"unhandled pre-resume fault {kind!r}")

    # ------------------------------------------------------------------
    # Mid-resume race (the window the vanilla lock protects)
    # ------------------------------------------------------------------
    def mid_resume_hook(
        self, horse: HorsePauseResume, resident: Optional[Sandbox]
    ) -> Callable[[Sandbox, RunQueue, int], None]:
        """A hook for ``HorsePauseResume.mid_resume_hook`` that pauses
        *resident* inside another sandbox's resume window, per plan."""

        def hook(sandbox: Sandbox, queue: RunQueue, now_ns: int) -> None:
            def eligible(_kind: str) -> bool:
                return (
                    resident is not None
                    and resident is not sandbox
                    and resident.state is SandboxState.RUNNING
                )

            for armed in self._claim(("pause_during_resume",), eligible):
                assert resident is not None
                horse.pause(resident, now_ns)
                armed.fired = True
                self.injected.append(
                    InjectedFault(
                        kind="pause_during_resume",
                        cycle=armed.eligible_seen,
                        sandbox_id=sandbox.sandbox_id,
                        detail=(
                            f"paused {resident.sandbox_id} inside "
                            f"{sandbox.sandbox_id}'s resume window"
                        ),
                    )
                )

        return hook
