"""Per-core run queues: sorted lists of runnable vCPUs plus tracked load.

A run queue is the object both of the paper's hot operations touch:

* step 4 — *sorted merge* of each resuming vCPU into the queue's
  sorted linked list (sort key comes from the scheduler policy);
* step 5 — *load update* of the queue's PELT aggregate, which the DVFS
  governor reads.

``RunQueue`` executes both operations for real and exposes the raw
operation counts (linked-list scan steps, load folds) that the cost
model converts into simulated nanoseconds.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.linked_list import SortedLinkedList
from repro.hypervisor.load_tracking import RunqueueLoad
from repro.hypervisor.vcpu import Vcpu
from repro.obs.context import NULL_OBS, Observability


def _runqueue_handles(metrics):
    """Registry-cached instrument bundle shared by every run queue."""
    return (
        metrics,
        metrics.counter("runqueue.enqueue"),
        metrics.counter("runqueue.scan_steps"),
        metrics.gauge("runqueue.last_len"),
        metrics.counter("runqueue.dequeue"),
    )


class RunQueue:
    """A single core's sorted queue of runnable vCPUs."""

    __slots__ = (
        "runqueue_id",
        "core_id",
        "timeslice_ns",
        "reserved_for_ull",
        "obs",
        "entities",
        "load",
        "enqueue_count",
        "dequeue_count",
        "_instruments",
    )

    def __init__(
        self,
        runqueue_id: int,
        sort_key: Callable[[Vcpu], float],
        core_id: int,
        timeslice_ns: int,
        reserved_for_ull: bool = False,
        obs: Observability = NULL_OBS,
    ) -> None:
        if timeslice_ns <= 0:
            raise ValueError(f"timeslice must be positive, got {timeslice_ns}")
        self.runqueue_id = runqueue_id
        self.core_id = core_id
        self.timeslice_ns = timeslice_ns
        self.reserved_for_ull = reserved_for_ull
        self.obs = obs
        self.entities: SortedLinkedList[Vcpu] = SortedLinkedList(sort_key)
        self.load = RunqueueLoad()
        self.enqueue_count = 0
        self.dequeue_count = 0
        #: (registry, enqueue ctr, scan ctr, len gauge, dequeue ctr) —
        #: bound once per attached registry; see _bound_instruments.
        self._instruments = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entities)

    @property
    def sort_key(self) -> Callable[[Vcpu], float]:
        return self.entities.key

    def enqueue_sorted(self, vcpu: Vcpu, now_ns: int) -> int:
        """Vanilla step 4+5 for one vCPU.

        Performs the real O(n) sorted insert and the real PELT fold.
        Returns the scan steps the insert consumed so the caller can
        charge simulated time.
        """
        before = self.entities.scan_steps
        self.entities.insert_sorted(vcpu)
        vcpu.mark_runnable(self.runqueue_id)
        self.load.enqueue_entity(now_ns, vcpu.weight)
        self.enqueue_count += 1
        steps = self.entities.scan_steps - before
        if self.obs.enabled:
            self._observe_enqueue(steps)
        return steps

    def enqueue_sorted_without_load(self, vcpu: Vcpu) -> int:
        """Sorted insert only — used when load updates are coalesced."""
        before = self.entities.scan_steps
        self.entities.insert_sorted(vcpu)
        vcpu.mark_runnable(self.runqueue_id)
        self.enqueue_count += 1
        steps = self.entities.scan_steps - before
        if self.obs.enabled:
            self._observe_enqueue(steps)
        return steps

    def _bound_instruments(self):
        """Handles bound to the currently attached registry.

        Re-binding is keyed on registry identity, so swapping the obs
        bundle (or its metrics) invalidates the cache without any
        notification plumbing; steady state is one attribute read.
        The binding itself lives on the registry (``metrics.bound``):
        run-queue metrics are global names, and studies churn through
        hundreds of short-lived queues that would otherwise each pay
        the four registry lookups on their first enqueue.
        """
        metrics = self.obs.metrics
        handles = self._instruments
        if handles is None or handles[0] is not metrics:
            handles = self._instruments = metrics.bound(
                "runqueue", _runqueue_handles
            )
        return handles

    def _observe_enqueue(self, scan_steps: int) -> None:
        handles = self._bound_instruments()
        handles[1].inc()
        handles[2].inc(scan_steps)
        handles[3].set(self.entities._size)

    def dequeue(self, vcpu: Vcpu, now_ns: int) -> bool:
        """Remove *vcpu* (pause path); folds its load contribution out."""
        removed = self.entities.remove(vcpu)
        if removed:
            vcpu.mark_paused()
            self.load.dequeue_entity(now_ns, vcpu.weight)
            self.dequeue_count += 1
            if self.obs.enabled:
                self._bound_instruments()[4].inc()
        return removed

    def peek_next(self) -> Optional[Vcpu]:
        """The vCPU the core would pick next (least sort key)."""
        return self.entities.first()

    def pop_next(self) -> Optional[Vcpu]:
        return self.entities.pop_first()

    def members(self) -> List[Vcpu]:
        return self.entities.to_list()

    # ------------------------------------------------------------------
    # Invariants (tests + debug)
    # ------------------------------------------------------------------
    def invariant_violations(self) -> List[str]:
        """Every broken structural invariant, as messages (empty = sound).

        Non-raising twin of :meth:`check_invariants`, used by the
        ``repro.check`` registry so a corrupted queue is *reported*
        rather than aborting the run.  The underlying walk is
        cycle-safe, so this is callable on fault-injected state.
        """
        prefix = f"runqueue {self.runqueue_id}"
        violations = [
            f"{prefix}: {error}" for error in self.entities.structure_errors()
        ]
        if not violations:  # membership walk only when links are sound
            for vcpu in self.entities:
                if vcpu.runqueue_id != self.runqueue_id:
                    violations.append(
                        f"{prefix}: {vcpu!r} claims queue {vcpu.runqueue_id}"
                    )
        if self.load.value < 0.0:
            violations.append(f"{prefix}: negative load {self.load.value}")
        return violations

    def check_invariants(self) -> None:
        """Raise AssertionError when a structural invariant is broken."""
        violations = self.invariant_violations()
        assert not violations, "; ".join(violations)

    def __repr__(self) -> str:
        kind = "ull" if self.reserved_for_ull else "general"
        return (
            f"RunQueue(#{self.runqueue_id} core={self.core_id} {kind} "
            f"len={len(self.entities)} load={self.load.value:.1f})"
        )
