"""PELT-style run-queue load tracking.

The paper (step 5 of the resume process) observes that placing a paused
vCPU on a run queue always updates the queue's load as an affine map
``L(x) = alpha * x + beta`` — the shape of per-entity load tracking
(PELT, Turner 2011) when folding a newly runnable entity into the
queue's aggregate.  That affine shape is precisely what makes HORSE's
coalescing possible.

This module implements a faithful small PELT:

* load decays geometrically with elapsed wall time, half-life of 32
  periods of ~1 ms (``DECAY_FACTOR`` per period, ``y**32 = 0.5``);
* enqueueing an entity of weight *w* applies ``L <- y * L + w * (1-y)``
  (decay one period, then blend the entity's contribution in), i.e.
  ``alpha = y`` and ``beta = w * (1 - y)``.

The DVFS governor reads the tracked load to pick core frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coalesce import AffineUpdate

#: One PELT accounting period (ns) — Linux uses 1024 us; 1 ms here.
PELT_PERIOD_NS = 1_000_000

#: Per-period geometric decay: y such that y**32 == 0.5.
DECAY_FACTOR = 0.5 ** (1.0 / 32.0)

#: Default schedulable-entity weight (Linux NICE_0_LOAD spirit).
DEFAULT_ENTITY_WEIGHT = 1024.0


@dataclass(slots=True)
class RunqueueLoad:
    """Tracked load of one run queue.

    ``value`` is the decayed aggregate load; ``last_update_ns`` the
    simulated instant of the last fold.  All mutation goes through
    :meth:`decay_to` / :meth:`enqueue_entity` so the affine invariants
    hold everywhere.

    Fold counts are batched as plain ints instead of per-event metric
    increments; :meth:`repro.hypervisor.cpu.Host.attach_observability`
    registers a registry collector that exports the deltas at snapshot
    time, so the fold hot path carries no observability cost at all.
    """

    value: float = 0.0
    last_update_ns: int = 0
    updates_applied: int = 0
    #: Batched bookkeeping, exported via a registry collector.
    folds_iterated: int = 0
    folds_coalesced: int = 0

    def decay_to(self, now_ns: int) -> None:
        """Decay the aggregate for the periods elapsed since last update."""
        if now_ns < self.last_update_ns:
            raise ValueError(
                f"load update moving backwards: {self.last_update_ns} -> {now_ns}"
            )
        periods = (now_ns - self.last_update_ns) / PELT_PERIOD_NS
        if periods > 0:
            self.value *= DECAY_FACTOR ** periods
        self.last_update_ns = now_ns

    def enqueue_update(self, weight: float = DEFAULT_ENTITY_WEIGHT) -> AffineUpdate:
        """The affine update applied when enqueueing one entity."""
        return AffineUpdate(alpha=DECAY_FACTOR, beta=weight * (1.0 - DECAY_FACTOR))

    def enqueue_entity(self, now_ns: int, weight: float = DEFAULT_ENTITY_WEIGHT) -> None:
        """Fold one newly runnable entity into the aggregate (vanilla path)."""
        self.decay_to(now_ns)
        self.value = self.enqueue_update(weight).apply(self.value)
        self.updates_applied += 1
        self.folds_iterated += 1

    def apply_coalesced(self, now_ns: int, alpha_n: float, beta_sum: float) -> None:
        """Apply a precomputed n-fold fused update (HORSE path)."""
        self.decay_to(now_ns)
        self.value = alpha_n * self.value + beta_sum
        self.updates_applied += 1
        self.folds_coalesced += 1

    def dequeue_entity(self, now_ns: int, weight: float = DEFAULT_ENTITY_WEIGHT) -> None:
        """Remove one entity's contribution (used when pausing).

        PELT removal is approximate (blocked load decays away); we model
        it as subtracting the steady-state contribution, floored at 0.
        """
        self.decay_to(now_ns)
        self.value = max(0.0, self.value - weight * (1.0 - DECAY_FACTOR))
        self.updates_applied += 1
