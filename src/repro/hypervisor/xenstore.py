"""In-memory XenStore (the LightVM optimization the paper applies).

On Xen, control-plane state lives in XenStore, a hierarchical
key-value store whose daemon round-trips dominate toolstack latency.
The paper notes: "we change the XenStore to an in-memory shared space
to reduce userspace costs as proposed by LightVM [44]".  This module
implements that in-memory store with the semantics toolstack code
relies on:

* hierarchical paths (``/vm/<id>/state``) with implicit directories;
* read / write / delete (subtree) / list;
* **watches**: callbacks fired on any write at or below a path —
  the mechanism Xen toolstacks use to coordinate domain lifecycle.

The Xen platform's sandbox lifecycle can mirror its state here, giving
tests a faithful place to assert toolstack-visible behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

WatchCallback = Callable[[str, Optional[str]], None]


def _validate_path(path: str) -> Tuple[str, ...]:
    if not path.startswith("/"):
        raise ValueError(f"XenStore path must be absolute, got {path!r}")
    parts = tuple(p for p in path.split("/") if p)
    for part in parts:
        if any(c in part for c in (" ", "\t", "\n")):
            raise ValueError(f"invalid path component {part!r}")
    return parts


@dataclass
class _Node:
    value: Optional[str] = None
    children: Dict[str, "_Node"] = field(default_factory=dict)


class InMemoryXenStore:
    """Hierarchical KV store with subtree watches."""

    def __init__(self) -> None:
        self._root = _Node()
        self._watches: List[Tuple[Tuple[str, ...], WatchCallback]] = []
        self.writes = 0
        self.reads = 0

    # ------------------------------------------------------------------
    def _walk(self, parts: Tuple[str, ...], create: bool = False) -> Optional[_Node]:
        node = self._root
        for part in parts:
            child = node.children.get(part)
            if child is None:
                if not create:
                    return None
                child = _Node()
                node.children[part] = child
            node = child
        return node

    # ------------------------------------------------------------------
    def write(self, path: str, value: str) -> None:
        """Set *path* to *value*, creating intermediate directories."""
        parts = _validate_path(path)
        if not parts:
            raise ValueError("cannot write the root node")
        node = self._walk(parts, create=True)
        assert node is not None
        node.value = value
        self.writes += 1
        self._fire_watches(parts, value)

    def read(self, path: str) -> str:
        parts = _validate_path(path)
        node = self._walk(parts)
        self.reads += 1
        if node is None or node.value is None:
            raise KeyError(f"no value at {path!r}")
        return node.value

    def exists(self, path: str) -> bool:
        node = self._walk(_validate_path(path))
        return node is not None

    def list(self, path: str) -> List[str]:
        """Immediate children of *path* (a 'directory' listing)."""
        node = self._walk(_validate_path(path))
        if node is None:
            raise KeyError(f"no node at {path!r}")
        return sorted(node.children)

    def delete(self, path: str) -> bool:
        """Remove *path* and its subtree; fires watches with None."""
        parts = _validate_path(path)
        if not parts:
            raise ValueError("cannot delete the root node")
        parent = self._walk(parts[:-1])
        if parent is None or parts[-1] not in parent.children:
            return False
        del parent.children[parts[-1]]
        self._fire_watches(parts, None)
        return True

    # ------------------------------------------------------------------
    # Watches
    # ------------------------------------------------------------------
    def watch(self, path: str, callback: WatchCallback) -> Callable[[], None]:
        """Fire *callback(path, value)* on writes/deletes at or below
        *path*.  Returns an unwatch function."""
        parts = _validate_path(path)
        entry = (parts, callback)
        self._watches.append(entry)

        def unwatch() -> None:
            try:
                self._watches.remove(entry)
            except ValueError:
                pass

        return unwatch

    def _fire_watches(self, parts: Tuple[str, ...], value: Optional[str]) -> None:
        path = "/" + "/".join(parts)
        for prefix, callback in list(self._watches):
            if parts[: len(prefix)] == prefix:
                callback(path, value)

    def __repr__(self) -> str:
        return (
            f"InMemoryXenStore(writes={self.writes}, reads={self.reads}, "
            f"watches={len(self._watches)})"
        )


class XenstoreLifecycleMirror:
    """Mirrors sandbox lifecycle into ``/vm/<id>/state`` (what a Xen
    toolstack would maintain)."""

    def __init__(self, store: InMemoryXenStore) -> None:
        self.store = store

    def record_state(self, sandbox_id: str, state: str) -> None:
        self.store.write(f"/vm/{sandbox_id}/state", state)

    def state_of(self, sandbox_id: str) -> str:
        return self.store.read(f"/vm/{sandbox_id}/state")

    def remove(self, sandbox_id: str) -> None:
        self.store.delete(f"/vm/{sandbox_id}")

    def known_vms(self) -> List[str]:
        if not self.store.exists("/vm"):
            return []
        return self.store.list("/vm")

    def attach(self, sandbox) -> None:
        """Observe *sandbox*'s lifecycle: every legal transition is
        mirrored into ``/vm/<id>/state`` (the toolstack pattern)."""
        self.record_state(sandbox.sandbox_id, sandbox.state.value)
        sandbox.observers.append(
            lambda sb, state: self.record_state(sb.sandbox_id, state.value)
        )
