"""The hypervisor control plane: the command path of step ①.

The paper's resume step ① is "the input parameters associated with the
resume command are parsed and passed to the virtualization system if
the parameters are correctly parsed".  In Firecracker that is the VMM's
HTTP API (PATCH /vm {"state": "Resumed"}); in Xen, the toolstack.  This
module implements that command path for real: requests are dictionaries
(the JSON bodies), parsed into typed commands, validated, and routed to
the pause/resume machinery — so malformed-input behavior, unknown
sandboxes, and state conflicts are testable instead of assumed.

The *time* of parsing is already charged inside the resume paths (the
``resume_parse_ns`` / ``fast_parse_ns`` constants); the control plane
adds the functional behavior on top.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Union

if TYPE_CHECKING:  # cycle guard: hot_resume imports hypervisor modules
    from repro.core.hot_resume import HorsePauseResume

from repro.hypervisor.pause_resume import (
    PauseResult,
    ResumeResult,
    VanillaPauseResume,
)
from repro.hypervisor.sandbox import Sandbox, SandboxError


class CommandError(Exception):
    """A malformed or unroutable control request (HTTP 400 analog)."""


class UnknownSandboxError(CommandError):
    """The request names a sandbox the VMM does not manage (404)."""


class Action(enum.Enum):
    PAUSE = "pause"
    RESUME = "resume"
    STATUS = "status"


@dataclass(frozen=True)
class Command:
    """A parsed, validated control request."""

    action: Action
    sandbox_id: str
    fast_path: bool = False

    @classmethod
    def parse(cls, request: Mapping[str, Any]) -> "Command":
        """Parse one request body (the paper's step ①).

        Required fields: ``action`` (pause/resume/status) and
        ``sandbox_id`` (non-empty string).  Optional: ``fast_path``
        (bool) — route a resume through HORSE.  Unknown fields are
        rejected, mirroring Firecracker's strict deserialization.
        """
        if not isinstance(request, Mapping):
            raise CommandError(f"request must be a mapping, got {type(request)}")
        unknown = set(request) - {"action", "sandbox_id", "fast_path"}
        if unknown:
            raise CommandError(f"unknown fields: {sorted(unknown)}")
        raw_action = request.get("action")
        if not isinstance(raw_action, str):
            raise CommandError("missing or non-string 'action'")
        try:
            action = Action(raw_action.lower())
        except ValueError:
            raise CommandError(
                f"unknown action {raw_action!r}; expected one of "
                f"{[a.value for a in Action]}"
            ) from None
        sandbox_id = request.get("sandbox_id")
        if not isinstance(sandbox_id, str) or not sandbox_id:
            raise CommandError("missing or empty 'sandbox_id'")
        fast_path = request.get("fast_path", False)
        if not isinstance(fast_path, bool):
            raise CommandError("'fast_path' must be a boolean")
        return cls(action=action, sandbox_id=sandbox_id, fast_path=fast_path)


@dataclass(frozen=True)
class CommandResponse:
    """Control-plane reply (HTTP response analog)."""

    ok: bool
    action: Action
    sandbox_id: str
    detail: str = ""
    result: Optional[Union[PauseResult, ResumeResult]] = None
    state: Optional[str] = None


class ControlPlane:
    """Routes parsed commands to the pause/resume machinery."""

    def __init__(
        self,
        vanilla: VanillaPauseResume,
        horse: Optional["HorsePauseResume"] = None,
    ) -> None:
        self.vanilla = vanilla
        self.horse = horse
        self._sandboxes: Dict[str, Sandbox] = {}
        self.requests_served = 0
        self.requests_rejected = 0

    # ------------------------------------------------------------------
    def attach(self, sandbox: Sandbox) -> None:
        """Register a sandbox under the VMM's management."""
        if sandbox.sandbox_id in self._sandboxes:
            raise CommandError(f"sandbox {sandbox.sandbox_id!r} already attached")
        self._sandboxes[sandbox.sandbox_id] = sandbox

    def detach(self, sandbox_id: str) -> None:
        if self._sandboxes.pop(sandbox_id, None) is None:
            raise UnknownSandboxError(f"no sandbox {sandbox_id!r}")

    def managed(self) -> list:
        return sorted(self._sandboxes)

    # ------------------------------------------------------------------
    def handle(self, request: Mapping[str, Any], now_ns: int) -> CommandResponse:
        """Full request cycle: parse, route, execute, respond.

        Parse and routing failures raise (step ① rejects before the
        virtualization system is entered); execution-stage conflicts
        (wrong lifecycle state) come back as ``ok=False`` responses.
        """
        try:
            command = Command.parse(request)
            sandbox = self._sandboxes.get(command.sandbox_id)
            if sandbox is None:
                raise UnknownSandboxError(
                    f"no sandbox {command.sandbox_id!r}"
                )
        except CommandError:
            self.requests_rejected += 1
            raise
        self.requests_served += 1

        if command.action is Action.STATUS:
            return CommandResponse(
                ok=True,
                action=command.action,
                sandbox_id=sandbox.sandbox_id,
                state=sandbox.state.value,
            )
        try:
            if command.action is Action.PAUSE:
                path = self.horse if (command.fast_path and self.horse) else self.vanilla
                result: Union[PauseResult, ResumeResult] = path.pause(
                    sandbox, now_ns
                )
            else:  # RESUME
                if command.fast_path:
                    if self.horse is None:
                        raise CommandError(
                            "fast_path requested but no HORSE path configured"
                        )
                    result = self.horse.resume(sandbox, now_ns)
                else:
                    result = self.vanilla.resume(sandbox, now_ns)
        except SandboxError as exc:
            return CommandResponse(
                ok=False,
                action=command.action,
                sandbox_id=sandbox.sandbox_id,
                detail=str(exc),
                state=sandbox.state.value,
            )
        return CommandResponse(
            ok=True,
            action=command.action,
            sandbox_id=sandbox.sandbox_id,
            result=result,
            state=sandbox.state.value,
        )
