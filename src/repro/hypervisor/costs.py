"""Calibrated per-operation cost model for the simulated hypervisor.

The paper measures its prototype on real hardware (Cloudlab r650,
2x Intel Xeon 8360Y).  This reproduction executes the real *algorithms*
(sorted run-queue merges, PELT load updates, P2SM splices) on real data
structures, and charges simulated nanoseconds per primitive operation
using the constants below.  The constants are calibrated so the vanilla
and HORSE paths land on the paper's measured anchors:

* vanilla 1-vCPU resume ~= 1.1 us (Table 1 "warm" initialization);
* steps 4+5 (sorted merge + load update) take 87.5 % of the resume at
  1 vCPU, growing to ~93.1 % at 36 vCPUs (Figure 2);
* HORSE resume ~= 130-150 ns, flat in the vCPU count (Figure 3);
* coalescing-only improves the resume by 16-20 %, P2SM-only by
  55-69 % (Figure 3);
* cold start ~= 1.5 s and FaaSnap-style restore ~= 1300 us (Table 1).

Derivation of the vanilla per-vCPU constants: with fixed-path cost
137 ns (parse 40 + lock 25 + sanity 30 + finalize 42), steps 4+5 must
cost ~959 ns at 1 vCPU (87.5 % of 1096 ns) and ~1849 ns at 36 vCPUs
(93.1 %).  The strong sublinearity observed by the paper (cache-warm
repeated enqueues) is modeled as a large first-vCPU cost plus a small
warm per-vCPU increment; the O(n) structural component still comes from
the *actual scan steps* of the run-queue linked list, charged at
``merge_scan_step_ns`` each.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.units import microseconds, milliseconds, seconds


@dataclass(frozen=True)
class CostModel:
    """Every simulated-time constant, in (possibly fractional) ns.

    Costs are floats internally; paths round to integer nanoseconds
    only when charging the engine clock.
    """

    name: str = "generic"

    # ---- vanilla resume path (paper §3.1 steps 1-6) -------------------
    resume_parse_ns: float = 40.0            # step 1: parse parameters
    resume_lock_ns: float = 25.0             # step 2: acquire resume lock
    resume_sanity_ns: float = 30.0           # step 3: sanity checks
    resume_finalize_ns: float = 42.0         # step 6: unlock + state flip

    # step 4: sorted merge of each vCPU into a run queue
    merge_first_vcpu_ns: float = 719.0       # cold caches, queue selection
    merge_warm_vcpu_ns: float = 10.0         # each further vCPU (warm path)
    merge_scan_step_ns: float = 0.15         # per linked-list node hop

    # step 5: run-queue load update, per vCPU
    load_update_first_ns: float = 240.0      # lock + PELT fold, cold
    load_update_warm_ns: float = 6.3         # each further vCPU

    # ---- HORSE fast path (paper §4) -----------------------------------
    fast_parse_ns: float = 15.0              # trimmed parameter check
    fast_lock_ns: float = 25.0               # same lock, fast-path entry
    fast_sanity_ns: float = 5.0              # state-bit check only
    p2sm_thread_spawn_ns: float = 20.0       # wake the merge-thread pool
    p2sm_thread_dispatch_ns: float = 8.0     # per-thread kick (parallel)
    p2sm_pointer_write_ns: float = 6.0       # one next-pointer store
    coalesced_update_ns: float = 47.0        # single fused load update

    # ---- pause path ----------------------------------------------------
    pause_fixed_ns: float = 150.0            # command handling + state flip
    pause_dequeue_vcpu_ns: float = 80.0      # remove one vCPU from a queue
    horse_pause_sort_vcpu_ns: float = 30.0   # build merge_vcpus, per vCPU
    horse_pause_coalesce_ns: float = 40.0    # precompute alpha^n, beta term
    p2sm_refresh_entry_ns: float = 5.0       # per arrayB/posA entry refresh

    # ---- start strategies (FaaS level, Table 1 anchors) ----------------
    cold_vmm_setup_ns: float = float(milliseconds(50))
    cold_guest_boot_ns: float = float(milliseconds(600))
    cold_runtime_init_ns: float = float(milliseconds(700))
    cold_function_load_ns: float = float(milliseconds(150))
    restore_snapshot_load_ns: float = float(microseconds(900))
    restore_memory_map_ns: float = float(microseconds(250))
    restore_device_resume_ns: float = float(microseconds(150))

    # ---- scheduling / preemption ---------------------------------------
    context_switch_ns: float = 1_500.0
    default_timeslice_ns: float = float(milliseconds(5))
    ull_timeslice_ns: float = float(microseconds(1))
    # A merge thread that spills onto a general-purpose core preempts
    # whatever runs there; the disturbance (two context switches plus
    # cache/TLB refill for the victim) is the paper's §5.4 "extreme
    # case where a thread used for resuming a uLL sandbox with P2SM
    # preempts a longer-running function" — ~30 us at the p99.
    merge_thread_preemption_ns: float = 30_000.0
    # Probability, per merge thread, of spilling off the reserved cores,
    # multiplied by the thread count (more threads -> more spills).
    merge_thread_spill_per_thread: float = 0.00003

    # ---- memory model (overhead study, paper §5.2) ----------------------
    # 10 paused sandboxes at 36 vCPUs -> 10 * (1024 + 36*1440) B
    # ~= 528 KB, the paper's measured footprint.
    horse_bytes_per_sandbox: int = 1_024       # per-sandbox descriptors
    horse_bytes_per_vcpu: int = 1_440          # chain node + merge-thread slot

    # --------------------------------------------------------------------
    # Derived helpers
    # --------------------------------------------------------------------
    @property
    def resume_fixed_ns(self) -> float:
        """Vanilla steps 1+2+3+6 combined."""
        return (
            self.resume_parse_ns
            + self.resume_lock_ns
            + self.resume_sanity_ns
            + self.resume_finalize_ns
        )

    @property
    def fast_fixed_ns(self) -> float:
        """HORSE fast-path fixed cost (steps 1+2+3 trimmed + finalize)."""
        return self.fast_parse_ns + self.fast_lock_ns + self.fast_sanity_ns

    @property
    def cold_start_ns(self) -> int:
        """Full cold start (paper: ~1.5 s)."""
        return round(
            self.cold_vmm_setup_ns
            + self.cold_guest_boot_ns
            + self.cold_runtime_init_ns
            + self.cold_function_load_ns
        )

    @property
    def restore_ns(self) -> int:
        """FaaSnap-style snapshot restore (paper: ~1300 us)."""
        return round(
            self.restore_snapshot_load_ns
            + self.restore_memory_map_ns
            + self.restore_device_resume_ns
        )

    def merge_cost_ns(self, vcpus: int, scan_steps: int) -> float:
        """Vanilla step-4 cost for *vcpus* insertions with *scan_steps*
        total linked-list hops."""
        if vcpus < 1:
            raise ValueError(f"merge of {vcpus} vCPUs")
        return (
            self.merge_first_vcpu_ns
            + self.merge_warm_vcpu_ns * (vcpus - 1)
            + self.merge_scan_step_ns * scan_steps
        )

    def load_update_cost_ns(self, vcpus: int) -> float:
        """Vanilla step-5 cost: one locked PELT fold per vCPU."""
        if vcpus < 1:
            raise ValueError(f"load update for {vcpus} vCPUs")
        return self.load_update_first_ns + self.load_update_warm_ns * (vcpus - 1)

    def p2sm_merge_cost_ns(self, threads: int) -> float:
        """HORSE step-4 cost: threads run in parallel, so the charged
        time is spawn + one thread's dispatch + its two pointer writes —
        constant in both thread count and list sizes."""
        if threads < 0:
            raise ValueError(f"negative thread count {threads}")
        if threads == 0:
            return self.p2sm_thread_spawn_ns
        return (
            self.p2sm_thread_spawn_ns
            + self.p2sm_thread_dispatch_ns
            + 2 * self.p2sm_pointer_write_ns
        )

    def horse_memory_bytes(self, vcpus: int) -> int:
        """Modeled resident overhead for one paused HORSE sandbox."""
        if vcpus < 0:
            raise ValueError(f"negative vCPU count {vcpus}")
        return self.horse_bytes_per_sandbox + self.horse_bytes_per_vcpu * vcpus


#: Cost model calibrated against the paper's Firecracker/KVM numbers.
FIRECRACKER_COSTS = CostModel(name="firecracker")

#: Xen's toolstack path is heavier (the paper applies the LightVM
#: in-memory XenStore to trim userspace costs; the remaining gap vs KVM
#: is modeled as a uniform ~8 % tax on the vanilla resume path).
XEN_COSTS = replace(
    FIRECRACKER_COSTS,
    name="xen",
    resume_parse_ns=46.0,
    resume_sanity_ns=34.0,
    merge_first_vcpu_ns=776.0,
    load_update_first_ns=259.0,
    cold_guest_boot_ns=float(milliseconds(650)),
)


def cost_model_for(platform: str) -> CostModel:
    """Look up a preset cost model by platform name."""
    presets = {"firecracker": FIRECRACKER_COSTS, "xen": XEN_COSTS}
    try:
        return presets[platform.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; expected one of {sorted(presets)}"
        ) from None
