"""Guest-memory model: pages, working sets, and lazy restore.

The paper's *restore* baseline is FaaSnap (Ao et al., EuroSys'22),
whose core idea is page-granular snapshot loading: map the snapshot
file lazily and prefetch the function's *working set* so the guest
faults on as few pages as possible.  The aggregate ~1300 us restore
cost the paper reports is reproduced mechanistically here:

* a :class:`GuestMemory` is a set of 4 KiB pages with a recorded
  working set (the pages the function touches on its first request);
* :class:`LazyRestoreModel` charges restore time as
  ``base + prefetch(working set) + faults(touched cold pages)``,
  which reduces to the paper's flat ~1300 us for the evaluation's
  512 MB / default-working-set sandboxes, and lets the extension bench
  sweep the working-set size to show the FaaSnap trade-off the paper's
  single number hides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set

PAGE_BYTES = 4096


@dataclass(frozen=True)
class WorkingSet:
    """The pages a function touches serving one request."""

    pages: FrozenSet[int]

    @classmethod
    def contiguous(cls, first_page: int, count: int) -> "WorkingSet":
        if first_page < 0 or count < 0:
            raise ValueError(f"bad working set [{first_page}, +{count})")
        return cls(pages=frozenset(range(first_page, first_page + count)))

    def __len__(self) -> int:
        return len(self.pages)


class GuestMemory:
    """Page-granular guest memory with residency tracking."""

    def __init__(self, size_mb: int) -> None:
        if size_mb < 1:
            raise ValueError(f"guest memory must be >= 1 MB, got {size_mb}")
        self.size_mb = size_mb
        self.total_pages = size_mb * 1024 * 1024 // PAGE_BYTES
        self._resident: Set[int] = set(range(self.total_pages))
        self.faults = 0

    @property
    def resident_pages(self) -> int:
        return len(self._resident)

    def evict_all(self) -> None:
        """Snapshot taken: all pages now live in the snapshot file."""
        self._resident.clear()

    def prefetch(self, pages: Iterable[int]) -> int:
        """Map *pages* eagerly; returns how many were actually loaded."""
        loaded = 0
        for page in pages:
            self._validate(page)
            if page not in self._resident:
                self._resident.add(page)
                loaded += 1
        return loaded

    def touch(self, page: int) -> bool:
        """Guest access: returns True (and counts a fault) if the page
        had to be demand-loaded."""
        self._validate(page)
        if page in self._resident:
            return False
        self._resident.add(page)
        self.faults += 1
        return True

    def _validate(self, page: int) -> None:
        if not 0 <= page < self.total_pages:
            raise IndexError(
                f"page {page} outside guest of {self.total_pages} pages"
            )


@dataclass(frozen=True)
class LazyRestoreModel:
    """Timing model for FaaSnap-style page-granular restore.

    Calibration: the paper's 1300 us restore of a 512 MB sandbox is
    base (VMM re-create + device state, ~400 us) + prefetching the
    default ~1800-page working set at ~0.5 us/page (NVMe-cached reads).
    """

    base_ns: int = 400_000
    prefetch_page_ns: float = 500.0
    demand_fault_ns: float = 3_000.0     # major-fault path: trap + IO

    def __post_init__(self) -> None:
        if self.base_ns < 0 or self.prefetch_page_ns < 0 or self.demand_fault_ns < 0:
            raise ValueError("restore model costs must be non-negative")

    def restore_ns(self, working_set: WorkingSet) -> int:
        """Restore latency with eager working-set prefetch."""
        return round(self.base_ns + self.prefetch_page_ns * len(working_set))

    def first_request_penalty_ns(
        self, memory: GuestMemory, touched: WorkingSet
    ) -> int:
        """Demand-fault cost of the first request after restore: every
        touched page not prefetched takes a major fault."""
        penalty = 0.0
        for page in touched.pages:
            if memory.touch(page):
                penalty += self.demand_fault_ns
        return round(penalty)


#: Working set matching the paper's aggregate 1300 us restore number:
#: (1300 us - 400 us base) / 0.5 us per page = 1800 pages (~7 MB).
DEFAULT_WORKING_SET = WorkingSet.contiguous(0, 1800)
