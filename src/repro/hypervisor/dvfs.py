"""DVFS governor: maps run-queue load to core frequency.

The paper's step 5 matters because the updated load variable "is used
for frequency scaling".  This module closes that loop: a governor reads
each run queue's tracked load and picks the core's frequency.  Two
governors are provided, mirroring the experiments:

* ``performance`` — all cores pinned to max frequency (used by the
  paper's §5.2 overhead study);
* ``ondemand`` — frequency interpolates between min and max with the
  load/capacity ratio, the classic load-following policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List

from repro.hypervisor.load_tracking import DEFAULT_ENTITY_WEIGHT
from repro.obs.context import NULL_OBS, Observability


class GovernorMode(enum.Enum):
    PERFORMANCE = "performance"
    ONDEMAND = "ondemand"
    POWERSAVE = "powersave"


@dataclass(frozen=True)
class FrequencyRange:
    """A core's available frequency envelope, in kHz."""

    min_khz: int
    max_khz: int

    def __post_init__(self) -> None:
        if self.min_khz <= 0 or self.max_khz < self.min_khz:
            raise ValueError(
                f"invalid frequency range {self.min_khz}..{self.max_khz} kHz"
            )

    def clamp(self, khz: float) -> int:
        return int(min(self.max_khz, max(self.min_khz, khz)))


class DvfsGovernor:
    """Chooses a frequency for a core given its run queue's load."""

    def __init__(
        self,
        mode: GovernorMode = GovernorMode.ONDEMAND,
        frequency: FrequencyRange = FrequencyRange(800_000, 2_400_000),
        capacity: float = DEFAULT_ENTITY_WEIGHT,
        obs: Observability = NULL_OBS,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.mode = mode
        self.frequency = frequency
        self.capacity = capacity
        self.obs = obs
        self.decisions = 0

    def target_khz(self, load: float) -> int:
        """Frequency for a queue currently tracking *load*."""
        self.decisions += 1
        if self.mode is GovernorMode.PERFORMANCE:
            khz = self.frequency.max_khz
        elif self.mode is GovernorMode.POWERSAVE:
            khz = self.frequency.min_khz
        else:
            utilization = min(1.0, max(0.0, load / self.capacity))
            span = self.frequency.max_khz - self.frequency.min_khz
            khz = self.frequency.clamp(self.frequency.min_khz + span * utilization)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("dvfs.decisions").inc()
            metrics.gauge("dvfs.target_khz").set(khz)
        return khz

    def __repr__(self) -> str:
        return (
            f"DvfsGovernor({self.mode.value}, "
            f"{self.frequency.min_khz}-{self.frequency.max_khz} kHz)"
        )


def sample_violations(runqueues: Iterable, now_ns: int) -> List[str]:
    """Clock-sanity problems in the loads a governor would sample.

    The governor's input is each queue's tracked load; a load whose
    ``last_update_ns`` sits *ahead* of the present means some update ran
    on a skewed clock — the next ``decay_to`` will either raise or decay
    by a negative period, and every frequency decision in between reads
    a sample from the future.  Used by the ``repro.check`` registry.
    """
    violations: List[str] = []
    for runqueue in runqueues:
        if runqueue.load.last_update_ns > now_ns:
            violations.append(
                f"runqueue {runqueue.runqueue_id}: load sampled at "
                f"{runqueue.load.last_update_ns} ns, ahead of now={now_ns} ns "
                f"(clock-skewed DVFS input)"
            )
    return violations
