"""Energy model: what the DVFS loop does with the tracked load.

The paper's step 5 matters because the run-queue load variable "is used
for frequency scaling".  This module closes the loop quantitatively: a
simple CMOS-style power model (P = P_static + c * f^3 over the active
frequency range) converts governor decisions into power, which lets
experiments measure the *consequence* of load-tracking choices:

* HORSE's coalesced update preserves the exact load value, so DVFS
  decisions — and therefore energy — are identical to the vanilla
  per-vCPU folds (property-tested);
* a naive fast path that *skipped* the update entirely (the obvious
  cheaper alternative) would leave the queue's load stale, driving the
  governor to a wrong frequency; :func:`frequency_error_ratio`
  quantifies that error, which is the justification for coalescing over
  omission (ablated in ``repro.experiments.ablations_energy``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.dvfs import DvfsGovernor

#: Static (leakage + uncore) share of a core's peak power.
STATIC_FRACTION = 0.3


@dataclass(frozen=True)
class CorePowerModel:
    """Cubic dynamic power over the frequency envelope."""

    peak_watts: float = 6.0      # one Xeon core at max frequency
    static_watts: float = 6.0 * STATIC_FRACTION
    max_khz: int = 3_500_000

    def __post_init__(self) -> None:
        if self.peak_watts <= 0:
            raise ValueError(f"peak power must be positive: {self.peak_watts}")
        if not 0 <= self.static_watts < self.peak_watts:
            raise ValueError(
                f"static power {self.static_watts} outside [0, {self.peak_watts})"
            )
        if self.max_khz <= 0:
            raise ValueError(f"max frequency must be positive: {self.max_khz}")

    def power_watts(self, khz: int) -> float:
        """Power at frequency *khz* (clamped to the envelope)."""
        if khz < 0:
            raise ValueError(f"negative frequency {khz}")
        ratio = min(1.0, khz / self.max_khz)
        dynamic_peak = self.peak_watts - self.static_watts
        return self.static_watts + dynamic_peak * ratio**3

    def energy_joules(self, khz: int, duration_ns: int) -> float:
        """Energy spent running at *khz* for *duration_ns*."""
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns}")
        return self.power_watts(khz) * duration_ns * 1e-9


def frequency_error_ratio(
    governor: DvfsGovernor, true_load: float, stale_load: float
) -> float:
    """Relative frequency error a stale load induces.

    Returns ``|f(stale) - f(true)| / f(true)`` — zero when the load
    variable is kept exact (the coalescing guarantee), positive when a
    fast path skips updates.
    """
    true_khz = governor.target_khz(true_load)
    stale_khz = governor.target_khz(stale_load)
    if true_khz == 0:
        return 0.0
    return abs(stale_khz - true_khz) / true_khz


@dataclass
class EnergyAccount:
    """Accumulates per-core energy over governor decisions."""

    model: CorePowerModel = CorePowerModel()
    total_joules: float = 0.0
    intervals: int = 0

    def charge_interval(self, khz: int, duration_ns: int) -> None:
        self.total_joules += self.model.energy_joules(khz, duration_ns)
        self.intervals += 1
