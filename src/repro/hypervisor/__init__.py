"""Simulated virtualization substrate (Firecracker/KVM-like, Xen-like).

Real run queues, schedulers, load tracking, DVFS and sandbox lifecycle
with simulated-time costs calibrated against the paper's measurements.
"""

from repro.hypervisor.costs import (
    CostModel,
    FIRECRACKER_COSTS,
    XEN_COSTS,
    cost_model_for,
)
from repro.hypervisor.control import (
    Action,
    Command,
    CommandError,
    CommandResponse,
    ControlPlane,
    UnknownSandboxError,
)
from repro.hypervisor.cpu import CLOUDLAB_R650, EDGE_NODE, Core, Host, HostSpec
from repro.hypervisor.dispatch import CoreDispatcher, HostDispatcher, WorkItem
from repro.hypervisor.energy import (
    CorePowerModel,
    EnergyAccount,
    frequency_error_ratio,
)
from repro.hypervisor.memory import (
    DEFAULT_WORKING_SET,
    GuestMemory,
    LazyRestoreModel,
    WorkingSet,
)
from repro.hypervisor.xenstore import InMemoryXenStore, XenstoreLifecycleMirror
from repro.hypervisor.dvfs import DvfsGovernor, FrequencyRange, GovernorMode
from repro.hypervisor.load_tracking import (
    DECAY_FACTOR,
    DEFAULT_ENTITY_WEIGHT,
    PELT_PERIOD_NS,
    RunqueueLoad,
)
from repro.hypervisor.pause_resume import (
    HOT_STEPS,
    STEP_FINALIZE,
    STEP_LOAD,
    STEP_LOCK,
    STEP_MERGE,
    STEP_PARSE,
    STEP_SANITY,
    PauseResult,
    ResumeLockBusyError,
    ResumeResult,
    VanillaPauseResume,
)
from repro.hypervisor.platform import (
    VirtualizationPlatform,
    firecracker_platform,
    platform_by_name,
    xen_platform,
)
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.sandbox import Sandbox, SandboxError, SandboxState
from repro.hypervisor.scheduler import CfsPolicy, Credit2Policy, SchedulerPolicy
from repro.hypervisor.snapshot import SandboxSnapshot, SnapshotStore, VcpuSnapshot
from repro.hypervisor.vcpu import Vcpu, VcpuState

__all__ = [
    "CostModel",
    "FIRECRACKER_COSTS",
    "XEN_COSTS",
    "cost_model_for",
    "CLOUDLAB_R650",
    "EDGE_NODE",
    "Core",
    "Host",
    "HostSpec",
    "CoreDispatcher",
    "HostDispatcher",
    "WorkItem",
    "Action",
    "Command",
    "CommandError",
    "CommandResponse",
    "ControlPlane",
    "UnknownSandboxError",
    "CorePowerModel",
    "EnergyAccount",
    "frequency_error_ratio",
    "DEFAULT_WORKING_SET",
    "GuestMemory",
    "LazyRestoreModel",
    "WorkingSet",
    "InMemoryXenStore",
    "XenstoreLifecycleMirror",
    "DvfsGovernor",
    "FrequencyRange",
    "GovernorMode",
    "DECAY_FACTOR",
    "DEFAULT_ENTITY_WEIGHT",
    "PELT_PERIOD_NS",
    "RunqueueLoad",
    "HOT_STEPS",
    "STEP_PARSE",
    "STEP_LOCK",
    "STEP_SANITY",
    "STEP_MERGE",
    "STEP_LOAD",
    "STEP_FINALIZE",
    "PauseResult",
    "ResumeResult",
    "ResumeLockBusyError",
    "VanillaPauseResume",
    "VirtualizationPlatform",
    "firecracker_platform",
    "xen_platform",
    "platform_by_name",
    "RunQueue",
    "Sandbox",
    "SandboxError",
    "SandboxState",
    "CfsPolicy",
    "Credit2Policy",
    "SchedulerPolicy",
    "SandboxSnapshot",
    "SnapshotStore",
    "VcpuSnapshot",
    "Vcpu",
    "VcpuState",
]
