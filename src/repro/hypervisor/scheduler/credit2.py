"""Credit2-style policy (Xen).

Credit2 gives each vCPU a credit budget that burns while it runs; run
queues are kept sorted so "the process with the least remaining credit
first" — the paper's description — really means the queue is ordered by
how much credit remains, and the scheduler picks the head.

Faithful simplifications: a single global credit reset threshold
(instead of per-runqueue epochs) and weight-proportional burn rates.
"""

from __future__ import annotations

from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.hypervisor.vcpu import Vcpu
from repro.sim.units import milliseconds

#: Fresh credit grant on (re)entry to a queue, in credit units.
CREDIT_INITIAL = 10_000.0

#: Credits burned per millisecond of CPU at weight 1024.
CREDIT_BURN_PER_MS = 500.0

#: When the head's credit dips below this, everyone gets a refill.
CREDIT_RESET_THRESHOLD = 0.0


class Credit2Policy(SchedulerPolicy):
    """Xen's credit2 scheduler, reduced to its queue-ordering essence."""

    name = "credit2"

    def __init__(self, timeslice_ns: int = milliseconds(5)) -> None:
        if timeslice_ns <= 0:
            raise ValueError(f"timeslice must be positive, got {timeslice_ns}")
        self._timeslice_ns = timeslice_ns

    def sort_key(self, vcpu: Vcpu) -> float:
        # Head of queue = next to run = most deserving = *highest*
        # remaining credit; the list sorts ascending, so negate.
        return -vcpu.credit

    def on_enqueue(self, vcpu: Vcpu) -> None:
        self.observe_enqueue(vcpu)
        if vcpu.credit <= CREDIT_RESET_THRESHOLD:
            vcpu.credit = CREDIT_INITIAL

    def charge(self, vcpu: Vcpu, ran_ns: int) -> None:
        if ran_ns < 0:
            raise ValueError(f"negative runtime {ran_ns}")
        weight_scale = vcpu.weight / 1024.0
        vcpu.credit -= CREDIT_BURN_PER_MS * (ran_ns / 1_000_000.0) / max(
            weight_scale, 1e-9
        )

    def default_timeslice_ns(self) -> int:
        return self._timeslice_ns
