"""Scheduler policies for the simulated hypervisor."""

from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.hypervisor.scheduler.cfs import CfsPolicy
from repro.hypervisor.scheduler.credit2 import Credit2Policy

__all__ = ["SchedulerPolicy", "CfsPolicy", "Credit2Policy"]
