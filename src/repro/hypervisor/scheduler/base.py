"""Scheduler policy interface.

The paper notes the run-queue sort attribute "depends on the
virtualization system and the scheduler algorithm used" — credit2 sorts
by remaining credit on Xen, CFS by virtual runtime on KVM.  A policy
supplies the sort key, the default timeslice, and the bookkeeping
applied when a vCPU consumes CPU time, so the same run-queue and
pause/resume machinery serves both platforms.
"""

from __future__ import annotations

import abc

from repro.hypervisor.vcpu import Vcpu
from repro.obs.context import NULL_OBS, Observability


class SchedulerPolicy(abc.ABC):
    """Strategy object: how a platform orders and charges vCPUs."""

    #: Human-readable policy name ("credit2", "cfs").
    name: str = "abstract"

    #: Observability wiring; platforms swap in a live bundle.
    obs: Observability = NULL_OBS

    #: (registry, counter) bound at first enabled enqueue; re-bound on
    #: registry identity change so bundle swaps can't leak increments
    #: into a detached registry.
    _bound_enqueue = (None, None)

    def observe_enqueue(self, vcpu: Vcpu) -> None:
        """Metric hook concrete policies call from ``on_enqueue``."""
        obs = self.obs
        if obs.enabled:
            metrics = obs.metrics
            registry, counter = self._bound_enqueue
            if registry is not metrics:
                counter = metrics.counter(f"scheduler.{self.name}.enqueue")
                self._bound_enqueue = (metrics, counter)
            counter.inc()

    @abc.abstractmethod
    def sort_key(self, vcpu: Vcpu) -> float:
        """Run-queue ordering key; smallest runs first."""

    @abc.abstractmethod
    def on_enqueue(self, vcpu: Vcpu) -> None:
        """Normalize per-vCPU accounting when it becomes runnable."""

    @abc.abstractmethod
    def charge(self, vcpu: Vcpu, ran_ns: int) -> None:
        """Account *ran_ns* of CPU time consumed by *vcpu*."""

    @abc.abstractmethod
    def default_timeslice_ns(self) -> int:
        """Preemption quantum for general-purpose run queues."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
