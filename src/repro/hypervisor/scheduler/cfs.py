"""CFS-style policy (Linux KVM / Firecracker hosts).

The completely fair scheduler orders entities by *virtual runtime*: the
entity that has run least (weighted) runs next.  Firecracker microVM
vCPUs are ordinary host threads scheduled by CFS, so this is the policy
active in the paper's Firecracker experiments.
"""

from __future__ import annotations

from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.hypervisor.vcpu import Vcpu
from repro.sim.units import milliseconds

#: Weight that maps 1 ns of real runtime to 1 ns of vruntime.
NICE_0_WEIGHT = 1024.0


class CfsPolicy(SchedulerPolicy):
    """Completely-fair-scheduler essentials: vruntime ordering."""

    name = "cfs"

    def __init__(self, timeslice_ns: int = milliseconds(5)) -> None:
        if timeslice_ns <= 0:
            raise ValueError(f"timeslice must be positive, got {timeslice_ns}")
        self._timeslice_ns = timeslice_ns
        self._min_vruntime = 0.0

    def sort_key(self, vcpu: Vcpu) -> float:
        return vcpu.vruntime

    def on_enqueue(self, vcpu: Vcpu) -> None:
        self.observe_enqueue(vcpu)
        # A woken entity is placed at the queue's min vruntime so it
        # neither starves others nor is starved (CFS's sleeper logic,
        # reduced to its placement effect).
        if vcpu.vruntime < self._min_vruntime:
            vcpu.vruntime = self._min_vruntime

    def charge(self, vcpu: Vcpu, ran_ns: int) -> None:
        if ran_ns < 0:
            raise ValueError(f"negative runtime {ran_ns}")
        vcpu.vruntime += ran_ns * (NICE_0_WEIGHT / max(vcpu.weight, 1e-9))
        if vcpu.vruntime > self._min_vruntime:
            self._min_vruntime = max(self._min_vruntime, vcpu.vruntime - 1e9)

    def default_timeslice_ns(self) -> int:
        return self._timeslice_ns
