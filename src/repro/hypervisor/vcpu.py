"""Virtual CPUs: the schedulable entities of the hypervisor model."""

from __future__ import annotations

import enum
import itertools
from typing import Optional

from repro.hypervisor.load_tracking import DEFAULT_ENTITY_WEIGHT

_vcpu_ids = itertools.count()


class VcpuState(enum.Enum):
    """Lifecycle of a vCPU, mirroring its sandbox plus queue residency."""

    OFFLINE = "offline"        # sandbox not started
    RUNNABLE = "runnable"      # on a run queue, waiting for the core
    RUNNING = "running"        # currently on the core
    PAUSED = "paused"          # removed from run queues (sandbox paused)


class Vcpu:
    """One virtual CPU of a sandbox.

    Schedulers order vCPUs by a policy-specific sort key fed by
    ``credit`` (credit2) or ``vruntime`` (CFS); both fields live here so
    a sandbox can migrate between platforms in tests.
    """

    __slots__ = (
        "vcpu_id",
        "index",
        "sandbox_id",
        "weight",
        "credit",
        "vruntime",
        "state",
        "runqueue_id",
    )

    def __init__(
        self,
        index: int,
        sandbox_id: str,
        weight: float = DEFAULT_ENTITY_WEIGHT,
        credit: float = 0.0,
        vruntime: float = 0.0,
    ) -> None:
        if index < 0:
            raise ValueError(f"vCPU index must be >= 0, got {index}")
        self.vcpu_id: int = next(_vcpu_ids)
        self.index = index
        self.sandbox_id = sandbox_id
        self.weight = weight
        self.credit = credit
        self.vruntime = vruntime
        self.state = VcpuState.OFFLINE
        self.runqueue_id: Optional[int] = None

    def mark_runnable(self, runqueue_id: int) -> None:
        self.state = VcpuState.RUNNABLE
        self.runqueue_id = runqueue_id

    def mark_paused(self) -> None:
        self.state = VcpuState.PAUSED
        self.runqueue_id = None

    def mark_running(self) -> None:
        self.state = VcpuState.RUNNING

    def __repr__(self) -> str:
        return (
            f"Vcpu(#{self.vcpu_id} {self.sandbox_id}/{self.index} "
            f"{self.state.value} credit={self.credit:.1f})"
        )
