"""Sandboxes: the microVMs / VMs the FaaS platform runs functions in.

A sandbox owns its vCPUs and memory and moves through a strict
lifecycle state machine; the pause/resume transitions are the ones the
paper optimizes.  HORSE-specific pause-time artifacts (the sorted
``merge_vcpus`` list, the P2SM precomputed state, the coalesced load
update) hang off the sandbox exactly as the paper describes ("save
these two values as an attribute of the sandbox").
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.core.coalesce import CoalescedUpdate
from repro.hypervisor.vcpu import Vcpu

if TYPE_CHECKING:  # import cycle guard: p2sm only needed for typing
    from repro.core.p2sm import P2SMState

_sandbox_seq = itertools.count()


class SandboxState(enum.Enum):
    CREATING = "creating"
    RUNNING = "running"
    PAUSED = "paused"
    RESUMING = "resuming"
    STOPPED = "stopped"


#: Legal state-machine edges; anything else raises SandboxError.
_TRANSITIONS = {
    SandboxState.CREATING: {SandboxState.RUNNING, SandboxState.STOPPED},
    SandboxState.RUNNING: {SandboxState.PAUSED, SandboxState.STOPPED},
    SandboxState.PAUSED: {SandboxState.RESUMING, SandboxState.STOPPED},
    SandboxState.RESUMING: {SandboxState.RUNNING, SandboxState.STOPPED},
    SandboxState.STOPPED: set(),
}


class SandboxError(Exception):
    """Illegal sandbox operation (bad transition, wrong state, ...)."""


class Sandbox:
    """One microVM with its vCPUs, memory, and pause/resume artifacts."""

    def __init__(
        self,
        vcpus: int,
        memory_mb: int,
        sandbox_id: Optional[str] = None,
        is_ull: bool = False,
    ) -> None:
        if vcpus < 1:
            raise SandboxError(f"sandbox needs >= 1 vCPU, got {vcpus}")
        if memory_mb < 1:
            raise SandboxError(f"sandbox needs >= 1 MB, got {memory_mb}")
        self.sandbox_id = sandbox_id or f"sb-{next(_sandbox_seq)}"
        self.memory_mb = memory_mb
        self.is_ull = is_ull
        self.state = SandboxState.CREATING
        self.vcpus: List[Vcpu] = [
            Vcpu(index=i, sandbox_id=self.sandbox_id) for i in range(vcpus)
        ]
        # -- HORSE pause-time artifacts (populated by the fast path) ----
        #: Sandbox vCPUs pre-sorted by the active scheduler key.
        self.merge_vcpus: Optional[List[Vcpu]] = None
        #: Precomputed arrayB/posA against the assigned ull_runqueue.
        self.p2sm_state: Optional["P2SMState"] = None
        #: Precomputed alpha^n and beta term for the fused load update.
        self.coalesced_update: Optional[CoalescedUpdate] = None
        #: ull_runqueue this paused sandbox is tied to (HORSE §4.1.3).
        self.assigned_ull_runqueue: Optional[int] = None
        # -- lifecycle bookkeeping ---------------------------------------
        self.pause_count = 0
        self.resume_count = 0
        #: observers called as f(sandbox, new_state) after each legal
        #: transition — how toolstack mirrors (e.g. XenStore) track
        #: lifecycle without the state machine knowing about them.
        self.observers: List[Callable[["Sandbox", SandboxState], None]] = []

    # ------------------------------------------------------------------
    @property
    def vcpu_count(self) -> int:
        return len(self.vcpus)

    def transition(self, target: SandboxState) -> None:
        """Move to *target*, enforcing the lifecycle state machine."""
        if target not in _TRANSITIONS[self.state]:
            raise SandboxError(
                f"{self.sandbox_id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target
        if target is SandboxState.PAUSED:
            self.pause_count += 1
        for observer in self.observers:
            observer(self, target)

    def require_state(self, *allowed: SandboxState) -> None:
        """Raise unless the sandbox is in one of *allowed* states."""
        if self.state not in allowed:
            names = "/".join(s.value for s in allowed)
            raise SandboxError(
                f"{self.sandbox_id}: expected state {names}, is {self.state.value}"
            )

    def clear_horse_artifacts(self) -> None:
        """Drop pause-time precomputation (after resume or on stop)."""
        self.merge_vcpus = None
        self.p2sm_state = None
        self.coalesced_update = None
        self.assigned_ull_runqueue = None

    def __repr__(self) -> str:
        kind = "uLL " if self.is_ull else ""
        return (
            f"Sandbox({self.sandbox_id}, {kind}{self.vcpu_count} vCPU, "
            f"{self.memory_mb} MB, {self.state.value})"
        )
