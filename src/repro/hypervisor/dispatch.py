"""Core dispatchers: actually *run* what sits on the run queues.

The pause/resume machinery places vCPUs on sorted run queues; this
module executes them in simulated time, which gives three paper-relevant
behaviors a concrete implementation:

* **timeslices** — a general core preempts after the policy's quantum
  (~5 ms); a reserved uLL core preempts after 1 µs ("each task on the
  ull_runqueue has a maximum timeslice of 1 µs", §4.1.3);
* **policy accounting** — each slice charges credit (credit2) or
  vruntime (CFS) and re-sorts the queue, so long-running work really
  rotates;
* **priority preemption** — P2SM merge threads "are given the highest
  priority to preempt any task on the run queue where it is scheduled"
  (§4.1.3); :meth:`CoreDispatcher.preempt` models exactly that, and the
  victim's accumulated delay is what the §5.4 study measures at the p99.

Work arrives as :class:`WorkItem` (vCPU + remaining ns + completion
callback); the dispatcher interleaves items according to the queue's
sort order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.hypervisor.costs import CostModel
from repro.hypervisor.cpu import Host
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.hypervisor.vcpu import Vcpu
from repro.sim.engine import Engine
from repro.sim.event import Event, EventPriority


@dataclass
class WorkItem:
    """CPU work bound to one vCPU."""

    vcpu: Vcpu
    remaining_ns: int
    on_complete: Optional[Callable[["WorkItem"], None]] = None
    #: total time this item spent preempted by higher-priority threads
    preempted_ns: int = 0
    #: simulated instant the item finished (None while pending)
    completed_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.remaining_ns <= 0:
            raise ValueError(f"work must be positive, got {self.remaining_ns}")


class CoreDispatcher:
    """Runs one core's run queue: slice, charge, rotate, complete."""

    def __init__(
        self,
        engine: Engine,
        runqueue: RunQueue,
        policy: SchedulerPolicy,
        costs: CostModel,
    ) -> None:
        self.engine = engine
        self.runqueue = runqueue
        self.policy = policy
        self.costs = costs
        self._items: Dict[int, WorkItem] = {}  # vcpu_id -> item
        self._current: Optional[WorkItem] = None
        self._slice_event: Optional[Event] = None
        self._slice_started_ns = 0
        self.completed: List[WorkItem] = []
        self.context_switches = 0
        self.preemptions = 0

    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._current is not None

    @property
    def pending(self) -> int:
        return len(self._items) + (1 if self._current else 0)

    def submit(self, item: WorkItem) -> None:
        """Enqueue a vCPU's work; starts the core if it was idle."""
        if item.vcpu.vcpu_id in self._items or (
            self._current is not None
            and self._current.vcpu.vcpu_id == item.vcpu.vcpu_id
        ):
            raise ValueError(
                f"vCPU #{item.vcpu.vcpu_id} already has work on core "
                f"{self.runqueue.core_id}"
            )
        self._items[item.vcpu.vcpu_id] = item
        self.policy.on_enqueue(item.vcpu)
        self.runqueue.enqueue_sorted(item.vcpu, self.engine.now)
        if not self.busy:
            self._dispatch_next()

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------
    def _dispatch_next(self) -> None:
        vcpu = self.runqueue.pop_next()
        if vcpu is None:
            self._current = None
            return
        item = self._items.pop(vcpu.vcpu_id)
        self._current = item
        vcpu.mark_running()
        self._slice_started_ns = self.engine.now
        slice_ns = min(self.runqueue.timeslice_ns, item.remaining_ns)
        self._slice_event = self.engine.schedule_after(
            slice_ns,
            self._end_slice,
            priority=EventPriority.SCHEDULER,
            label=f"slice:core{self.runqueue.core_id}",
        )

    def _end_slice(self) -> None:
        item = self._current
        if item is None:
            return
        ran_ns = self.engine.now - self._slice_started_ns
        self._account(item, ran_ns)
        self._current = None
        self._slice_event = None
        if item.remaining_ns <= 0:
            item.completed_at = self.engine.now
            self.completed.append(item)
            if item.on_complete is not None:
                item.on_complete(item)
        else:
            # Rotate: back onto the queue at its new sort position.
            self._items[item.vcpu.vcpu_id] = item
            self.runqueue.enqueue_sorted_without_load(item.vcpu)
            self.context_switches += 1
        self._dispatch_next()

    def _account(self, item: WorkItem, ran_ns: int) -> None:
        item.remaining_ns -= ran_ns
        self.policy.charge(item.vcpu, ran_ns)
        self.runqueue.load.decay_to(self.engine.now)

    # ------------------------------------------------------------------
    # Priority preemption (merge threads, §4.1.3)
    # ------------------------------------------------------------------
    def preempt(self, thread_ns: int) -> int:
        """A highest-priority thread takes the core for *thread_ns*.

        The running item (if any) is stopped mid-slice, charged for
        what it ran, and delayed by the thread's occupancy plus two
        context switches; it resumes at the head of the line.  Returns
        the delay imposed on the victim (0 on an idle core).
        """
        if thread_ns <= 0:
            raise ValueError(f"thread occupancy must be positive: {thread_ns}")
        victim = self._current
        if victim is None:
            return 0
        # Stop the in-flight slice.
        assert self._slice_event is not None
        self._slice_event.cancel()
        ran_ns = self.engine.now - self._slice_started_ns
        self._account(victim, ran_ns)
        self.preemptions += 1
        delay_ns = thread_ns + 2 * round(self.costs.context_switch_ns)
        victim.preempted_ns += delay_ns
        self._current = None

        def resume_victim() -> None:
            if victim.remaining_ns <= 0:
                victim.completed_at = self.engine.now
                self.completed.append(victim)
                if victim.on_complete is not None:
                    victim.on_complete(victim)
                self._dispatch_next()
                return
            # Head-of-line restart for the victim.
            self._current = victim
            victim.vcpu.mark_running()
            self._slice_started_ns = self.engine.now
            slice_ns = min(self.runqueue.timeslice_ns, victim.remaining_ns)
            self._slice_event = self.engine.schedule_after(
                slice_ns,
                self._end_slice,
                priority=EventPriority.SCHEDULER,
                label=f"slice:core{self.runqueue.core_id}",
            )

        self.engine.schedule_after(
            delay_ns,
            resume_victim,
            priority=EventPriority.INTERRUPT,
            label=f"merge-thread:core{self.runqueue.core_id}",
        )
        return delay_ns


class HostDispatcher:
    """One CoreDispatcher per core of a host."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        policy: SchedulerPolicy,
        costs: CostModel,
    ) -> None:
        self.engine = engine
        self.host = host
        self.cores: Dict[int, CoreDispatcher] = {
            core_id: CoreDispatcher(engine, runqueue, policy, costs)
            for core_id, runqueue in host.runqueues.items()
        }

    def core(self, core_id: int) -> CoreDispatcher:
        try:
            return self.cores[core_id]
        except KeyError:
            raise KeyError(f"host has no core {core_id}") from None

    def least_busy_general(self) -> CoreDispatcher:
        """The general core with the least queued work items."""
        general = [
            self.cores[rq.core_id] for rq in self.host.general_runqueues()
        ]
        return min(general, key=lambda d: (d.pending, d.runqueue.core_id))

    def submit_to_least_busy(self, item: WorkItem) -> CoreDispatcher:
        dispatcher = self.least_busy_general()
        dispatcher.submit(item)
        return dispatcher

    def total_completed(self) -> int:
        return sum(len(d.completed) for d in self.cores.values())
