"""The vanilla sandbox pause/resume path (paper §3.1).

``VanillaPauseResume.resume`` executes the six steps the paper unrolls:

1. parse the resume command's parameters;
2. acquire the global resume lock;
3. sanity-check the target sandbox (must be paused);
4. for each vCPU, pick a run queue and *sorted-merge* the vCPU into it;
5. for each inserted vCPU, update the queue's tracked load (the DVFS
   input) with one affine PELT fold;
6. release the lock and flip the sandbox to running.

Every step both *does the real work* on the run-queue structures and
*charges simulated time* from the cost model; the per-step durations
come back in a :class:`~repro.metrics.recorder.Breakdown`, which is
exactly the data behind the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.hypervisor.costs import CostModel
from repro.hypervisor.cpu import Host
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.sandbox import Sandbox, SandboxError, SandboxState
from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.metrics.recorder import Breakdown
from repro.obs.context import Observability, current as current_obs
from repro.obs.phases import observe_resume

# Step names, used as Breakdown phase keys everywhere downstream.
#: Injected stall (slow-resume fault); present only in chaos runs.
STEP_STALL = "0-stall"
STEP_PARSE = "1-parse"
STEP_LOCK = "2-lock"
STEP_SANITY = "3-sanity"
STEP_MERGE = "4-sorted-merge"
STEP_LOAD = "5-load-update"
STEP_FINALIZE = "6-finalize"

#: The two steps the paper attributes 87.5-93.1 % of the resume to.
HOT_STEPS = (STEP_MERGE, STEP_LOAD)


@dataclass
class ResumeResult:
    """Outcome of one resume call."""

    sandbox_id: str
    breakdown: Breakdown
    runqueue_ids: List[int] = field(default_factory=list)

    @property
    def total_ns(self) -> int:
        return self.breakdown.total_ns


@dataclass
class PauseResult:
    """Outcome of one pause call."""

    sandbox_id: str
    duration_ns: int
    dequeued_vcpus: int


class ResumeLockBusyError(SandboxError):
    """A second resume raced the global resume lock."""


# ----------------------------------------------------------------------
# Injected resume faults (repro.resilience failure domains)
# ----------------------------------------------------------------------

#: Fault kinds a resume-path fault hook may return.
RESUME_FAULT_TRANSIENT = "transient_resume_error"
RESUME_FAULT_SLOW = "slow_resume"
RESUME_FAULT_HUNG = "hung_resume"


@dataclass(frozen=True)
class ResumeFault:
    """One fault decision for a single resume call.

    ``stall_ns`` is only meaningful for :data:`RESUME_FAULT_SLOW` — the
    extra latency charged to the resume's breakdown.
    """

    kind: str
    stall_ns: int = 0


#: A fault hook inspects ``(sandbox, now_ns)`` and returns the fault to
#: apply to this resume, or None for a clean resume.  Installed by the
#: resilience layer's failure injector; None (the default) costs one
#: ``is not None`` check.
ResumeFaultHook = Callable[[Sandbox, int], Optional[ResumeFault]]


class TransientResumeError(SandboxError):
    """The hypervisor resume command failed transiently.

    The target sandbox is left PAUSED and untouched — retrying (or
    re-pooling it) is legal.  Carries the sandbox so callers above the
    start-strategy layer can recover it.
    """

    def __init__(self, sandbox: Sandbox, message: str) -> None:
        super().__init__(message)
        self.sandbox = sandbox


class HungResumeError(SandboxError):
    """The resume operation stalled permanently.

    The sandbox is left stuck in RESUMING (nothing was enqueued); the
    caller is expected to detect the hang via its attempt timeout and
    destroy the sandbox.
    """

    def __init__(self, sandbox: Sandbox, message: str) -> None:
        super().__init__(message)
        self.sandbox = sandbox


def apply_resume_fault(
    fault_hook: Optional[ResumeFaultHook],
    sandbox: Sandbox,
    now_ns: int,
    path: str,
) -> int:
    """Consult *fault_hook* for this resume; raise or return a stall.

    Returns the stall to charge (0 for a clean resume); raises
    :class:`TransientResumeError` / :class:`HungResumeError` for the
    terminal kinds.  Shared by the vanilla and the HORSE resume paths so
    both fail identically under the same injector.
    """
    if fault_hook is None:
        return 0
    fault = fault_hook(sandbox, now_ns)
    if fault is None:
        return 0
    if fault.kind == RESUME_FAULT_TRANSIENT:
        raise TransientResumeError(
            sandbox,
            f"{sandbox.sandbox_id}: injected transient {path} resume error",
        )
    if fault.kind == RESUME_FAULT_HUNG:
        # The command got far enough to flip the sandbox into RESUMING,
        # then stalled forever; nothing was enqueued.
        sandbox.require_state(SandboxState.PAUSED)
        sandbox.transition(SandboxState.RESUMING)
        raise HungResumeError(
            sandbox, f"{sandbox.sandbox_id}: injected hung {path} resume"
        )
    if fault.kind == RESUME_FAULT_SLOW:
        if fault.stall_ns < 0:
            raise ValueError(f"negative stall {fault.stall_ns}")
        return fault.stall_ns
    raise ValueError(f"unknown resume fault kind {fault.kind!r}")


def _pause_counter(metrics):
    return metrics.counter("pause.count")


class VanillaPauseResume:
    """Unmodified pause/resume, as shipped by Firecracker/KVM and Xen."""

    def __init__(
        self,
        host: Host,
        policy: SchedulerPolicy,
        costs: CostModel,
        obs: Optional[Observability] = None,
    ) -> None:
        self.host = host
        self.policy = policy
        self.costs = costs
        # Defaults to the active observability context so drivers that
        # construct the resume path directly trace without plumbing.
        self.obs = obs if obs is not None else current_obs()
        self._resume_lock_owner: Optional[str] = None
        self.resumes = 0
        self.pauses = 0
        #: Optional per-resume fault decision (repro.resilience failure
        #: domains): transient errors, latency stalls, permanent hangs.
        self.fault_hook: Optional[ResumeFaultHook] = None

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def select_runqueue(self, _sandbox: Sandbox) -> RunQueue:
        """Vanilla placement rule: least-loaded general-purpose queue."""
        return self.host.least_loaded_general()

    def place_initial(self, sandbox: Sandbox, now_ns: int) -> None:
        """First placement when a sandbox boots (not timed — boot costs
        dominate and are charged by the start strategies)."""
        sandbox.require_state(SandboxState.CREATING)
        for vcpu in sandbox.vcpus:
            runqueue = self.select_runqueue(sandbox)
            self.policy.on_enqueue(vcpu)
            runqueue.enqueue_sorted(vcpu, now_ns)
        sandbox.transition(SandboxState.RUNNING)

    # ------------------------------------------------------------------
    # Pause
    # ------------------------------------------------------------------
    def pause(self, sandbox: Sandbox, now_ns: int) -> PauseResult:
        """Remove every vCPU from its run queue; sandbox goes PAUSED."""
        sandbox.require_state(SandboxState.RUNNING)
        duration = self.costs.pause_fixed_ns
        dequeued = 0
        for vcpu in sandbox.vcpus:
            if vcpu.runqueue_id is not None:
                runqueue = self.host.runqueues[vcpu.runqueue_id]
                if runqueue.dequeue(vcpu, now_ns):
                    dequeued += 1
                    duration += self.costs.pause_dequeue_vcpu_ns
            vcpu.mark_paused()
        sandbox.transition(SandboxState.PAUSED)
        self.pauses += 1
        if self.obs.enabled:
            metrics = self.obs.metrics
            if metrics.enabled:
                metrics.bound("pause.count", _pause_counter).inc()
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.record_span(
                    "pause", now_ns, round(duration), category="pause",
                    tid=tracer.tid_for(sandbox.sandbox_id),
                    sandbox=sandbox.sandbox_id, path="vanilla",
                    dequeued=dequeued,
                )
        return PauseResult(
            sandbox_id=sandbox.sandbox_id,
            duration_ns=round(duration),
            dequeued_vcpus=dequeued,
        )

    # ------------------------------------------------------------------
    # Resume (the six steps)
    # ------------------------------------------------------------------
    def resume(self, sandbox: Sandbox, now_ns: int) -> ResumeResult:
        breakdown = Breakdown()

        # Step 0 (chaos runs only): injected fault — may raise, may stall.
        stall_ns = apply_resume_fault(self.fault_hook, sandbox, now_ns, "vanilla")
        if stall_ns:
            breakdown.add(STEP_STALL, round(stall_ns))

        # Step 1: parse input parameters.
        breakdown.add(STEP_PARSE, round(self.costs.resume_parse_ns))

        # Step 2: take the global resume lock.
        if self._resume_lock_owner is not None:
            raise ResumeLockBusyError(
                f"resume lock held by {self._resume_lock_owner!r}"
            )
        self._resume_lock_owner = sandbox.sandbox_id
        breakdown.add(STEP_LOCK, round(self.costs.resume_lock_ns))

        try:
            # Step 3: sanity checks (target must be paused).
            sandbox.require_state(SandboxState.PAUSED)
            sandbox.transition(SandboxState.RESUMING)
            breakdown.add(STEP_SANITY, round(self.costs.resume_sanity_ns))

            # Steps 4 + 5, interleaved per vCPU as the paper describes.
            runqueue_ids, scan_steps = self._enqueue_all(sandbox, now_ns, breakdown)

            # Step 6: release the lock, sandbox runs.
            sandbox.transition(SandboxState.RUNNING)
            sandbox.resume_count += 1
            breakdown.add(STEP_FINALIZE, round(self.costs.resume_finalize_ns))
        finally:
            self._resume_lock_owner = None

        self.resumes += 1
        if self.obs.enabled:
            self._emit_resume_obs(
                sandbox, now_ns, breakdown, runqueue_ids, scan_steps, "vanilla"
            )
        return ResumeResult(
            sandbox_id=sandbox.sandbox_id,
            breakdown=breakdown,
            runqueue_ids=runqueue_ids,
        )

    def _emit_resume_obs(
        self,
        sandbox: Sandbox,
        now_ns: int,
        breakdown: Breakdown,
        runqueue_ids: List[int],
        scan_steps: int,
        path: str,
    ) -> None:
        """Lay the six steps out as nested spans and feed the phase
        histograms.  The children tile the root exactly, so the span
        total always reconciles with the breakdown.

        Span building and the histogram updates gate independently on
        ``tracer.enabled`` / ``metrics.enabled``: a metrics-only bundle
        never pays span kwarg construction, a tracer-only bundle never
        touches the registry.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            pid = (
                self.host.runqueues[runqueue_ids[0]].core_id
                if runqueue_ids
                else 0
            )
            tracer.name_process(pid, f"cpu{pid}")
            tid = tracer.tid_for(sandbox.sandbox_id, pid=pid)
            timeline = tracer.timeline(
                "resume", now_ns, category="resume", pid=pid, tid=tid,
                sandbox=sandbox.sandbox_id, path=path,
                vcpus=sandbox.vcpu_count,
            )
            phases = breakdown.phases
            if phases.get(STEP_STALL):
                timeline.phase("stall", phases[STEP_STALL], injected=True)
            timeline.phase("parse", phases.get(STEP_PARSE, 0))
            timeline.phase("lock", phases.get(STEP_LOCK, 0))
            timeline.phase("sanity", phases.get(STEP_SANITY, 0))
            timeline.phase(
                "merge", phases.get(STEP_MERGE, 0), scan_steps=scan_steps
            )
            timeline.phase(
                "load_update", phases.get(STEP_LOAD, 0),
                coalesced=False, folds=sandbox.vcpu_count,
            )
            timeline.phase("dispatch", phases.get(STEP_FINALIZE, 0))
            timeline.finish(total_ns=breakdown.total_ns)
        metrics = self.obs.metrics
        if metrics.enabled:
            observe_resume(metrics, breakdown)

    def _enqueue_all(
        self, sandbox: Sandbox, now_ns: int, breakdown: Breakdown
    ) -> tuple[List[int], int]:
        """Steps 4 and 5 for every vCPU; charges per-vCPU costs.

        Returns the run queues used and the total sorted-insert scan
        steps (span attribution data for the observability layer).
        """
        merge_ns = 0.0
        load_ns = 0.0
        total_scan_steps = 0
        runqueue_ids: List[int] = []
        for position, vcpu in enumerate(sandbox.vcpus):
            runqueue = self.select_runqueue(sandbox)
            self.policy.on_enqueue(vcpu)
            # Step 4: real O(n) sorted insert; count the scan hops.
            scan_steps = runqueue.enqueue_sorted_without_load(vcpu)
            total_scan_steps += scan_steps
            if position == 0:
                merge_ns += self.costs.merge_first_vcpu_ns
            else:
                merge_ns += self.costs.merge_warm_vcpu_ns
            merge_ns += self.costs.merge_scan_step_ns * scan_steps
            # Step 5: real PELT fold on that queue's load.
            runqueue.load.enqueue_entity(now_ns, vcpu.weight)
            if position == 0:
                load_ns += self.costs.load_update_first_ns
            else:
                load_ns += self.costs.load_update_warm_ns
            runqueue_ids.append(runqueue.runqueue_id)
        breakdown.add(STEP_MERGE, round(merge_ns))
        breakdown.add(STEP_LOAD, round(load_ns))
        return runqueue_ids, total_scan_steps
