"""Virtualization platform assembly.

A :class:`VirtualizationPlatform` bundles everything a FaaS layer or an
experiment needs from the hypervisor: the host, the scheduler policy,
the cost model, the vanilla pause/resume path, and a snapshot store.
Factories build the two platforms the paper evaluates: Firecracker
(KVM + CFS) and Xen (credit2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hypervisor.costs import CostModel, FIRECRACKER_COSTS, XEN_COSTS
from repro.hypervisor.cpu import CLOUDLAB_R650, Host, HostSpec
from repro.hypervisor.dvfs import GovernorMode
from repro.hypervisor.pause_resume import VanillaPauseResume
from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.hypervisor.scheduler.cfs import CfsPolicy
from repro.hypervisor.scheduler.credit2 import Credit2Policy
from repro.hypervisor.snapshot import SnapshotStore
from repro.obs.context import Observability, current as current_obs


@dataclass
class VirtualizationPlatform:
    """A ready-to-use hypervisor instance."""

    name: str
    host: Host
    policy: SchedulerPolicy
    costs: CostModel
    vanilla: VanillaPauseResume
    snapshots: SnapshotStore

    def attach_observability(self, obs: Observability) -> None:
        """Point every instrumented hypervisor component at *obs*."""
        self.vanilla.obs = obs
        self.policy.obs = obs
        self.host.attach_observability(obs)


def _build(
    name: str,
    costs: CostModel,
    policy: SchedulerPolicy,
    spec: HostSpec,
    reserved_ull_cores: int,
    governor_mode: GovernorMode,
) -> VirtualizationPlatform:
    host = Host(
        spec=spec,
        sort_key=policy.sort_key,
        default_timeslice_ns=policy.default_timeslice_ns(),
        ull_timeslice_ns=round(costs.ull_timeslice_ns),
        reserved_ull_cores=reserved_ull_cores,
        governor_mode=governor_mode,
    )
    vanilla = VanillaPauseResume(host=host, policy=policy, costs=costs)
    platform = VirtualizationPlatform(
        name=name,
        host=host,
        policy=policy,
        costs=costs,
        vanilla=vanilla,
        snapshots=SnapshotStore(costs),
    )
    # Platforms built inside an ``obs.activate(...)`` block (the CLI's
    # ``trace`` command, tests) come up instrumented; the default is
    # the NULL bundle, i.e. a single enabled-check of overhead.
    platform.attach_observability(current_obs())
    return platform


def firecracker_platform(
    spec: HostSpec = CLOUDLAB_R650,
    reserved_ull_cores: int = 1,
    governor_mode: GovernorMode = GovernorMode.ONDEMAND,
) -> VirtualizationPlatform:
    """Firecracker on KVM: microVM vCPUs are CFS-scheduled host threads."""
    return _build(
        "firecracker",
        FIRECRACKER_COSTS,
        CfsPolicy(),
        spec,
        reserved_ull_cores,
        governor_mode,
    )


def xen_platform(
    spec: HostSpec = CLOUDLAB_R650,
    reserved_ull_cores: int = 1,
    governor_mode: GovernorMode = GovernorMode.ONDEMAND,
) -> VirtualizationPlatform:
    """Xen 4.17 with the credit2 scheduler (and the LightVM-style
    in-memory XenStore the paper applies, folded into the cost model)."""
    return _build(
        "xen",
        XEN_COSTS,
        Credit2Policy(),
        spec,
        reserved_ull_cores,
        governor_mode,
    )


def platform_by_name(name: str, **kwargs) -> VirtualizationPlatform:
    """Factory lookup used by experiment drivers and examples."""
    factories = {"firecracker": firecracker_platform, "xen": xen_platform}
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; expected one of {sorted(factories)}"
        ) from None
    return factory(**kwargs)
