"""Physical host model: sockets, cores, and their run queues.

The paper's testbed is a Cloudlab r650: 2 Intel Xeon Platinum 8360Y
sockets x 36 cores at 2.4 GHz, 128 GB RAM.  :data:`CLOUDLAB_R650`
describes it; :class:`Host` instantiates the cores, one run queue per
core, and carves out the reserved ``ull_runqueue`` cores HORSE uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.hypervisor.dvfs import DvfsGovernor, FrequencyRange, GovernorMode
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.vcpu import Vcpu
from repro.obs.context import Observability


@dataclass(frozen=True)
class HostSpec:
    """Static description of a physical server."""

    name: str
    sockets: int
    cores_per_socket: int
    base_khz: int
    max_khz: int
    memory_mb: int
    hyperthreading: bool = False

    def __post_init__(self) -> None:
        if self.sockets <= 0 or self.cores_per_socket <= 0:
            raise ValueError(f"{self.name}: non-positive core topology")
        if self.memory_mb <= 0:
            raise ValueError(f"{self.name}: non-positive memory")

    @property
    def total_cores(self) -> int:
        threads = 2 if self.hyperthreading else 1
        return self.sockets * self.cores_per_socket * threads


#: The paper's testbed (hyperthreading disabled for the §2/§3 analysis).
CLOUDLAB_R650 = HostSpec(
    name="cloudlab-r650",
    sockets=2,
    cores_per_socket=36,
    base_khz=2_400_000,
    max_khz=3_500_000,
    memory_mb=128 * 1024,
)

#: A small edge node — uLL NFV workloads often run at the edge, where
#: reserving even one core for the ull_runqueue is a larger fraction of
#: the machine (useful for sensitivity studies).
EDGE_NODE = HostSpec(
    name="edge-node",
    sockets=1,
    cores_per_socket=8,
    base_khz=2_000_000,
    max_khz=3_000_000,
    memory_mb=32 * 1024,
)


@dataclass
class Core:
    """One physical core: identity, frequency, and current occupant."""

    core_id: int
    socket: int
    khz: int
    running: Optional[Vcpu] = None

    @property
    def busy(self) -> bool:
        return self.running is not None


class Host:
    """A running server: cores, their run queues, and memory accounting."""

    def __init__(
        self,
        spec: HostSpec,
        sort_key: Callable[[Vcpu], float],
        default_timeslice_ns: int,
        ull_timeslice_ns: int,
        reserved_ull_cores: int = 1,
        governor_mode: GovernorMode = GovernorMode.ONDEMAND,
    ) -> None:
        if reserved_ull_cores < 0:
            raise ValueError(f"negative reserved core count {reserved_ull_cores}")
        if reserved_ull_cores >= spec.total_cores:
            raise ValueError(
                f"cannot reserve {reserved_ull_cores} of {spec.total_cores} cores"
            )
        self.spec = spec
        self.governor = DvfsGovernor(
            mode=governor_mode,
            frequency=FrequencyRange(spec.base_khz // 3, spec.max_khz),
        )
        self.cores: List[Core] = []
        self.runqueues: Dict[int, RunQueue] = {}
        self._memory_used_mb = 0

        per_socket = spec.cores_per_socket * (2 if spec.hyperthreading else 1)
        for core_id in range(spec.total_cores):
            self.cores.append(
                Core(core_id=core_id, socket=core_id // per_socket, khz=spec.base_khz)
            )
        # The *last* reserved_ull_cores cores host the ull_runqueues,
        # keeping core 0 (where toolstacks pin housekeeping) general.
        first_ull = spec.total_cores - reserved_ull_cores
        for core in self.cores:
            is_ull = core.core_id >= first_ull
            self.runqueues[core.core_id] = RunQueue(
                runqueue_id=core.core_id,
                sort_key=sort_key,
                core_id=core.core_id,
                timeslice_ns=ull_timeslice_ns if is_ull else default_timeslice_ns,
                reserved_for_ull=is_ull,
            )
        # Queue partitions never change after construction; both views
        # are cached in runqueue_id order so the per-resume placement
        # scan does not rebuild them (least_loaded_general is on the
        # chaos hot path — see repro.obs.profile).
        self._general_runqueues: List[RunQueue] = [
            rq for rq in self.runqueues.values() if not rq.reserved_for_ull
        ]
        self._ull_runqueues: List[RunQueue] = [
            rq for rq in self.runqueues.values() if rq.reserved_for_ull
        ]

    # ------------------------------------------------------------------
    def attach_observability(self, obs: Observability) -> None:
        """Wire one obs bundle into the governor and every run queue.

        Load-fold counts are batched as plain ints on each
        :class:`~repro.hypervisor.load_tracking.RunqueueLoad`; a
        registry collector sums them at snapshot/render time so the
        fold hot path never touches the registry.
        """
        self.governor.obs = obs
        for runqueue in self.runqueues.values():
            runqueue.obs = obs
        if obs.metrics.enabled:
            loads = [rq.load for rq in self.runqueues.values()]
            iterated = obs.metrics.counter(
                "load.fold.iterated", "vanilla per-entity load folds"
            )
            coalesced = obs.metrics.counter(
                "load.fold.coalesced", "HORSE fused load folds"
            )

            def export_folds(
                _exported: List[int] = [0, 0],
                _loads: List = loads,
            ) -> None:
                total_iter = sum(load.folds_iterated for load in _loads)
                total_coal = sum(load.folds_coalesced for load in _loads)
                iterated.inc(total_iter - _exported[0])
                coalesced.inc(total_coal - _exported[1])
                _exported[0] = total_iter
                _exported[1] = total_coal

            obs.metrics.add_collector(export_folds)

    # ------------------------------------------------------------------
    # Run-queue views
    # ------------------------------------------------------------------
    def general_runqueues(self) -> List[RunQueue]:
        return list(self._general_runqueues)

    def ull_runqueues(self) -> List[RunQueue]:
        return list(self._ull_runqueues)

    def least_loaded_general(self) -> RunQueue:
        """The general queue with the lowest tracked load (vanilla
        placement rule for a resuming vCPU).

        Manual scan over the cached queue list: the queues iterate in
        runqueue_id order and only a strictly smaller (load, length)
        displaces the incumbent, so ties break toward the lowest id —
        exactly the old ``min`` over ``(load, len, id)`` tuples, minus
        the per-queue tuple and lambda allocations.
        """
        queues = self._general_runqueues
        if not queues:
            raise RuntimeError("host has no general-purpose run queues")
        best = queues[0]
        best_load = best.load.value
        best_len = best.entities._size
        for rq in queues:
            load = rq.load.value
            if load > best_load:
                continue
            length = rq.entities._size
            if load < best_load or length < best_len:
                best = rq
                best_load = load
                best_len = length
        return best

    def refresh_frequencies(self) -> None:
        """Let the governor re-pick each core's frequency from its load."""
        for core in self.cores:
            core.khz = self.governor.target_khz(self.runqueues[core.core_id].load.value)

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    @property
    def memory_used_mb(self) -> int:
        return self._memory_used_mb

    @property
    def memory_free_mb(self) -> int:
        return self.spec.memory_mb - self._memory_used_mb

    def allocate_memory(self, mb: int) -> None:
        if mb < 0:
            raise ValueError(f"negative allocation {mb} MB")
        if mb > self.memory_free_mb:
            raise MemoryError(
                f"host out of memory: want {mb} MB, free {self.memory_free_mb} MB"
            )
        self._memory_used_mb += mb

    def release_memory(self, mb: int) -> None:
        if mb < 0 or mb > self._memory_used_mb:
            raise ValueError(
                f"bad release of {mb} MB (used {self._memory_used_mb} MB)"
            )
        self._memory_used_mb -= mb

    def __repr__(self) -> str:
        return (
            f"Host({self.spec.name}, cores={self.spec.total_cores}, "
            f"ull_queues={len(self.ull_runqueues())}, "
            f"mem={self._memory_used_mb}/{self.spec.memory_mb} MB)"
        )
