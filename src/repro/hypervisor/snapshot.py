"""Snapshot / restore of sandboxes (the paper's *restore* scenario).

The paper's restore baseline is FaaSnap [8]: a snapshot of a booted
sandbox is kept on disk and restored instead of cold-booting, costing
~1300 us.  This module implements a working snapshot store — it really
serializes the sandbox's configuration and scheduling state and really
reconstitutes an equivalent sandbox — with the restore cost charged
from the cost model's three phases (snapshot load, memory map, device
resume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.hypervisor.costs import CostModel
from repro.hypervisor.sandbox import Sandbox, SandboxState


@dataclass(frozen=True)
class VcpuSnapshot:
    """Frozen scheduling state of one vCPU."""

    index: int
    weight: float
    credit: float
    vruntime: float


@dataclass(frozen=True)
class SandboxSnapshot:
    """A point-in-time image of a sandbox, sufficient to rebuild it."""

    source_id: str
    vcpus: List[VcpuSnapshot]
    memory_mb: int
    is_ull: bool

    @property
    def vcpu_count(self) -> int:
        return len(self.vcpus)


class SnapshotStore:
    """Named snapshot repository with modeled restore timing."""

    def __init__(self, costs: CostModel) -> None:
        self.costs = costs
        self._snapshots: Dict[str, SandboxSnapshot] = {}
        self.restores = 0

    def __contains__(self, name: str) -> bool:
        return name in self._snapshots

    def names(self) -> List[str]:
        return sorted(self._snapshots)

    def snapshot(self, name: str, sandbox: Sandbox) -> SandboxSnapshot:
        """Capture *sandbox* under *name* (sandbox must be quiesced:
        running or paused — FaaSnap snapshots a booted instance)."""
        sandbox.require_state(SandboxState.RUNNING, SandboxState.PAUSED)
        image = SandboxSnapshot(
            source_id=sandbox.sandbox_id,
            vcpus=[
                VcpuSnapshot(
                    index=v.index,
                    weight=v.weight,
                    credit=v.credit,
                    vruntime=v.vruntime,
                )
                for v in sandbox.vcpus
            ],
            memory_mb=sandbox.memory_mb,
            is_ull=sandbox.is_ull,
        )
        self._snapshots[name] = image
        return image

    def restore(self, name: str) -> tuple[Sandbox, int]:
        """Rebuild a fresh sandbox from snapshot *name*.

        Returns ``(sandbox, duration_ns)``; the new sandbox is in state
        CREATING and must be placed by the pause/resume machinery.  The
        duration is the paper's ~1300 us FaaSnap cost.
        """
        try:
            image = self._snapshots[name]
        except KeyError:
            raise KeyError(f"no snapshot named {name!r}") from None
        sandbox = Sandbox(
            vcpus=image.vcpu_count,
            memory_mb=image.memory_mb,
            is_ull=image.is_ull,
        )
        for vcpu, frozen in zip(sandbox.vcpus, image.vcpus):
            vcpu.weight = frozen.weight
            vcpu.credit = frozen.credit
            vcpu.vruntime = frozen.vruntime
        self.restores += 1
        return sandbox, self.costs.restore_ns
