"""Resume-phase metric names and the breakdown -> histogram bridge.

The paper's latency claim is a *per-phase* story: where do the
nanoseconds go between ``resume()`` and first instruction?  This module
fixes the phase taxonomy the registry exposes:

* ``resume.merge_ns``        — step 4, the run-queue sorted merge;
* ``resume.load_update_ns``  — step 5, the PELT load fold(s);
* ``resume.dispatch_ns``     — everything else (parse, lock, sanity,
  finalize): the command/dispatch overhead around the two hot steps.

The three phase histograms partition the resume exactly, so for any
recorded resume ``merge + load_update + dispatch == total`` — the
reconciliation property the observability tests assert.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.metrics import MetricRegistry

if TYPE_CHECKING:  # break the cycle: metrics.recorder imports repro.obs
    from repro.metrics.recorder import Breakdown

RESUME_MERGE_NS = "resume.merge_ns"
RESUME_LOAD_UPDATE_NS = "resume.load_update_ns"
RESUME_DISPATCH_NS = "resume.dispatch_ns"
RESUME_TOTAL_NS = "resume.total_ns"

#: The three histograms that partition a resume.
RESUME_PHASE_METRICS = (
    RESUME_MERGE_NS,
    RESUME_LOAD_UPDATE_NS,
    RESUME_DISPATCH_NS,
)


def dispatch_ns(breakdown: Breakdown) -> int:
    """Non-hot remainder of a resume: total minus merge minus load."""
    # Imported lazily: pause_resume's low-level deps import repro.obs,
    # so a module-level import here would be circular.
    from repro.hypervisor.pause_resume import STEP_LOAD, STEP_MERGE

    return (
        breakdown.total_ns
        - breakdown.phases.get(STEP_MERGE, 0)
        - breakdown.phases.get(STEP_LOAD, 0)
    )


#: (STEP_MERGE, STEP_LOAD), resolved once — the lazy import otherwise
#: costs a sys.modules lookup per recorded resume.
_STEPS = None


def _resume_handles(metrics: MetricRegistry):
    return (
        metrics.histogram(RESUME_MERGE_NS),
        metrics.histogram(RESUME_LOAD_UPDATE_NS),
        metrics.histogram(RESUME_DISPATCH_NS),
        metrics.histogram(RESUME_TOTAL_NS),
        metrics.counter("resume.count"),
    )


def observe_resume(metrics: MetricRegistry, breakdown: Breakdown) -> None:
    """Fold one resume's phase durations into the registry histograms.

    The five instrument handles are bound once per registry
    (``metrics.bound``), so steady-state cost is five C-level method
    calls — no name lookups, no enum re-hashing beyond the two phase
    reads.
    """
    global _STEPS
    if _STEPS is None:
        from repro.hypervisor.pause_resume import STEP_LOAD, STEP_MERGE

        _STEPS = (STEP_MERGE, STEP_LOAD)
    handles = metrics.bound("resume", _resume_handles)
    phases = breakdown.phases
    merge = phases.get(_STEPS[0], 0)
    load = phases.get(_STEPS[1], 0)
    total = breakdown.total_ns
    handles[0].observe(merge)
    handles[1].observe(load)
    handles[2].observe(total - merge - load)
    handles[3].observe(total)
    handles[4].inc()
