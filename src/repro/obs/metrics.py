"""The metric registry: counters, gauges, and ns-latency histograms.

One :class:`MetricRegistry` per observed run unifies what the ad-hoc
series recorders collect piecemeal: every instrumented component
get-or-creates named instruments from the registry it was wired with,
so a single snapshot shows the whole platform — resume-phase latency
histograms next to run-queue scan counters next to pool hit rates.

Instruments are deliberately primitive (no labels, no time windows):

* :class:`Counter` — monotonically increasing count;
* :class:`Gauge` — last-written value;
* :class:`Histogram` — fixed-bucket distribution tuned for nanosecond
  latencies (1-2-5 decades from 1 ns to 10 s), with exact ``sum`` and
  ``count`` so phase totals reconcile exactly against span durations.

``NULL_REGISTRY`` swallows everything; hot paths guard attribute
building behind ``registry.enabled`` / ``obs.enabled``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple


def _decades(lo_exp: int, hi_exp: int) -> Tuple[float, ...]:
    bounds: List[float] = []
    for exponent in range(lo_exp, hi_exp + 1):
        for mantissa in (1, 2, 5):
            bounds.append(mantissa * 10.0 ** exponent)
    return tuple(bounds)


#: Default histogram bounds: 1-2-5 series over 1 ns .. 10 s.
DEFAULT_LATENCY_BUCKETS_NS: Tuple[float, ...] = _decades(0, 10)


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket distribution with exact sum/count/min/max.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    anything beyond the last edge.  ``quantile`` interpolates linearly
    inside the containing bucket (clamped to observed min/max), which
    is plenty for the evaluation's p50/p99-style reporting.
    """

    __slots__ = (
        "name", "help", "bounds", "counts", "count", "sum", "minimum", "maximum"
    )

    def __init__(
        self,
        name: str,
        bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_NS,
        help: str = "",
    ) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r}: bounds must be sorted, non-empty")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile (q in [0, 1]) by in-bucket interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q={q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                lower = max(lower, self.minimum) if index == 0 else lower
                fraction = (target - seen) / bucket_count
                value = lower + fraction * (upper - lower)
                return min(max(value, self.minimum), self.maximum)
            seen += bucket_count
        return self.maximum

    def nonzero_buckets(self) -> Dict[float, int]:
        """Upper-edge -> count for populated buckets (inf = overflow)."""
        out: Dict[float, int] = {}
        for index, bucket_count in enumerate(self.counts):
            if bucket_count:
                edge = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else float("inf")
                )
                out[edge] = bucket_count
        return out

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.1f})"


class MetricRegistry:
    """Named get-or-create store for counters, gauges, and histograms.

    Components that batch their bookkeeping in plain attributes (the
    PELT load tracker keeps fold counts as ints instead of bumping a
    counter per event) register a *collector* — a callable invoked
    before every snapshot/render so exported numbers are current
    without any per-event metric traffic.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Any] = []
        self._bound_handles: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def bound(self, key: str, factory: Any) -> Any:
        """Get-or-create a cached bundle of instrument handles.

        Hot instrument sites (run-queue enqueue, pool acquire, the
        vanilla pause path) resolve their handles once per registry
        through this cache instead of re-looking names up per event;
        because metric names are global, short-lived components — the
        chaos study churns through hundreds of per-host run queues —
        share one binding rather than each paying the registry lookups
        again.  *factory* receives the registry and returns the handle
        bundle; ``clear()`` drops the cache with the instruments.
        """
        handles = self._bound_handles.get(key)
        if handles is None:
            handles = self._bound_handles[key] = factory(self)
        return handles

    # ------------------------------------------------------------------
    def add_collector(self, collector: Any) -> None:
        """Register a zero-arg callable run before snapshot/render."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Flush batched component state into instruments."""
        for collector in self._collectors:
            collector()

    # ------------------------------------------------------------------
    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, "counter")
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, "gauge")
            instrument = self._gauges[name] = Gauge(name, help)
        return instrument

    def histogram(
        self,
        name: str,
        bounds: Optional[Tuple[float, ...]] = None,
        help: str = "",
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, "histogram")
            instrument = self._histograms[name] = Histogram(
                name, bounds or DEFAULT_LATENCY_BUCKETS_NS, help
            )
        return instrument

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(
            list(self._counters) + list(self._gauges) + list(self._histograms)
        )

    def counters(self) -> Dict[str, Counter]:
        return dict(self._counters)

    def gauges(self) -> Dict[str, Gauge]:
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data view of every instrument (JSON-serializable)."""
        self.collect()
        out: Dict[str, Dict[str, Any]] = {}
        for name, counter in self._counters.items():
            out[name] = {"type": "counter", "value": counter.value}
        for name, gauge in self._gauges.items():
            out[name] = {"type": "gauge", "value": gauge.value}
        for name, histogram in self._histograms.items():
            out[name] = {
                "type": "histogram",
                "count": histogram.count,
                "sum": histogram.sum,
                "mean": histogram.mean,
                "min": histogram.minimum if histogram.count else None,
                "max": histogram.maximum if histogram.count else None,
                "p50": histogram.quantile(0.5),
                "p99": histogram.quantile(0.99),
            }
        return out

    def render(self) -> str:
        """Human-readable summary table, sorted by metric name."""
        self.collect()
        lines: List[str] = []
        for name in self.names():
            if name in self._counters:
                lines.append(f"{name:<32s} count   {self._counters[name].value}")
            elif name in self._gauges:
                lines.append(f"{name:<32s} gauge   {self._gauges[name].value:g}")
            else:
                histogram = self._histograms[name]
                lines.append(
                    f"{name:<32s} histo   n={histogram.count} "
                    f"mean={histogram.mean:.1f} p50={histogram.quantile(0.5):.1f} "
                    f"p99={histogram.quantile(0.99):.1f}"
                )
        return "\n".join(lines)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        # Dropping the bound-handle cache keeps a cleared registry from
        # resurrecting stale instruments through old bindings.
        self._bound_handles.clear()


class _NullCounter(Counter):
    """Do-nothing counter; ``__slots__ = ()`` keeps instances dict-free
    so the module singletons below cost one object for the process."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        return None


#: Process-wide no-op instruments.  Instrument sites may cache these
#: (or any real instrument) in a local/attribute and call them
#: unconditionally — the no-op bodies compile the disabled path down to
#: a single C-level method call with no dict lookups or allocation.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry(MetricRegistry):
    """Registry that hands out the shared no-op instruments."""

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> Gauge:
        return NULL_GAUGE

    def histogram(self, name, bounds=None, help="") -> Histogram:
        return NULL_HISTOGRAM


#: Shared do-nothing registry; pass a real MetricRegistry to opt in.
NULL_REGISTRY = NullRegistry()
