"""Trace exporters: Chrome trace-event JSON and JSONL.

The Chrome format loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``: every span becomes a complete ("X") event with
microsecond timestamps, instants become "i" events, and metadata events
name the tracks — one *process* per physical CPU, one *thread* per
sandbox, matching how the instrumentation assigns ``pid``/``tid``.

The JSONL format is the lossless interchange form: one JSON object per
line, nanosecond-exact, with a leading ``meta`` line carrying the track
names.  :func:`read_jsonl` reconstructs a tracer whose Chrome export is
byte-identical to the original's — the round-trip property the tests
pin down.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List

from repro.obs.span import KIND_INSTANT, Span, Tracer


def _sorted_spans(tracer: Tracer) -> List[Span]:
    return sorted(tracer.spans, key=lambda s: (s.start_ns, s.span_id))


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _chrome_args(span: Span) -> Dict[str, Any]:
    args: Dict[str, Any] = {"span_id": span.span_id}
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    args.update(span.attrs)
    return args


def _chrome_event(span: Span) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": span.name,
        "cat": span.category or "repro",
        "ts": span.start_ns / 1000.0,  # Chrome timestamps are in us
        "pid": span.pid,
        "tid": span.tid,
        "args": _chrome_args(span),
    }
    if span.kind == KIND_INSTANT:
        event["ph"] = "i"
        event["s"] = "t"  # thread-scoped instant
    else:
        event["ph"] = "X"
        event["dur"] = span.duration_ns / 1000.0
    return event


def to_chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """The full Chrome trace object (``traceEvents`` + metadata)."""
    events: List[Dict[str, Any]] = []
    for pid, name in sorted(tracer.process_names.items()):
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": name},
            }
        )
    for (pid, tid), name in sorted(tracer.thread_names.items()):
        events.append(
            {
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            }
        )
    events.extend(_chrome_event(span) for span in _sorted_spans(tracer))
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(tracer), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# JSONL (lossless, nanosecond-exact)
# ----------------------------------------------------------------------
def _span_record(span: Span) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "type": "span",
        "name": span.name,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "category": span.category,
        "pid": span.pid,
        "tid": span.tid,
        "kind": span.kind,
        "attrs": span.attrs,
    }
    return record


def iter_jsonl(tracer: Tracer) -> Iterator[str]:
    """The JSONL lines for *tracer*: one meta line, then one per span."""
    meta = {
        "type": "meta",
        "process_names": {str(pid): name
                          for pid, name in sorted(tracer.process_names.items())},
        "thread_names": {f"{pid}:{tid}": name
                         for (pid, tid), name in sorted(tracer.thread_names.items())},
    }
    yield json.dumps(meta, sort_keys=True)
    for span in _sorted_spans(tracer):
        yield json.dumps(_span_record(span), sort_keys=True)


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        for line in iter_jsonl(tracer):
            handle.write(line)
            handle.write("\n")


def read_jsonl(path: str) -> Tracer:
    """Reconstruct a tracer from a JSONL trace file.

    The result's spans, ids, and track names match the original, so
    ``to_chrome_trace(read_jsonl(p)) == to_chrome_trace(original)``.
    """
    tracer = Tracer()
    max_id = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                for pid, name in record.get("process_names", {}).items():
                    tracer.name_process(int(pid), name)
                for key, name in record.get("thread_names", {}).items():
                    pid_text, tid_text = key.split(":", 1)
                    tracer._thread_names[(int(pid_text), int(tid_text))] = name
            elif kind == "span":
                span = Span(
                    name=record["name"],
                    start_ns=record["start_ns"],
                    duration_ns=record["duration_ns"],
                    span_id=record["span_id"],
                    parent_id=record["parent_id"],
                    category=record["category"],
                    pid=record["pid"],
                    tid=record["tid"],
                    kind=record["kind"],
                    attrs=record["attrs"],
                )
                tracer.spans.append(span)
                max_id = max(max_id, span.span_id)
            else:
                raise ValueError(f"unknown JSONL record type {kind!r}")
    tracer._next_id = max_id + 1
    return tracer
