"""End-to-end observability for the reproduction.

The ``repro.obs`` subsystem answers the question the flat
:class:`~repro.sim.tracing.TraceLog` cannot: *where do the nanoseconds
go?*  It provides

* nested timed :class:`Span`/:class:`Tracer` keyed to the sim clock
  (:mod:`repro.obs.span`), instrumenting the full resume hot path;
* a :class:`MetricRegistry` of counters, gauges, and fixed-bucket
  ns-latency histograms (:mod:`repro.obs.metrics`), with the resume
  phase taxonomy in :mod:`repro.obs.phases`;
* Chrome trace-event JSON (Perfetto-loadable) and lossless JSONL
  exporters (:mod:`repro.obs.export`);
* the :class:`Observability` bundle, ``NULL_OBS`` null object, and the
  :func:`activate` context that lets the CLI trace any experiment
  without threading parameters through every driver
  (:mod:`repro.obs.context`);
* the deterministic :class:`SubsystemProfiler` and :func:`profiling`
  context — per-subsystem event attribution with byte-stable
  collapsed-stack/hotspot artifacts (:mod:`repro.obs.profile`).

Everything is opt-in: components default to ``NULL_OBS`` and pay one
``enabled`` attribute check per instrumented operation.
"""

from repro.obs.context import NULL_OBS, Observability, activate, current
from repro.obs.export import (
    iter_jsonl,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_REGISTRY,
)
from repro.obs.phases import (
    RESUME_DISPATCH_NS,
    RESUME_LOAD_UPDATE_NS,
    RESUME_MERGE_NS,
    RESUME_PHASE_METRICS,
    RESUME_TOTAL_NS,
    dispatch_ns,
    observe_resume,
)
from repro.obs.profile import (
    SubsystemProfiler,
    current_profiler,
    profiling,
)
from repro.obs.span import NULL_TRACER, OpenSpan, Span, Timeline, Tracer

__all__ = [
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_NS",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Observability",
    "OpenSpan",
    "RESUME_DISPATCH_NS",
    "RESUME_LOAD_UPDATE_NS",
    "RESUME_MERGE_NS",
    "RESUME_PHASE_METRICS",
    "RESUME_TOTAL_NS",
    "Span",
    "SubsystemProfiler",
    "Timeline",
    "Tracer",
    "activate",
    "current",
    "current_profiler",
    "dispatch_ns",
    "iter_jsonl",
    "observe_resume",
    "profiling",
    "read_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
