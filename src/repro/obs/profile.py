"""Deterministic, sim-clock-aware subsystem profiler.

Conventional samplers (py-spy, cProfile) answer "where does wall time
go?" but their output is different on every run — useless as a CI
artifact and blind to *simulated* time.  This profiler hooks the
engine's dispatch loop instead and attributes every executed event to a
**subsystem** derived from the event's label stem (the part before the
first ``:``, which is stable across runs — id suffixes never
participate).  Two attributions are kept per (phase, subsystem, site):

* **samples** — one per executed event, and **sim-ns** — the simulated
  interval that elapsed up to the event.  Both are fully deterministic:
  same seed ⇒ byte-identical collapsed-stack and hotspot-table
  artifacts, diffable in CI like any golden file.
* **wall-ns** — real time measured around the event callback (plus
  scheduler-pop and invariant-watcher buckets).  Wall numbers are
  machine-dependent and therefore *never* written into the
  deterministic artifacts; they are reported separately so a human can
  see where a run actually burned CPU.

Artifacts (written by ``repro profile``):

* ``<name>.collapsed`` — folded stacks ``name;phase;subsystem;site N``
  (N = samples), directly consumable by flamegraph.pl / speedscope;
* ``<name>.hotspots.json`` — machine-readable table sorted by samples.

The active profiler is a context (mirroring ``repro.obs.activate``):
engines built inside a :func:`profiling` block hook themselves up in
``Engine.__init__`` and route their dispatch through the profiled
drain.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

#: Event-label stem -> subsystem.  Stems not listed here surface as
#: ``other.<stem>`` so unclassified work is visible, never silently
#: folded into a named bucket.
STEM_SUBSYSTEMS: Dict[str, str] = {
    # sim kernel / process layer
    "": "sim.process",
    "sleep": "sim.process",
    "wake": "sim.process",
    "start": "sim.process",
    # hypervisor
    "slice": "hypervisor.dispatch",
    "merge-thread": "hypervisor.merge",
    # FaaS platform
    "complete": "faas.gateway",
    "cluster-finish": "faas.cluster",
    "keepalive-evict": "faas.pool",
    "autoscale": "faas.autoscaler",
    # workload drivers
    "chaos-submit": "workload.submit",
    "usage-sample": "obs.usage",
    # failure injection
    "node-crash": "resilience.failures",
    "node-recover": "resilience.failures",
    # the retry ladder
    "resilience-rewait": "resilience.rewait",
    "resilience-capacity-wake": "resilience.capacity",
    "resilience-retry": "resilience.retry",
    "resilience-crash-retry": "resilience.retry",
    "resilience-hedge": "resilience.hedge",
    "resilience-hang": "resilience.hang",
    "resilience-complete": "resilience.complete",
}

#: Synthetic sites for work that is not an event callback.
SCHEDULER_SITE = ("sim.scheduler", "pop")
WATCHER_SITE = ("check.invariants", "watchers")
CANCELLED_SITE = ("sim.engine", "cancelled")


class SubsystemProfiler:
    """Accumulates per-(phase, subsystem, site) attribution."""

    __slots__ = (
        "name",
        "_phase",
        "_sites",
        "_classify_cache",
        "scheduler_wall_ns",
        "watcher_wall_ns",
        "total_wall_ns",
        "started_wall_ns",
    )

    def __init__(self, name: str = "profile") -> None:
        self.name = name
        self._phase = "main"
        #: (phase, subsystem, site) -> [samples, sim_ns, wall_ns]
        self._sites: Dict[Tuple[str, str, str], List[int]] = {}
        #: label -> (subsystem, site); labels repeat heavily (cached
        #: rewait labels, per-core slice labels), so this keeps the
        #: per-event classification to one dict hit.
        self._classify_cache: Dict[str, Tuple[str, str]] = {}
        self.scheduler_wall_ns = 0
        self.watcher_wall_ns = 0
        self.total_wall_ns = 0
        self.started_wall_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    def phase(self, name: str) -> None:
        """Start a new attribution phase (e.g. one chaos mode)."""
        self._phase = name
        self._classify_cache.clear()

    def _classify(self, label: str) -> Tuple[str, str]:
        cached = self._classify_cache.get(label)
        if cached is None:
            stem = label.partition(":")[0]
            subsystem = STEM_SUBSYSTEMS.get(stem)
            if subsystem is None:
                subsystem = f"other.{stem}"
            site = stem if stem else "unlabeled"
            cached = self._classify_cache[label] = (subsystem, site)
        return cached

    def record(self, label: str, sim_delta_ns: int, wall_ns: int) -> None:
        """Attribute one executed event."""
        subsystem, site = self._classify(label)
        key = (self._phase, subsystem, site)
        cell = self._sites.get(key)
        if cell is None:
            cell = self._sites[key] = [0, 0, 0]
        cell[0] += 1
        cell[1] += sim_delta_ns
        cell[2] += wall_ns

    def record_cancelled(self) -> None:
        """A cancelled event was skipped (deterministic; no wall cost)."""
        key = (self._phase,) + CANCELLED_SITE
        cell = self._sites.get(key)
        if cell is None:
            cell = self._sites[key] = [0, 0, 0]
        cell[0] += 1

    def finish(self) -> None:
        """Freeze total wall time (call once, after the last phase)."""
        self.total_wall_ns = time.perf_counter_ns() - self.started_wall_ns

    # ------------------------------------------------------------------
    # Deterministic artifacts
    # ------------------------------------------------------------------
    def _ordered(self) -> List[Tuple[Tuple[str, str, str], List[int]]]:
        """Rows ordered by (samples desc, phase, subsystem, site) — a
        total order independent of dict insertion history."""
        return sorted(
            self._sites.items(), key=lambda kv: (-kv[1][0], kv[0])
        )

    def collapsed_stacks(self) -> str:
        """Folded-stack text (flamegraph.pl / speedscope compatible)."""
        lines = [
            f"{self.name};{phase};{subsystem};{site} {cell[0]}"
            for (phase, subsystem, site), cell in self._ordered()
        ]
        return "\n".join(lines) + "\n"

    def hotspot_table(self) -> Dict[str, object]:
        """Machine-readable hotspot table (deterministic fields only)."""
        total_samples = sum(cell[0] for cell in self._sites.values())
        total_sim = sum(cell[1] for cell in self._sites.values())
        rows = [
            {
                "phase": phase,
                "subsystem": subsystem,
                "site": site,
                "samples": cell[0],
                "sim_ns": cell[1],
                "sample_share": round(cell[0] / total_samples, 6)
                if total_samples
                else 0.0,
            }
            for (phase, subsystem, site), cell in self._ordered()
        ]
        return {
            "profile": self.name,
            "total_samples": total_samples,
            "total_sim_ns": total_sim,
            "hotspots": rows,
        }

    def hotspot_json(self) -> str:
        return (
            json.dumps(self.hotspot_table(), indent=2, sort_keys=True) + "\n"
        )

    def hotspot_text(self, limit: Optional[int] = None) -> str:
        """Fixed-width hotspot table (deterministic; safe for stdout)."""
        table = self.hotspot_table()
        rows = table["hotspots"]
        if limit is not None:
            rows = rows[:limit]
        lines = [
            f"profile {self.name!r}: {table['total_samples']} events, "
            f"{table['total_sim_ns'] / 1e9:.3f} sim-s",
            f"  {'phase':<14s} {'subsystem':<22s} {'site':<24s} "
            f"{'samples':>9s} {'share':>7s}",
        ]
        for row in rows:
            lines.append(
                f"  {row['phase']:<14s} {row['subsystem']:<22s} "
                f"{row['site']:<24s} {row['samples']:>9d} "
                f"{100.0 * row['sample_share']:6.2f}%"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wall-time report (machine-dependent; never written to artifacts)
    # ------------------------------------------------------------------
    def wall_report(self) -> str:
        """Human-readable wall-time attribution with coverage."""
        per_subsystem: Dict[str, int] = {}
        for (_phase, subsystem, _site), cell in self._sites.items():
            per_subsystem[subsystem] = per_subsystem.get(subsystem, 0) + cell[2]
        per_subsystem[SCHEDULER_SITE[0]] = (
            per_subsystem.get(SCHEDULER_SITE[0], 0) + self.scheduler_wall_ns
        )
        if self.watcher_wall_ns:
            per_subsystem[WATCHER_SITE[0]] = (
                per_subsystem.get(WATCHER_SITE[0], 0) + self.watcher_wall_ns
            )
        attributed = sum(per_subsystem.values())
        named = sum(
            wall
            for subsystem, wall in per_subsystem.items()
            if not subsystem.startswith("other.")
        )
        total = self.total_wall_ns or attributed
        lines = [f"wall-time attribution for {self.name!r}:"]
        for subsystem, wall in sorted(
            per_subsystem.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            share = 100.0 * wall / attributed if attributed else 0.0
            lines.append(f"  {subsystem:<24s} {wall / 1e6:10.2f} ms {share:6.2f}%")
        coverage = 100.0 * named / attributed if attributed else 100.0
        loop_share = 100.0 * attributed / total if total else 0.0
        lines.append(
            f"  named-subsystem coverage {coverage:.2f}% of attributed wall "
            f"({attributed / 1e6:.2f} ms; {loop_share:.1f}% of "
            f"{total / 1e6:.2f} ms total)"
        )
        return "\n".join(lines)

    def named_coverage(self) -> float:
        """Fraction of attributed wall time in named subsystems."""
        attributed = 0
        named = 0
        for (_phase, subsystem, _site), cell in self._sites.items():
            attributed += cell[2]
            if not subsystem.startswith("other."):
                named += cell[2]
        attributed += self.scheduler_wall_ns + self.watcher_wall_ns
        named += self.scheduler_wall_ns + self.watcher_wall_ns
        return named / attributed if attributed else 1.0

    def __repr__(self) -> str:
        return (
            f"SubsystemProfiler({self.name!r}, phase={self._phase!r}, "
            f"sites={len(self._sites)})"
        )


# ----------------------------------------------------------------------
# Active-profiler context (mirrors repro.obs.context)
# ----------------------------------------------------------------------
_active: List[SubsystemProfiler] = []


def current_profiler() -> Optional[SubsystemProfiler]:
    """The innermost active profiler, or None (the common case)."""
    return _active[-1] if _active else None


@contextmanager
def profiling(profiler: SubsystemProfiler) -> Iterator[SubsystemProfiler]:
    """Engines built inside the block route dispatch through *profiler*."""
    _active.append(profiler)
    try:
        yield profiler
    finally:
        _active.pop()
