"""The observability bundle and the active-context stack.

:class:`Observability` pairs one :class:`~repro.obs.span.Tracer` with
one :class:`~repro.obs.metrics.MetricRegistry`; every instrumented
component holds a reference to exactly one bundle.  ``NULL_OBS`` is the
default everywhere — a single ``obs.enabled`` check is all an untraced
hot path pays.

Zero-cost rebinding: ``enabled`` is a plain slot recomputed by the
``tracer``/``metrics`` property setters, so attaching a real exporter
mid-run flips every instrumented component's fast-path guard at once
(the old design computed it once in ``__init__`` and went stale).
Components that cache bound instrument handles for speed register an
:meth:`on_rebind` hook to drop their caches when the bundle is rebound;
``NULL_OBS`` itself refuses hooks — it is shared process-wide and must
never accumulate references.

The module also keeps a small *active context* stack so code that
builds platforms internally (experiment drivers, the CLI) can be
observed without threading a parameter through every call site::

    obs = Observability()
    with activate(obs):
        run_figure2(...)          # platforms built inside pick up obs
    write_chrome_trace(obs.tracer, "figure2.trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.span import NULL_TRACER, Tracer


class Observability:
    """One tracer + one metric registry, wired together.

    ``enabled`` is an ordinary slot (one attribute load on the hot
    path); the property setters below keep it consistent whenever the
    tracer or registry is swapped.
    """

    __slots__ = ("_tracer", "_metrics", "enabled", "_rebind_hooks")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self._rebind_hooks: List[Callable[["Observability"], None]] = []
        self._tracer = Tracer() if tracer is None else tracer
        self._metrics = MetricRegistry() if metrics is None else metrics
        #: Fast-path guard: False only while both halves are null.
        self.enabled = bool(self._tracer.enabled or self._metrics.enabled)

    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Tracer:
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._rebound()

    @property
    def metrics(self) -> MetricRegistry:
        return self._metrics

    @metrics.setter
    def metrics(self, metrics: MetricRegistry) -> None:
        self._metrics = metrics
        self._rebound()

    def _rebound(self) -> None:
        self.enabled = bool(self._tracer.enabled or self._metrics.enabled)
        for hook in self._rebind_hooks:
            hook(self)

    # ------------------------------------------------------------------
    def on_rebind(self, hook: Callable[["Observability"], None]) -> None:
        """Run *hook(self)* now and after every tracer/metrics swap.

        Instrumented components use this to (re)bind cached instrument
        handles: the immediate replay wires them against the current
        registry, and later swaps re-fire the hook so no stale handle
        survives a rebind.  Refused on ``NULL_OBS``: the shared null
        bundle never rebinds, and holding hooks would leak every
        component ever built without observability.
        """
        if self is NULL_OBS:
            raise ValueError(
                "cannot register rebind hooks on the shared NULL_OBS bundle"
            )
        self._rebind_hooks.append(hook)
        hook(self)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Observability({state}, spans={len(self._tracer.spans)})"


#: Shared do-nothing bundle; the default for every component.
NULL_OBS = Observability(NULL_TRACER, NULL_REGISTRY)

_active: List[Observability] = [NULL_OBS]


def current() -> Observability:
    """The innermost activated bundle (``NULL_OBS`` when none is)."""
    return _active[-1]


@contextmanager
def activate(obs: Observability) -> Iterator[Observability]:
    """Make *obs* the default bundle for platforms built in the block."""
    _active.append(obs)
    try:
        yield obs
    finally:
        _active.pop()
