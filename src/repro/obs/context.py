"""The observability bundle and the active-context stack.

:class:`Observability` pairs one :class:`~repro.obs.span.Tracer` with
one :class:`~repro.obs.metrics.MetricRegistry`; every instrumented
component holds a reference to exactly one bundle.  ``NULL_OBS`` is the
default everywhere — a single ``obs.enabled`` check is all an untraced
hot path pays.

The module also keeps a small *active context* stack so code that
builds platforms internally (experiment drivers, the CLI) can be
observed without threading a parameter through every call site::

    obs = Observability()
    with activate(obs):
        run_figure2(...)          # platforms built inside pick up obs
    write_chrome_trace(obs.tracer, "figure2.trace.json")
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.metrics import MetricRegistry, NULL_REGISTRY
from repro.obs.span import NULL_TRACER, Tracer


class Observability:
    """One tracer + one metric registry, wired together."""

    __slots__ = ("tracer", "metrics", "enabled")

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricRegistry() if metrics is None else metrics
        #: Cached fast-path guard: False only for the NULL bundle.
        self.enabled = bool(self.tracer.enabled or self.metrics.enabled)

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"Observability({state}, spans={len(self.tracer.spans)})"


#: Shared do-nothing bundle; the default for every component.
NULL_OBS = Observability(NULL_TRACER, NULL_REGISTRY)

_active: List[Observability] = [NULL_OBS]


def current() -> Observability:
    """The innermost activated bundle (``NULL_OBS`` when none is)."""
    return _active[-1]


@contextmanager
def activate(obs: Observability) -> Iterator[Observability]:
    """Make *obs* the default bundle for platforms built in the block."""
    _active.append(obs)
    try:
        yield obs
    finally:
        _active.pop()
