"""Nested timed spans keyed to the simulated clock.

A :class:`Span` is one named interval ``[start_ns, start_ns +
duration_ns)`` with parent/child links, free-form attributes, and a
track assignment (``pid``/``tid`` — by convention one "process" per
physical CPU and one "thread" per sandbox, which is how the exporters
lay traces out in Perfetto).

A :class:`Tracer` collects spans three ways:

* :meth:`Tracer.record_span` — a closed interval with explicit start
  and duration (the common case in a discrete-event simulator, where
  an operation's cost is *charged* while the clock stands still);
* :meth:`Tracer.open_span` / :class:`OpenSpan` — a span whose end is
  not yet known; anything recorded before it closes becomes its child;
* :meth:`Tracer.timeline` — a builder for one-instant multi-phase
  operations (the six resume steps): each ``phase`` call appends a
  child back-to-back after the previous one, so the children tile the
  parent exactly.

``NULL_TRACER`` is the shared do-nothing instance; hot paths guard all
attribute building behind ``tracer.enabled`` so an untraced run pays a
single attribute check.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Span kinds: a timed interval or a zero-duration marker.
KIND_SPAN = "span"
KIND_INSTANT = "instant"


@dataclass(slots=True)
class Span:
    """One named, attributed interval on a (pid, tid) track."""

    name: str
    start_ns: int
    duration_ns: int
    span_id: int
    parent_id: Optional[int] = None
    category: str = ""
    pid: int = 0
    tid: int = 0
    kind: str = KIND_SPAN
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (
            f"[{self.start_ns:>12d} +{self.duration_ns:>9d}] "
            f"{self.name} {detail}".rstrip()
        )


class OpenSpan:
    """Handle for a span whose end time is not yet known.

    While open, it sits on the tracer's span stack: spans recorded in
    the meantime become its children.  ``close`` is tolerant — it pops
    any deeper spans left open (closing them at the same end time), so
    an exception inside an instrumented region cannot corrupt the
    stack.
    """

    __slots__ = ("_tracer", "span", "_closed")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span
        self._closed = False

    @property
    def attrs(self) -> Dict[str, Any]:
        return self.span.attrs

    def set_track(self, pid: int, tid: int) -> None:
        self.span.pid = pid
        self.span.tid = tid

    def close(self, end_ns: int, **attrs: Any) -> Span:
        """Finish the span at *end_ns*; merges *attrs* in."""
        if self._closed:
            return self.span
        self.span.attrs.update(attrs)
        self._tracer._close_open(self, end_ns)
        self._closed = True
        return self.span


class Timeline:
    """Builder for one-instant multi-phase operations.

    The simulated clock does not advance while a resume executes — its
    cost is charged from the cost model — so the phases are laid out
    synthetically: each :meth:`phase` starts where the previous one
    ended, and :meth:`finish` closes the root at the running cursor.
    """

    __slots__ = ("_tracer", "_root", "cursor")

    def __init__(self, tracer: "Tracer", root: OpenSpan) -> None:
        self._tracer = tracer
        self._root = root
        self.cursor = root.span.start_ns

    @property
    def root(self) -> Span:
        return self._root.span

    def phase(self, name: str, duration_ns: int, **attrs: Any) -> Span:
        """Append one child phase back-to-back after the previous one."""
        span = self._tracer.record_span(
            name,
            self.cursor,
            duration_ns,
            category=self._root.span.category,
            pid=self._root.span.pid,
            tid=self._root.span.tid,
            **attrs,
        )
        self.cursor += duration_ns
        return span

    def finish(self, **attrs: Any) -> Span:
        """Close the root so it exactly covers the recorded phases."""
        return self._root.close(self.cursor, **attrs)


class Tracer:
    """Collects spans; the exporters in :mod:`repro.obs.export` read it."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], int]] = None) -> None:
        #: Optional callable returning the current simulated time (ns),
        #: used only by the :meth:`span` context manager.
        self._clock = clock
        self.spans: List[Span] = []
        self._stack: List[OpenSpan] = []
        self._next_id = 1
        self._process_names: Dict[int, str] = {}
        self._thread_names: Dict[Tuple[int, int], str] = {}
        self._tids: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Track bookkeeping
    # ------------------------------------------------------------------
    def name_process(self, pid: int, name: str) -> None:
        self._process_names[pid] = name

    def tid_for(self, key: str, pid: int = 0, name: Optional[str] = None) -> int:
        """Intern a string track key (e.g. a sandbox id) to a stable tid.

        Registers the thread's display name under ``(pid, tid)`` so the
        exporter can label it; the same key always maps to the same tid
        regardless of pid.
        """
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
        self._thread_names.setdefault((pid, tid), name or key)
        return tid

    @property
    def process_names(self) -> Dict[int, str]:
        return dict(self._process_names)

    @property
    def thread_names(self) -> Dict[Tuple[int, int], str]:
        return dict(self._thread_names)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _allocate(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        parent_id: Optional[int],
        category: str,
        pid: int,
        tid: int,
        kind: str,
        attrs: Dict[str, Any],
    ) -> Span:
        span = Span(
            name=name,
            start_ns=start_ns,
            duration_ns=duration_ns,
            span_id=self._next_id,
            parent_id=parent_id,
            category=category,
            pid=pid,
            tid=tid,
            kind=kind,
            attrs=attrs,
        )
        self._next_id += 1
        return span

    def _current_parent_id(self) -> Optional[int]:
        return self._stack[-1].span.span_id if self._stack else None

    def record_span(
        self,
        name: str,
        start_ns: int,
        duration_ns: int,
        parent: Optional[Span] = None,
        category: str = "",
        pid: int = 0,
        tid: int = 0,
        **attrs: Any,
    ) -> Span:
        """Record a closed span.  Parents to the innermost open span
        unless *parent* is given explicitly."""
        if duration_ns < 0:
            raise ValueError(f"span {name!r}: negative duration {duration_ns}")
        parent_id = parent.span_id if parent is not None else self._current_parent_id()
        span = self._allocate(
            name, start_ns, duration_ns, parent_id, category, pid, tid,
            KIND_SPAN, attrs,
        )
        self.spans.append(span)
        return span

    def record_instant(
        self,
        name: str,
        time_ns: int,
        category: str = "",
        pid: int = 0,
        tid: int = 0,
        **attrs: Any,
    ) -> Span:
        """Record a zero-duration marker event."""
        span = self._allocate(
            name, time_ns, 0, self._current_parent_id(), category, pid, tid,
            KIND_INSTANT, attrs,
        )
        self.spans.append(span)
        return span

    def open_span(
        self,
        name: str,
        start_ns: int,
        category: str = "",
        pid: int = 0,
        tid: int = 0,
        **attrs: Any,
    ) -> OpenSpan:
        """Start a span whose end is not yet known; pushes it on the
        stack so later records nest under it until it is closed."""
        span = self._allocate(
            name, start_ns, 0, self._current_parent_id(), category, pid, tid,
            KIND_SPAN, attrs,
        )
        handle = OpenSpan(self, span)
        self._stack.append(handle)
        return handle

    def _close_open(self, handle: OpenSpan, end_ns: int) -> None:
        # Tolerant pop: close anything deeper that was left open (an
        # exception path bailed out) at the same end time.
        while self._stack:
            top = self._stack.pop()
            top.span.duration_ns = max(0, end_ns - top.span.start_ns)
            top._closed = True
            self.spans.append(top.span)
            if top is handle:
                return
        # Handle was not on the stack (already force-closed): still
        # record it rather than lose the data.
        handle.span.duration_ns = max(0, end_ns - handle.span.start_ns)
        self.spans.append(handle.span)

    def timeline(
        self,
        name: str,
        start_ns: int,
        category: str = "",
        pid: int = 0,
        tid: int = 0,
        **attrs: Any,
    ) -> Timeline:
        """Open a root span and return the phase builder for it."""
        return Timeline(
            self, self.open_span(name, start_ns, category, pid, tid, **attrs)
        )

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        pid: int = 0,
        tid: int = 0,
        **attrs: Any,
    ) -> Iterator[OpenSpan]:
        """Clock-timed span context manager (requires a tracer clock)."""
        if self._clock is None:
            raise RuntimeError("Tracer has no clock; use record_span/timeline")
        handle = self.open_span(name, self._clock(), category, pid, tid, **attrs)
        try:
            yield handle
        finally:
            handle.close(self._clock())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The innermost still-open span, or None outside any span.

        This is the span context repro.check attaches to reported
        violations: a violation found inside a checked cycle names the
        cycle span it occurred under.
        """
        return self._stack[-1].span if self._stack else None

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: (s.start_ns, s.span_id),
        )

    def roots(self) -> List[Span]:
        return sorted(
            (s for s in self.spans if s.parent_id is None),
            key=lambda s: (s.start_ns, s.span_id),
        )

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()


class _NullOpenSpan(OpenSpan):
    """Open-span handle that swallows everything."""

    def __init__(self) -> None:  # no tracer, no span storage
        self._tracer = None
        self.span = Span(name="", start_ns=0, duration_ns=0, span_id=0)
        self._closed = True

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}

    def set_track(self, pid: int, tid: int) -> None:
        return None

    def close(self, end_ns: int, **attrs: Any) -> Span:
        return self.span


class _NullTimeline(Timeline):
    """Timeline that swallows every phase."""

    def __init__(self) -> None:
        self._tracer = None
        self._root = _NULL_OPEN_SPAN
        self.cursor = 0

    def phase(self, name: str, duration_ns: int, **attrs: Any) -> Span:
        return self._root.span

    def finish(self, **attrs: Any) -> Span:
        return self._root.span


class NullTracer(Tracer):
    """Do-nothing tracer: the default wired into every component."""

    enabled = False

    def record_span(self, name, start_ns, duration_ns, parent=None,
                    category="", pid=0, tid=0, **attrs):
        return _NULL_OPEN_SPAN.span

    def record_instant(self, name, time_ns, category="", pid=0, tid=0, **attrs):
        return _NULL_OPEN_SPAN.span

    def open_span(self, name, start_ns, category="", pid=0, tid=0, **attrs):
        return _NULL_OPEN_SPAN

    def timeline(self, name, start_ns, category="", pid=0, tid=0, **attrs):
        return _NULL_TIMELINE

    def tid_for(self, key, pid=0, name=None):
        return 0


_NULL_OPEN_SPAN = _NullOpenSpan()
_NULL_TIMELINE = _NullTimeline()

#: Shared do-nothing tracer; pass a real Tracer to opt in.
NULL_TRACER = NullTracer()
