"""Reserved uLL run queues and their management (paper §4.1.3).

Applying P2SM against *every* run queue would mean maintaining
``arrayB``/``posA`` for all of them, "which would be computationally
expensive".  HORSE therefore reserves one (or more) run queues for uLL
sandboxes — ``ull_runqueue`` — with a 1 us maximum timeslice, and ties
each paused uLL sandbox to exactly one of them at *pause* time.  With
several reserved queues, the assignment balances on the number of
paused sandboxes already tied to each queue.

:class:`UllRunqueueManager` owns the assignments, and re-runs the P2SM
precomputation of every tied sandbox whenever its queue changes ("the
updates are performed each time ull_runqueue is updated"), accounting
the refresh work so the §5.2 overhead study can report it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.p2sm import P2SMState
from repro.hypervisor.cpu import Host
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.sandbox import Sandbox


class UllAssignmentError(Exception):
    """A sandbox/queue assignment operation was invalid."""


class UllRunqueueManager:
    """Assigns paused uLL sandboxes to reserved queues and keeps their
    P2SM precomputation fresh."""

    def __init__(self, host: Host) -> None:
        queues = host.ull_runqueues()
        if not queues:
            raise UllAssignmentError(
                "host reserves no uLL run queues; build it with "
                "reserved_ull_cores >= 1"
            )
        self.host = host
        self._queues: Dict[int, RunQueue] = {q.runqueue_id: q for q in queues}
        #: queue id -> sandboxes currently tied to it (paused, precomputed)
        self._assignments: Dict[int, List[Sandbox]] = {
            qid: [] for qid in self._queues
        }
        #: cumulative precompute-refresh work, for the overhead study
        self.refresh_operations = 0
        self.refresh_entries_touched = 0

    # ------------------------------------------------------------------
    # Queue selection & assignment
    # ------------------------------------------------------------------
    @property
    def queue_ids(self) -> List[int]:
        return sorted(self._queues)

    def queue(self, runqueue_id: int) -> RunQueue:
        try:
            return self._queues[runqueue_id]
        except KeyError:
            raise UllAssignmentError(
                f"run queue {runqueue_id} is not a reserved uLL queue"
            ) from None

    def is_ull_queue(self, runqueue_id: Optional[int]) -> bool:
        """True when *runqueue_id* names one of the reserved queues."""
        return runqueue_id in self._queues

    def select_queue(self) -> RunQueue:
        """Least-assigned reserved queue (the paper's balancing rule)."""
        best_id = min(
            self._assignments,
            key=lambda qid: (len(self._assignments[qid]), qid),
        )
        return self._queues[best_id]

    def assign(self, sandbox: Sandbox) -> RunQueue:
        """Tie a pausing uLL sandbox to a reserved queue."""
        if sandbox.assigned_ull_runqueue is not None:
            raise UllAssignmentError(
                f"{sandbox.sandbox_id} already assigned to queue "
                f"{sandbox.assigned_ull_runqueue}"
            )
        queue = self.select_queue()
        self._assignments[queue.runqueue_id].append(sandbox)
        sandbox.assigned_ull_runqueue = queue.runqueue_id
        return queue

    def unassign(self, sandbox: Sandbox) -> None:
        """Detach a sandbox (on resume or destruction)."""
        queue_id = sandbox.assigned_ull_runqueue
        if queue_id is None:
            return
        members = self._assignments.get(queue_id, [])
        try:
            members.remove(sandbox)
        except ValueError:
            raise UllAssignmentError(
                f"{sandbox.sandbox_id} not found on queue {queue_id}"
            ) from None
        sandbox.assigned_ull_runqueue = None

    def assigned_to(self, runqueue_id: int) -> List[Sandbox]:
        return list(self._assignments.get(runqueue_id, []))

    def assignment_counts(self) -> Dict[int, int]:
        return {qid: len(boxes) for qid, boxes in self._assignments.items()}

    # ------------------------------------------------------------------
    # Precomputation freshness
    # ------------------------------------------------------------------
    def on_queue_updated(self, runqueue_id: int) -> int:
        """Refresh the P2SM state of every sandbox tied to this queue.

        Called after any structural change to a reserved queue (a task
        enqueued or finished).  Returns the number of structure entries
        rebuilt, which the overhead experiment converts to CPU time.
        """
        entries = 0
        for sandbox in self._assignments.get(runqueue_id, []):
            state: Optional[P2SMState] = sandbox.p2sm_state
            if state is None:
                continue
            report = state.refresh()
            entries += report.array_entries + report.chain_nodes
            self.refresh_operations += 1
        self.refresh_entries_touched += entries
        return entries

    def check_freshness(self) -> List[str]:
        """Staleness across every tied sandbox's P2SM state (repro.check).

        Verifies each assigned sandbox's arrayB/posA against its queue's
        *current* contents — the invariant "the updates are performed
        each time ull_runqueue is updated" promises.  Also cross-checks
        the assignment table against the sandbox attributes.
        """
        problems: List[str] = []
        for queue_id, members in self._assignments.items():
            for sandbox in members:
                if sandbox.assigned_ull_runqueue != queue_id:
                    problems.append(
                        f"{sandbox.sandbox_id}: assignment table says queue "
                        f"{queue_id}, sandbox says "
                        f"{sandbox.assigned_ull_runqueue}"
                    )
                state: Optional[P2SMState] = sandbox.p2sm_state
                if state is None:
                    continue
                problems.extend(
                    f"{sandbox.sandbox_id} on queue {queue_id}: {error}"
                    for error in state.verify_against_target()
                )
        return problems

    # ------------------------------------------------------------------
    def total_precompute_bytes(self) -> int:
        """Live modeled footprint of all tied sandboxes' P2SM state."""
        total = 0
        for members in self._assignments.values():
            for sandbox in members:
                if sandbox.p2sm_state is not None:
                    total += sandbox.p2sm_state.memory_bytes
        return total

    def __repr__(self) -> str:
        counts = ", ".join(
            f"q{qid}:{len(boxes)}" for qid, boxes in sorted(self._assignments.items())
        )
        return f"UllRunqueueManager({counts})"
