"""P2SM: parallel precomputed sorted merge (paper §4.1).

P2SM merges a sorted linked list *A* (the paused sandbox's pre-sorted
vCPUs, ``merge_vcpus``) into another sorted linked list *B* (the
reserved ``ull_runqueue``) in O(1), by shifting all the position work
into a *precomputation phase* that runs while the sandbox is paused:

* ``arrayB`` — an array whose entry *i* is the address of (a reference
  to) the node of *B* at position *i*; index 0 is B's sentinel head, so
  "insert before the first element" is position 0.
* ``posA`` — a hashmap from a position in *B* to the sorted sub-chain
  of *A* elements that belong right after that position.

The *merge phase* (Algorithm 1 in the paper) then spawns one merge
thread per ``posA`` key; each thread performs exactly two pointer
writes to splice its chain after its anchor node.  Because every thread
owns a distinct anchor and the chains are disjoint, no mutual exclusion
on *B* is needed.

This module implements both phases on the real
:class:`~repro.core.linked_list.SortedLinkedList` structure and reports
operation counts (threads spawned, pointer writes, scan steps spent in
precomputation) that the hypervisor cost model converts into simulated
nanoseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generic, List, Optional, TypeVar

from repro.core.linked_list import ListNode, SortedLinkedList

T = TypeVar("T")

# Modeled memory footprint of the precomputed structures, used by the
# overhead study (paper §5.2 reports ~528 KB for 10 paused sandboxes).
ARRAYB_BYTES_PER_ENTRY = 8      # one pointer per B position
POSA_BYTES_PER_BUCKET = 48      # hashmap bucket: key + head/tail/len
CHAIN_BYTES_PER_NODE = 16       # node pointer + key cache in the chain


@dataclass
class SubChain(Generic[T]):
    """A sorted chain of A-nodes anchored at one position of B."""

    head: ListNode[T]
    tail: ListNode[T]
    length: int

    def values(self) -> List[T]:
        out: List[T] = []
        node: Optional[ListNode[T]] = self.head
        remaining = self.length
        while node is not None and remaining > 0:
            out.append(node.value)
            node = node.next
            remaining -= 1
        return out


@dataclass
class MergeReport:
    """Operation counts from one P2SM merge (for the cost model)."""

    threads: int = 0
    pointer_writes: int = 0
    merged_elements: int = 0


@dataclass
class PrecomputeReport:
    """Operation counts from (re)building the precomputed structures."""

    array_entries: int = 0
    posa_keys: int = 0
    scan_steps: int = 0
    chain_nodes: int = 0

    @property
    def memory_bytes(self) -> int:
        """Modeled resident size of arrayB + posA for this pairing."""
        return (
            self.array_entries * ARRAYB_BYTES_PER_ENTRY
            + self.posa_keys * POSA_BYTES_PER_BUCKET
            + self.chain_nodes * CHAIN_BYTES_PER_NODE
        )


class P2SMState(Generic[T]):
    """Precomputed state tying one sorted list *A* to a target *B*.

    The hypervisor keeps one instance per (paused uLL sandbox,
    ull_runqueue) pair and refreshes it whenever either side changes
    (the paper: "the updates are performed each time ull_runqueue is
    updated").  ``refresh`` is a full rebuild — O(|A| + |B|) — which is
    faithful to the paper's worst-case analysis; incremental updates for
    single-element changes are provided as an optimization and produce
    identical state (property-tested).
    """

    def __init__(self, values_a: List[T], target: SortedLinkedList[T]) -> None:
        self._target = target
        self._key = target.key
        self.values_a: List[T] = sorted(values_a, key=self._key)
        self.array_b: List[ListNode[T]] = []
        self.pos_a: Dict[int, SubChain[T]] = {}
        self.last_report = PrecomputeReport()
        self.refresh()

    # ------------------------------------------------------------------
    # Pre-computation phase
    # ------------------------------------------------------------------
    def refresh(self) -> PrecomputeReport:
        """Rebuild arrayB and posA against the target's current state."""
        report = PrecomputeReport()
        # arrayB: position -> node, with index 0 the sentinel.
        self.array_b = [self._target.head]
        for node in self._target.nodes():
            self.array_b.append(node)
        report.array_entries = len(self.array_b)

        # posA: bucket the (sorted) A values by their insertion position
        # relative to B.  One forward scan over both sorted sequences.
        self.pos_a = {}
        b_keys = [self._key(node.value) for node in self._target.nodes()]
        position = 0
        for value in self.values_a:
            value_key = self._key(value)
            while position < len(b_keys) and b_keys[position] <= value_key:
                position += 1
                report.scan_steps += 1
            self._append_to_chain(position, value)
            report.chain_nodes += 1
        report.posa_keys = len(self.pos_a)
        self.last_report = report
        return report

    def _append_to_chain(self, position: int, value: T) -> None:
        node = ListNode(value)
        chain = self.pos_a.get(position)
        if chain is None:
            self.pos_a[position] = SubChain(head=node, tail=node, length=1)
        else:
            chain.tail.next = node
            chain.tail = node
            chain.length += 1

    # ------------------------------------------------------------------
    # Incremental maintenance (paper §4.1.1 complexity analysis)
    # ------------------------------------------------------------------
    def add_to_a(self, value: T) -> None:
        """Add one element to A: O(n) position scan + O(1) chain insert."""
        value_key = self._key(value)
        # Keep values_a sorted (binary insertion over the cached list).
        lo, hi = 0, len(self.values_a)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key(self.values_a[mid]) <= value_key:
                lo = mid + 1
            else:
                hi = mid
        self.values_a.insert(lo, value)
        # Chains must stay sorted within a bucket, so a full bucket
        # rebuild of the affected position keeps the invariant simple
        # and matches the paper's O(n) insert bound.
        self._rebuild_buckets()

    def remove_from_a(self, value: T) -> bool:
        """Remove one element from A: O(m) over A's elements."""
        for index, existing in enumerate(self.values_a):
            if existing is value or existing == value:
                del self.values_a[index]
                self._rebuild_buckets()
                return True
        return False

    def _rebuild_buckets(self) -> None:
        """Recompute posA after an A-side update (arrayB is re-derived
        from the unchanged target, so it comes out identical)."""
        self.refresh()

    # ------------------------------------------------------------------
    # Freshness verification (repro.check)
    # ------------------------------------------------------------------
    def verify_against_target(self) -> List[str]:
        """Staleness problems in arrayB/posA, as messages (empty = fresh).

        Recomputes what the precomputation *should* hold against the
        target's current state and diffs: arrayB must alias the target's
        nodes position-for-position (index 0 the sentinel), and every
        posA bucket must sit at the insertion position a fresh scan
        would assign its chain.  A stale structure here is exactly the
        corruption a delayed refresh (or a fault injector) produces —
        merging through it splices chains after unlinked or wrong nodes.
        """
        errors: List[str] = []
        expected_nodes = [self._target.head] + list(self._target.nodes())
        if len(self.array_b) != len(expected_nodes):
            errors.append(
                f"arrayB has {len(self.array_b)} entries, target has "
                f"{len(expected_nodes)} positions"
            )
        else:
            for position, (cached, live) in enumerate(
                zip(self.array_b, expected_nodes)
            ):
                if cached is not live:
                    errors.append(
                        f"arrayB[{position}] references a node no longer at "
                        f"that position of the target"
                    )
                    break
        # Recompute the bucket each A value belongs to and diff posA.
        b_keys = [self._key(node.value) for node in self._target.nodes()]
        expected_buckets: Dict[int, List[T]] = {}
        position = 0
        for value in self.values_a:
            value_key = self._key(value)
            while position < len(b_keys) and b_keys[position] <= value_key:
                position += 1
            expected_buckets.setdefault(position, []).append(value)
        if sorted(self.pos_a) != sorted(expected_buckets):
            errors.append(
                f"posA keys {sorted(self.pos_a)} != fresh scan's "
                f"{sorted(expected_buckets)}"
            )
        else:
            for key, chain in self.pos_a.items():
                cached_values = chain.values()
                if len(cached_values) != chain.length:
                    errors.append(
                        f"posA[{key}] chain length {chain.length} but "
                        f"{len(cached_values)} reachable nodes"
                    )
                elif cached_values != expected_buckets[key]:
                    errors.append(
                        f"posA[{key}] chain does not match a fresh scan"
                    )
        return errors

    # ------------------------------------------------------------------
    # Merge phase (Algorithm 1)
    # ------------------------------------------------------------------
    def merge(self) -> MergeReport:
        """Splice every posA chain into the target; O(1) per thread.

        Mutates the target list.  After the merge the precomputed state
        is consumed (A's elements now live in B); callers must call
        :meth:`refresh` with a new A before merging again.
        """
        report = MergeReport(threads=len(self.pos_a))
        for position, chain in self.pos_a.items():
            anchor = self.array_b[position]
            self._target.splice_after(anchor, chain.head, chain.tail, chain.length)
            report.pointer_writes += 2
            report.merged_elements += chain.length
        self.pos_a = {}
        self.values_a = []
        return report

    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        """Current modeled footprint of the precomputed structures."""
        return (
            len(self.array_b) * ARRAYB_BYTES_PER_ENTRY
            + len(self.pos_a) * POSA_BYTES_PER_BUCKET
            + sum(chain.length for chain in self.pos_a.values()) * CHAIN_BYTES_PER_NODE
        )

    def __repr__(self) -> str:
        return (
            f"P2SMState(|A|={len(self.values_a)}, |arrayB|={len(self.array_b)}, "
            f"posA keys={sorted(self.pos_a)})"
        )


def sorted_merge_reference(
    target: SortedLinkedList[T], values: List[T]
) -> int:
    """Vanilla per-element sorted merge (the baseline for step 4).

    Inserts each value with an O(n) scan, exactly what the unmodified
    resume path does for each vCPU.  Returns the scan steps consumed,
    which the cost model converts to simulated time.
    """
    before = target.scan_steps
    for value in sorted(values, key=target.key):
        target.insert_sorted(value)
    return target.scan_steps - before
