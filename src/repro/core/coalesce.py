"""Load-update coalescing (paper §4.2).

Run-queue load tracking applies, for every vCPU placed on a run queue,
an affine update ``L(x) = alpha * x + beta`` (the PELT family of load
trackers has this shape when folding in a newly runnable entity).  For
a sandbox with *n* vCPUs all landing on the same run queue — which P2SM
guarantees — the n-fold composition collapses analytically:

    f^n(x) = alpha^n * x + beta * (1 - alpha^n) / (1 - alpha)

because ``beta * sum_{i=0}^{n-1} alpha^i`` is a geometric series.  HORSE
precomputes ``alpha^n`` and the beta term at *pause* time (they depend
only on n) and applies a single fused update at resume time.

Note on the paper's formula: the text writes the beta term with
``alpha^(n-1)`` in the numerator while its own derivation sums
``i = 0 .. n-1`` — a sum whose closed form uses ``alpha^n``.  We
implement the mathematically consistent version (property-tested to
equal n-fold application exactly); the discrepancy is a typo in the
paper and is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass


@dataclass(frozen=True)
class AffineUpdate:
    """One load update ``x -> alpha * x + beta``."""

    alpha: float
    beta: float

    def apply(self, x: float) -> float:
        return self.alpha * x + self.beta

    def compose_n(self, n: int) -> "CoalescedUpdate":
        """Closed form of applying this update *n* times."""
        return CoalescedUpdate.precompute(self.alpha, self.beta, n)


@dataclass(frozen=True)
class CoalescedUpdate:
    """The fused n-fold update, precomputed at pause time.

    Stores exactly the two scalars the paper attaches to the paused
    sandbox: ``alpha_n = alpha^n`` and ``beta_sum`` (the geometric-series
    term), so resume applies ``x -> alpha_n * x + beta_sum`` once.
    """

    alpha_n: float
    beta_sum: float
    n: int

    @classmethod
    def precompute(cls, alpha: float, beta: float, n: int) -> "CoalescedUpdate":
        if n < 1:
            raise ValueError(f"coalescing requires n >= 1, got {n}")
        alpha_n = alpha ** n
        if alpha == 1.0:
            # Degenerate geometric series: sum of n ones.
            beta_sum = beta * n
        else:
            beta_sum = beta * (1.0 - alpha_n) / (1.0 - alpha)
        return cls(alpha_n=alpha_n, beta_sum=beta_sum, n=n)

    def apply(self, x: float) -> float:
        """Apply the fused update: one multiply, one add."""
        return self.alpha_n * x + self.beta_sum


def ulps_apart(a: float, b: float) -> int:
    """Distance between two floats in units of least precision.

    0 means bit-identical (also for ``-0.0`` vs ``0.0``).  Used by the
    differential oracles: the fused coalesced update must equal the
    closed form *exactly* (0 ULP — they are the same float expression),
    while the n-fold iterated reference is allowed a small budget since
    a different operation order rounds differently.  NaNs and opposite
    signs are treated as maximally far apart.
    """
    if a == b:
        return 0
    if math.isnan(a) or math.isnan(b):
        return (1 << 63) - 1
    ia = struct.unpack("<q", struct.pack("<d", a))[0]
    ib = struct.unpack("<q", struct.pack("<d", b))[0]
    # Map the sign-magnitude float ordering onto a monotone integer line.
    if ia < 0:
        ia = -(ia & ((1 << 63) - 1))
    if ib < 0:
        ib = -(ib & ((1 << 63) - 1))
    return abs(ia - ib)


def apply_n_times(update: AffineUpdate, x: float, n: int) -> float:
    """Reference implementation: apply *update* to *x*, *n* times.

    Exists for tests and the vanilla resume path; the property suite
    checks ``CoalescedUpdate.precompute(a, b, n).apply(x)`` matches this
    to floating-point tolerance for all valid inputs.
    """
    if n < 0:
        raise ValueError(f"cannot apply an update {n} times")
    value = x
    for _ in range(n):
        value = update.apply(value)
    return value
