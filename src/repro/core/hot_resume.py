"""HORSE: the hot-resume fast path (paper §4).

:class:`HorsePauseResume` replaces the vanilla pause/resume pair for
uLL sandboxes.  Its configuration selects which of the two mechanisms
are active, which yields the paper's four Figure-3 setups:

============  ==========  ===============  ==================
setup         P2SM        load coalescing  command fast path
============  ==========  ===============  ==================
``vanil``     (use :class:`~repro.hypervisor.pause_resume.VanillaPauseResume`)
``ppsm``      on          off              off
``coal``      off         on               off
``horse``     on          on               on
============  ==========  ===============  ==================

Pause-time work (all while the sandbox is *not* latency critical):

* dequeue the vCPUs (as vanilla does);
* build ``merge_vcpus`` — the sandbox's vCPUs pre-sorted by the active
  scheduler key;
* tie the sandbox to a reserved ``ull_runqueue`` (load-balanced);
* precompute P2SM's ``arrayB``/``posA`` against that queue;
* precompute the coalesced load update's ``alpha^n`` and beta term.

Resume-time work is then O(1): a trimmed command path, one parallel
splice of ``merge_vcpus`` into the queue (two pointer writes per merge
thread, threads run concurrently), and a single fused load update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.coalesce import CoalescedUpdate
from repro.core.p2sm import MergeReport, P2SMState, sorted_merge_reference
from repro.core.ull_runqueue import UllRunqueueManager
from repro.hypervisor.costs import CostModel
from repro.hypervisor.cpu import Host
from repro.hypervisor.load_tracking import DEFAULT_ENTITY_WEIGHT
from repro.hypervisor.pause_resume import (
    STEP_FINALIZE,
    STEP_LOAD,
    STEP_LOCK,
    STEP_MERGE,
    STEP_PARSE,
    STEP_SANITY,
    STEP_STALL,
    PauseResult,
    ResumeFaultHook,
    ResumeResult,
    apply_resume_fault,
)
from repro.hypervisor.runqueue import RunQueue
from repro.hypervisor.sandbox import Sandbox, SandboxState
from repro.hypervisor.scheduler.base import SchedulerPolicy
from repro.metrics.recorder import Breakdown
from repro.obs.context import Observability, current as current_obs
from repro.obs.phases import observe_resume


@dataclass(frozen=True)
class HorseConfig:
    """Mechanism switches for the HORSE pause/resume path."""

    enable_p2sm: bool = True
    enable_coalescing: bool = True
    fast_command_path: bool = True

    @classmethod
    def ppsm_only(cls) -> "HorseConfig":
        return cls(enable_p2sm=True, enable_coalescing=False, fast_command_path=False)

    @classmethod
    def coalescing_only(cls) -> "HorseConfig":
        return cls(enable_p2sm=False, enable_coalescing=True, fast_command_path=False)

    @classmethod
    def full(cls) -> "HorseConfig":
        return cls()


@dataclass
class HorsePauseResult(PauseResult):
    """Pause outcome plus the precompute work done for the fast resume."""

    precompute_entries: int = 0
    precompute_bytes: int = 0


@dataclass
class HorseResumeResult(ResumeResult):
    """Resume outcome plus merge-thread accounting for §5.4."""

    merge_threads: int = 0
    pointer_writes: int = 0


class HorsePauseResume:
    """The HORSE fast path, bound to one host and one uLL manager."""

    def __init__(
        self,
        host: Host,
        policy: SchedulerPolicy,
        costs: CostModel,
        ull_manager: Optional[UllRunqueueManager] = None,
        config: HorseConfig = HorseConfig.full(),
        obs: Optional[Observability] = None,
    ) -> None:
        self.host = host
        self.policy = policy
        self.costs = costs
        self.config = config
        # Defaults to the active observability context so drivers that
        # construct the fast path directly trace without plumbing.
        self.obs = obs if obs is not None else current_obs()
        self.ull = ull_manager or UllRunqueueManager(host)
        self.resumes = 0
        self.pauses = 0
        #: Optional callable fired between step 4 (merge) and step 5
        #: (load update) as ``f(sandbox, queue, now_ns)``.  This is the
        #: window the paper's global resume lock protects in vanilla;
        #: repro.check's fault injector uses it to model concurrent
        #: mutations racing the trimmed fast path.
        self.mid_resume_hook: Optional[
            Callable[[Sandbox, "RunQueue", int], None]
        ] = None
        #: Optional per-resume fault decision (repro.resilience failure
        #: domains) — the fast path fails under the same injector as the
        #: vanilla path.
        self.fault_hook: Optional[ResumeFaultHook] = None
        #: (registry, pause ctr, precompute ctr, precompute histo) —
        #: bound once per attached registry in _emit_pause_obs.
        self._pause_instruments = None

    # ------------------------------------------------------------------
    # Pause: dequeue + precompute
    # ------------------------------------------------------------------
    def pause(self, sandbox: Sandbox, now_ns: int) -> HorsePauseResult:
        sandbox.require_state(SandboxState.RUNNING)
        # A sandbox that was HORSE-paused but then resumed through the
        # *vanilla* path keeps its stale queue assignment (the vanilla
        # path knows nothing about the uLL manager); detach it before
        # re-assigning.
        self.ull.unassign(sandbox)
        sandbox.clear_horse_artifacts()
        duration = self.costs.pause_fixed_ns
        dequeued = 0
        touched_ull_queues = set()
        for vcpu in sandbox.vcpus:
            if vcpu.runqueue_id is not None:
                if self.ull.is_ull_queue(vcpu.runqueue_id):
                    touched_ull_queues.add(vcpu.runqueue_id)
                runqueue = self.host.runqueues[vcpu.runqueue_id]
                if runqueue.dequeue(vcpu, now_ns):
                    dequeued += 1
                    duration += self.costs.pause_dequeue_vcpu_ns
            vcpu.mark_paused()
        # Dequeuing mutated reserved queues: every *other* paused
        # sandbox tied to them holds arrayB entries referencing nodes
        # that may just have been unlinked — refresh their
        # precomputation now ("the updates are performed each time
        # ull_runqueue is updated", §4.1.3).
        for queue_id in touched_ull_queues:
            self.ull.on_queue_updated(queue_id)
        sandbox.transition(SandboxState.PAUSED)

        dequeue_ns = duration

        # Build merge_vcpus: the sandbox's vCPUs, pre-sorted once by the
        # scheduler key so resume never iterates them again.
        for vcpu in sandbox.vcpus:
            self.policy.on_enqueue(vcpu)
        sandbox.merge_vcpus = sorted(sandbox.vcpus, key=self.policy.sort_key)
        sort_ns = self.costs.horse_pause_sort_vcpu_ns * sandbox.vcpu_count
        duration += sort_ns

        # Tie to a reserved queue and precompute P2SM structures.
        queue = self.ull.assign(sandbox)
        precompute_entries = 0
        p2sm_ns = 0.0
        if self.config.enable_p2sm:
            sandbox.p2sm_state = P2SMState(sandbox.merge_vcpus, queue.entities)
            report = sandbox.p2sm_state.last_report
            precompute_entries = report.array_entries + report.chain_nodes
            p2sm_ns = self.costs.p2sm_refresh_entry_ns * precompute_entries
            duration += p2sm_ns

        # Precompute the fused load update from the sandbox's vCPU count.
        coalesce_ns = 0.0
        if self.config.enable_coalescing:
            template = queue.load.enqueue_update(DEFAULT_ENTITY_WEIGHT)
            sandbox.coalesced_update = CoalescedUpdate.precompute(
                template.alpha, template.beta, sandbox.vcpu_count
            )
            coalesce_ns = self.costs.horse_pause_coalesce_ns
            duration += coalesce_ns

        self.pauses += 1
        if self.obs.enabled:
            self._emit_pause_obs(
                sandbox, now_ns, queue.core_id,
                dequeue_ns=dequeue_ns, sort_ns=sort_ns, p2sm_ns=p2sm_ns,
                coalesce_ns=coalesce_ns, precompute_entries=precompute_entries,
            )
        return HorsePauseResult(
            sandbox_id=sandbox.sandbox_id,
            duration_ns=round(duration),
            dequeued_vcpus=dequeued,
            precompute_entries=precompute_entries,
            precompute_bytes=self.costs.horse_memory_bytes(sandbox.vcpu_count),
        )

    def _emit_pause_obs(
        self,
        sandbox: Sandbox,
        now_ns: int,
        core_id: int,
        dequeue_ns: float,
        sort_ns: float,
        p2sm_ns: float,
        coalesce_ns: float,
        precompute_entries: int,
    ) -> None:
        """Span tree for a HORSE pause: dequeue, then the precompute
        work (vCPU sort, P2SM refresh, coalesced-update build) that
        buys the O(1) resume.

        Span building and metric updates gate independently on the
        tracer's and registry's own ``enabled`` flags: a metrics-only
        bundle skips all span/kwarg construction, a tracer-only bundle
        skips the instrument updates.
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.name_process(core_id, f"cpu{core_id}")
            tid = tracer.tid_for(sandbox.sandbox_id, pid=core_id)
            root = tracer.open_span(
                "pause", now_ns, category="pause", pid=core_id, tid=tid,
                sandbox=sandbox.sandbox_id, path="horse",
            )
            cursor = now_ns
            tracer.record_span(
                "dequeue", cursor, round(dequeue_ns), pid=core_id, tid=tid,
                category="pause",
            )
            cursor += round(dequeue_ns)
            precompute = tracer.open_span(
                "precompute", cursor, category="pause", pid=core_id, tid=tid,
                entries=precompute_entries,
            )
            for name, phase_ns in (
                ("sort_vcpus", sort_ns),
                ("p2sm_refresh", p2sm_ns),
                ("coalesce", coalesce_ns),
            ):
                tracer.record_span(
                    name, cursor, round(phase_ns), pid=core_id, tid=tid,
                    category="pause",
                )
                cursor += round(phase_ns)
            precompute.close(cursor)
            root.close(cursor)
        metrics = self.obs.metrics
        if metrics.enabled:
            handles = self._pause_instruments
            if handles is None or handles[0] is not metrics:
                handles = self._pause_instruments = (
                    metrics,
                    metrics.counter("pause.count"),
                    metrics.counter("p2sm.precompute_entries"),
                    metrics.histogram("pause.precompute_ns"),
                )
            handles[1].inc()
            handles[2].inc(precompute_entries)
            handles[3].observe(round(sort_ns + p2sm_ns + coalesce_ns))

    # ------------------------------------------------------------------
    # Resume: the fast path
    # ------------------------------------------------------------------
    def resume(self, sandbox: Sandbox, now_ns: int) -> HorseResumeResult:
        breakdown = Breakdown()
        stall_ns = apply_resume_fault(self.fault_hook, sandbox, now_ns, "horse")
        if stall_ns:
            breakdown.add(STEP_STALL, round(stall_ns))
        if self.config.fast_command_path:
            breakdown.add(STEP_PARSE, round(self.costs.fast_parse_ns))
            breakdown.add(STEP_LOCK, round(self.costs.fast_lock_ns))
        else:
            breakdown.add(STEP_PARSE, round(self.costs.resume_parse_ns))
            breakdown.add(STEP_LOCK, round(self.costs.resume_lock_ns))

        sandbox.require_state(SandboxState.PAUSED)
        sandbox.transition(SandboxState.RESUMING)
        breakdown.add(
            STEP_SANITY,
            round(
                self.costs.fast_sanity_ns
                if self.config.fast_command_path
                else self.costs.resume_sanity_ns
            ),
        )

        queue_id = sandbox.assigned_ull_runqueue
        if queue_id is None:
            raise RuntimeError(
                f"{sandbox.sandbox_id}: resume without a pause-time "
                "ull_runqueue assignment"
            )
        queue = self.ull.queue(queue_id)

        # Step 4: merge merge_vcpus into the reserved queue.
        merge_threads = 0
        pointer_writes = 0
        if self.config.enable_p2sm:
            if sandbox.p2sm_state is None:
                raise RuntimeError(
                    f"{sandbox.sandbox_id}: P2SM enabled but no precomputed state"
                )
            report: MergeReport = sandbox.p2sm_state.merge()
            merge_threads = report.threads
            pointer_writes = report.pointer_writes
            for vcpu in sandbox.vcpus:
                vcpu.mark_runnable(queue.runqueue_id)
            queue.enqueue_count += report.merged_elements
            breakdown.add(
                STEP_MERGE, round(self.costs.p2sm_merge_cost_ns(report.threads))
            )
        else:
            # coal-only setup: vanilla sorted merge, but into the single
            # reserved queue so one coalesced update covers all vCPUs.
            assert sandbox.merge_vcpus is not None
            scan_steps = sorted_merge_reference(queue.entities, sandbox.merge_vcpus)
            for vcpu in sandbox.vcpus:
                vcpu.mark_runnable(queue.runqueue_id)
            queue.enqueue_count += sandbox.vcpu_count
            breakdown.add(
                STEP_MERGE,
                round(self.costs.merge_cost_ns(sandbox.vcpu_count, scan_steps)),
            )

        if self.mid_resume_hook is not None:
            self.mid_resume_hook(sandbox, queue, now_ns)

        # Step 5: load update — fused or per-vCPU.
        if self.config.enable_coalescing:
            update = sandbox.coalesced_update
            if update is None:
                raise RuntimeError(
                    f"{sandbox.sandbox_id}: coalescing enabled but no "
                    "precomputed update"
                )
            queue.load.apply_coalesced(now_ns, update.alpha_n, update.beta_sum)
            breakdown.add(STEP_LOAD, round(self.costs.coalesced_update_ns))
        else:
            for vcpu in sandbox.vcpus:
                queue.load.enqueue_entity(now_ns, vcpu.weight)
            breakdown.add(
                STEP_LOAD, round(self.costs.load_update_cost_ns(sandbox.vcpu_count))
            )

        # Step 6: finalize.
        self.ull.unassign(sandbox)
        sandbox.clear_horse_artifacts()
        sandbox.transition(SandboxState.RUNNING)
        sandbox.resume_count += 1
        if not self.config.fast_command_path:
            breakdown.add(STEP_FINALIZE, round(self.costs.resume_finalize_ns))

        # Other paused sandboxes tied to this queue must refresh their
        # precomputation (the queue just changed under them).
        self.ull.on_queue_updated(queue.runqueue_id)

        self.resumes += 1
        if self.obs.enabled:
            self._emit_resume_obs(
                sandbox, now_ns, breakdown, queue.core_id,
                merge_threads=merge_threads, pointer_writes=pointer_writes,
            )
        return HorseResumeResult(
            sandbox_id=sandbox.sandbox_id,
            breakdown=breakdown,
            runqueue_ids=[queue.runqueue_id],
            merge_threads=merge_threads,
            pointer_writes=pointer_writes,
        )

    def _emit_resume_obs(
        self,
        sandbox: Sandbox,
        now_ns: int,
        breakdown: Breakdown,
        core_id: int,
        merge_threads: int,
        pointer_writes: int,
    ) -> None:
        """Nested spans for the fast resume, one child per step, tiling
        the root exactly; also feeds the per-phase ns histograms.

        Tracer and metrics gate independently (see _emit_pause_obs).
        """
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.name_process(core_id, f"cpu{core_id}")
            tid = tracer.tid_for(sandbox.sandbox_id, pid=core_id)
            timeline = tracer.timeline(
                "resume", now_ns, category="resume", pid=core_id, tid=tid,
                sandbox=sandbox.sandbox_id, path="horse",
                vcpus=sandbox.vcpu_count,
                fast_path=self.config.fast_command_path,
            )
            phases = breakdown.phases
            if phases.get(STEP_STALL):
                timeline.phase("stall", phases[STEP_STALL], injected=True)
            timeline.phase("parse", phases.get(STEP_PARSE, 0))
            timeline.phase("lock", phases.get(STEP_LOCK, 0))
            timeline.phase("sanity", phases.get(STEP_SANITY, 0))
            timeline.phase(
                "merge", phases.get(STEP_MERGE, 0),
                p2sm=self.config.enable_p2sm, threads=merge_threads,
                pointer_writes=pointer_writes,
            )
            timeline.phase(
                "load_update", phases.get(STEP_LOAD, 0),
                coalesced=self.config.enable_coalescing,
            )
            timeline.phase("dispatch", phases.get(STEP_FINALIZE, 0))
            timeline.finish(total_ns=breakdown.total_ns)
        metrics = self.obs.metrics
        if metrics.enabled:
            observe_resume(metrics, breakdown)
