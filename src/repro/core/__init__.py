"""HORSE: the paper's primary contribution.

P2SM (parallel precomputed sorted merge), load-update coalescing, the
reserved uLL run queues, and the hot-resume fast path that composes
them.

Attribute access is lazy (PEP 562): the hypervisor substrate imports
the *leaf* modules here (``linked_list``, ``coalesce``) while the
high-level modules (``hot_resume``, ``ull_runqueue``) import the
hypervisor back.  Lazy loading keeps that layering cycle-free no matter
which package a user imports first.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "AffineUpdate": "repro.core.coalesce",
    "CoalescedUpdate": "repro.core.coalesce",
    "apply_n_times": "repro.core.coalesce",
    "HorseConfig": "repro.core.hot_resume",
    "HorsePauseResult": "repro.core.hot_resume",
    "HorsePauseResume": "repro.core.hot_resume",
    "HorseResumeResult": "repro.core.hot_resume",
    "ListNode": "repro.core.linked_list",
    "SortedLinkedList": "repro.core.linked_list",
    "MergeReport": "repro.core.p2sm",
    "P2SMState": "repro.core.p2sm",
    "PrecomputeReport": "repro.core.p2sm",
    "SubChain": "repro.core.p2sm",
    "sorted_merge_reference": "repro.core.p2sm",
    "UllAssignmentError": "repro.core.ull_runqueue",
    "UllRunqueueManager": "repro.core.ull_runqueue",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # static analyzers see the real names
    from repro.core.coalesce import AffineUpdate, CoalescedUpdate, apply_n_times
    from repro.core.hot_resume import (
        HorseConfig,
        HorsePauseResult,
        HorsePauseResume,
        HorseResumeResult,
    )
    from repro.core.linked_list import ListNode, SortedLinkedList
    from repro.core.p2sm import (
        MergeReport,
        P2SMState,
        PrecomputeReport,
        SubChain,
        sorted_merge_reference,
    )
    from repro.core.ull_runqueue import UllAssignmentError, UllRunqueueManager


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
