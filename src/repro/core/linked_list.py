"""Intrusive sorted singly-linked list.

This is the substrate data structure of the whole reproduction: CPU run
queues are sorted linked lists of schedulable entities (the paper's
step 4 performs "a sorted merge of each vCPU to the target run queue"),
and P2SM's O(1) merge is literally two ``next``-pointer writes per
precomputed position on such a list.

The list is *intrusive*: callers insert :class:`ListNode` objects whose
``next`` pointers the list owns.  That mirrors the kernel structures the
paper modifies and is what makes P2SM's pointer splicing expressible.

A sentinel head node keeps every position — including "before the first
element" — addressable by a node pointer, which P2SM's ``arrayB``
requires (position *i* in ``arrayB`` is the node after which a sub-list
splices in; index 0 is the sentinel).
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")

SortKey = Callable[[Any], float]


class ListNode(Generic[T]):
    """A node carrying *value*, linked through ``next``."""

    __slots__ = ("value", "next")

    def __init__(self, value: T) -> None:
        self.value = value
        self.next: Optional["ListNode[T]"] = None

    def __repr__(self) -> str:
        return f"ListNode({self.value!r})"


class SortedLinkedList(Generic[T]):
    """Singly-linked list kept sorted (ascending) by *key*.

    Ties insert after existing equal keys (FIFO among equals), matching
    run-queue semantics where an enqueued vCPU goes behind peers with
    the same credit.

    ``scan_steps`` counts node hops performed by sorted operations; the
    hypervisor cost model charges simulated time proportional to it, so
    the O(n) character of the vanilla merge is *measured from the real
    data structure*, not assumed.
    """

    def __init__(self, key: SortKey) -> None:
        self._key = key
        self.head: ListNode[T] = ListNode(None)  # sentinel
        self._size = 0
        self.scan_steps = 0

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def key(self) -> SortKey:
        return self._key

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[T]:
        node = self.head.next
        while node is not None:
            yield node.value
            node = node.next

    def nodes(self) -> Iterator[ListNode[T]]:
        node = self.head.next
        while node is not None:
            yield node
            node = node.next

    def first(self) -> Optional[T]:
        return self.head.next.value if self.head.next is not None else None

    def to_list(self) -> List[T]:
        return list(self)

    # ------------------------------------------------------------------
    # Sorted mutation
    # ------------------------------------------------------------------
    def insert_sorted(self, value: T) -> ListNode[T]:
        """Insert *value* at its sorted position; returns the new node.

        This is the vanilla per-vCPU sorted merge: an O(n) scan from the
        head, counted in ``scan_steps``.
        """
        node = ListNode(value)
        prev = self._find_insertion_point(self._key(value))
        node.next = prev.next
        prev.next = node
        self._size += 1
        return node

    def _find_insertion_point(self, key_value: float) -> ListNode[T]:
        """Last node whose key is <= *key_value* (sentinel if none)."""
        prev = self.head
        node = self.head.next
        while node is not None and self._key(node.value) <= key_value:
            self.scan_steps += 1
            prev = node
            node = node.next
        return prev

    def remove(self, value: T) -> bool:
        """Remove the first node holding *value* (identity or equality).

        Returns True if found.  O(n) scan, counted in ``scan_steps``.
        """
        prev = self.head
        node = self.head.next
        while node is not None:
            self.scan_steps += 1
            if node.value is value or node.value == value:
                prev.next = node.next
                node.next = None
                self._size -= 1
                return True
            prev = node
            node = node.next
        return False

    def pop_first(self) -> Optional[T]:
        """Remove and return the smallest-key value, or None if empty."""
        node = self.head.next
        if node is None:
            return None
        self.head.next = node.next
        node.next = None
        self._size -= 1
        return node.value

    # ------------------------------------------------------------------
    # Positional access (what P2SM's arrayB precomputes)
    # ------------------------------------------------------------------
    def node_at(self, position: int) -> ListNode[T]:
        """Node at *position*, where 0 is the sentinel head.

        Position *i* >= 1 is the i-th element.  O(position) walk; P2SM
        exists precisely to avoid calling this on the hot path.
        """
        if position < 0 or position > self._size:
            raise IndexError(f"position {position} out of range 0..{self._size}")
        node: ListNode[T] = self.head
        for _ in range(position):
            assert node.next is not None
            node = node.next
        return node

    def position_for_key(self, key_value: float) -> int:
        """Sorted position (0 = before first element) for *key_value*.

        The returned position indexes the node a sub-list with this key
        must splice after — the quantity P2SM's ``posA`` stores.
        """
        position = 0
        node = self.head.next
        while node is not None and self._key(node.value) <= key_value:
            self.scan_steps += 1
            position += 1
            node = node.next
        return position

    # ------------------------------------------------------------------
    # Splicing (the primitive the P2SM merge threads execute)
    # ------------------------------------------------------------------
    def splice_after(
        self,
        anchor: ListNode[T],
        sub_head: ListNode[T],
        sub_tail: ListNode[T],
        length: int,
    ) -> None:
        """Splice the chain ``sub_head..sub_tail`` in after *anchor*.

        Exactly the two pointer writes of the paper's Algorithm 1:
        ``tmp = anchor.next; anchor.next = sub_head; sub_tail.next = tmp``.
        O(1) regardless of chain or list length; does **not** touch
        ``scan_steps``.  The caller guarantees sortedness (that is what
        the precomputation phase establishes).
        """
        if length <= 0:
            raise ValueError(f"splice length must be positive, got {length}")
        tmp = anchor.next
        anchor.next = sub_head
        sub_tail.next = tmp
        self._size += length

    # ------------------------------------------------------------------
    # Invariant checking (used by tests and debug assertions)
    # ------------------------------------------------------------------
    def is_sorted(self) -> bool:
        """True when every adjacent pair is in ascending key order."""
        previous_key: Optional[float] = None
        for value in self:
            current = self._key(value)
            if previous_key is not None and current < previous_key:
                return False
            previous_key = current
        return True

    def check_size(self) -> bool:
        """True when the cached size equals the walked node count."""
        return sum(1 for _ in self) == self._size

    def structure_errors(self) -> List[str]:
        """Structural problems as human-readable strings (empty = sound).

        One cycle-safe walk checks link integrity (no cycle, no node
        chain longer than the size counter admits), the size counter,
        and sortedness.  Unlike :meth:`is_sorted`/:meth:`check_size`,
        this cannot loop forever on a corrupted list, so it is safe to
        call on state a fault injector has deliberately mangled.
        """
        errors: List[str] = []
        limit = self._size + 1
        walked = 0
        previous_key: Optional[float] = None
        node = self.head.next
        while node is not None:
            walked += 1
            if walked > limit:
                errors.append(
                    f"link corruption: walked {walked} nodes but size "
                    f"counter is {self._size} (cycle or lost splice)"
                )
                return errors
            current = self._key(node.value)
            if previous_key is not None and current < previous_key:
                errors.append(
                    f"order violated at node {walked}: key {current!r} "
                    f"after {previous_key!r}"
                )
            previous_key = current
            node = node.next
        if walked != self._size:
            errors.append(
                f"size counter drifted: walked {walked}, cached {self._size}"
            )
        return errors

    def reset_scan_counter(self) -> int:
        """Return and zero ``scan_steps`` (cost-model bookkeeping)."""
        steps, self.scan_steps = self.scan_steps, 0
        return steps

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for _, v in zip(range(4), self))
        suffix = ", ..." if self._size > 4 else ""
        return f"SortedLinkedList([{preview}{suffix}], size={self._size})"
