"""Render experiment results as the paper's tables (plain text).

Formatting only — all numbers come from the experiment result objects.
The renderers return strings so tests can assert on structure and the
report writer can embed them in Markdown.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.experiments.table1 import TABLE1_SCENARIOS, Table1Result
from repro.faas.invocation import StartType


def _format_us(value: float) -> str:
    """Microseconds with magnitude-appropriate precision."""
    if value >= 100_000:
        return f"{value:.3g}"
    if value >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table renderer."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def render_table1(
    result: Table1Result,
    scenarios: Sequence[StartType] = TABLE1_SCENARIOS,
) -> str:
    """Table 1: init time / exec time / init share per (category,
    scenario), mirroring the paper's row structure."""
    categories = result.categories()
    headers = ["metric"] + [
        f"{category}/{scenario.value}"
        for category in categories
        for scenario in scenarios
    ]
    init_row: List[str] = ["Initialization (us)"]
    exec_row: List[str] = ["Avg Execution (us)"]
    pct_row: List[str] = ["Init. Per. (%)"]
    for category in categories:
        for scenario in scenarios:
            cell = result.cell(category, scenario)
            init_row.append(_format_us(cell.mean_init_us))
            exec_row.append(_format_us(cell.mean_exec_us))
            pct_row.append(f"{cell.mean_init_pct:.2f}")
    return render_table(headers, [init_row, exec_row, pct_row])
