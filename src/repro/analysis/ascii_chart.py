"""ASCII chart rendering for terminal reports.

The paper's Figures 1 and 4 are grouped percentage bars; ``bar_chart``
renders the same shape in plain text so a terminal run of the report
shows the figures, not just their tables.  ``sparkline`` compresses a
series (e.g. resume time vs vCPUs) into one line.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar(value: float, maximum: float, width: int = 40) -> str:
    """One horizontal bar scaled to *maximum*."""
    if maximum <= 0:
        raise ValueError(f"maximum must be positive, got {maximum}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    clamped = min(max(value, 0.0), maximum)
    filled = round(width * clamped / maximum)
    return "#" * filled + "." * (width - filled)


def bar_chart(
    series: Dict[str, Sequence[float]],
    categories: Sequence[str],
    maximum: float = 100.0,
    width: int = 40,
    unit: str = "%",
) -> str:
    """Grouped horizontal bars: one block per series row, one bar per
    category — the shape of the paper's Figures 1/4."""
    label_width = max(len(c) for c in categories) if categories else 0
    lines: List[str] = []
    for name, values in series.items():
        if len(values) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(categories)} categories"
            )
        lines.append(f"{name}:")
        for category, value in zip(categories, values):
            lines.append(
                f"  {category.ljust(label_width)}  "
                f"{bar(value, maximum, width)} {value:6.2f}{unit}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Compress a series into block characters (min->max normalized)."""
    if not values:
        raise ValueError("sparkline of empty series")
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    span = high - low
    out = []
    for value in values:
        index = round((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)
