"""Full-evaluation report: run every experiment, render every artifact.

``generate_report`` executes the complete paper evaluation (Table 1,
Figures 1-4, the §5.2 overhead study and the §5.4 colocation study) and
returns a Markdown document with paper-vs-measured comparisons —
the data EXPERIMENTS.md is built from.  Invoke from the command line::

    python -m repro.analysis.report [--fast] [--out report.md]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional

from repro.analysis.ascii_chart import bar_chart, sparkline
from repro.analysis.figures import (
    figure1_series,
    figure4_series,
    render_colocation,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.analysis.tables import render_table1
from repro.experiments.registry import ExperimentConfig
from repro.experiments.registry import get as get_experiment
from repro.faas.invocation import StartType


@dataclass
class ReportConfig:
    repetitions: int = 10
    seed: int = 0
    fast: bool = False

    @property
    def experiment_config(self) -> ExperimentConfig:
        """The registry config matching this report's fidelity."""
        return ExperimentConfig(fast=self.fast, seed=self.seed)


def generate_report(config: Optional[ReportConfig] = None) -> str:
    """Run the paper evaluation through the experiment registry.

    Every result object is obtained via the registered specs (one
    source of truth for fast/full parameters); this module only holds
    the narrative that stitches the artifacts into Markdown.
    """
    config = config or ReportConfig()
    exp_config = config.experiment_config
    sections = ["# HORSE reproduction — full evaluation report\n"]

    table1 = get_experiment("table1").run(exp_config).raw
    sections.append("## Table 1 — sandbox readiness per scenario\n")
    sections.append("```\n" + render_table1(table1) + "\n```\n")

    sections.append("## Figure 1 — initialization share per scenario\n")
    sections.append("```\n" + render_figure1(table1) + "\n```\n")
    sections.append(
        "```\n"
        + bar_chart(figure1_series(table1), categories=table1.categories())
        + "\n```\n"
    )

    figure2 = get_experiment("figure2").run(exp_config).raw
    sections.append("## Figure 2 — vanilla resume breakdown\n")
    sections.append("```\n" + render_figure2(figure2) + "\n```\n")
    sections.append(
        f"Steps 4+5 share: {100 * figure2.points[0].hot_share:.1f}% at "
        f"{figure2.points[0].vcpus} vCPU -> "
        f"{100 * figure2.points[-1].hot_share:.1f}% at "
        f"{figure2.points[-1].vcpus} vCPUs "
        "(paper: 87.5% -> 93.1%).\n"
    )

    figure3 = get_experiment("figure3").run(exp_config).raw
    sections.append("## Figure 3 — resume time per setup\n")
    sections.append("```\n" + render_figure3(figure3) + "\n```\n")
    vanil_series = [figure3.mean_ns("vanil", v) for v in figure3.vcpu_counts()]
    horse_series = [figure3.mean_ns("horse", v) for v in figure3.vcpu_counts()]
    sections.append(
        f"vanil vs vCPUs: {sparkline(vanil_series)}  "
        f"horse vs vCPUs: {sparkline(horse_series)} (flat)\n"
    )
    sections.append(
        f"coal improvement {100 * figure3.min_improvement('coal'):.0f}-"
        f"{100 * figure3.max_improvement('coal'):.0f}% (paper 16-20%), "
        f"ppsm {100 * figure3.min_improvement('ppsm'):.0f}-"
        f"{100 * figure3.max_improvement('ppsm'):.0f}% (paper 55-69%), "
        f"HORSE up to {100 * figure3.max_improvement('horse'):.0f}% "
        "(paper: up to 85%, 7.16x). HORSE resume flatness "
        f"{figure3.horse_flatness():.3f} (paper: constant ~150 ns).\n"
    )

    overhead = get_experiment("overhead").run(exp_config).raw
    sections.append("## §5.2 — CPU and memory overhead of HORSE\n")
    peak_vcpus = max(overhead.vcpu_counts())
    sections.append(
        f"- memory delta at {peak_vcpus} vCPUs: "
        f"{overhead.memory_delta_bytes(peak_vcpus) / 1000:.1f} kB "
        "(paper: ~528 kB for 10 paused sandboxes)\n"
        f"- memory overhead vs running sandboxes: "
        f"{overhead.run('horse', peak_vcpus).memory_overhead_pct:.4f}% "
        "(paper prints 0.11%; 528 kB / 5 GB is 0.01%)\n"
        f"- pause-phase CPU delta: "
        f"{overhead.pause_cpu_delta_pct(peak_vcpus):.6f}% (paper: <= 0.3%)\n"
        f"- resume-phase CPU delta: "
        f"{overhead.resume_cpu_delta_pct(peak_vcpus):.6f}% (paper: <= 2.7%)\n"
    )

    figure4 = get_experiment("figure4").run(exp_config).raw
    sections.append("## Figure 4 — HORSE vs cold/restore/warm\n")
    sections.append("```\n" + render_figure4(figure4) + "\n```\n")
    sections.append(
        "```\n"
        + bar_chart(figure4_series(figure4), categories=figure4.categories())
        + "\n```\n"
    )
    low, high = figure4.horse_init_pct_range()
    sections.append(
        f"HORSE init share {low:.2f}-{high:.2f}% (paper: 0.77-17.64%); "
        f"advantage vs warm {figure4.horse_advantage(StartType.WARM):.1f}x "
        "(paper: up to 8.95x), vs restore "
        f"{figure4.horse_advantage(StartType.RESTORE):.1f}x (paper: 142.7x), "
        f"vs cold {figure4.horse_advantage(StartType.COLD):.1f}x "
        "(paper: 142.84x).\n"
    )

    colocation = get_experiment("colocation").run(exp_config).raw
    sections.append("## §5.4 — colocation with long-running functions\n")
    sections.append("```\n" + render_colocation(colocation) + "\n```\n")
    worst = max(colocation.vcpu_counts())
    sections.append(
        f"p99 overhead at {worst} uLL vCPUs: "
        f"{colocation.p99_overhead_us(worst):.1f} us "
        f"({colocation.p99_overhead_pct(worst):.5f}%) — paper: ~30 us "
        "(0.00107%); mean/p95 deltas: "
        f"{colocation.mean_delta_us(worst):.2f} / "
        f"{colocation.p95_delta_us(worst):.2f} us (paper: no difference).\n"
    )

    return "\n".join(sections)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="3 reps, sparse sweeps")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=str, default=None, help="write Markdown here")
    args = parser.parse_args()
    report = generate_report(ReportConfig(seed=args.seed, fast=args.fast))
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    else:
        print(report)


if __name__ == "__main__":
    main()
