"""Machine-checkable validation of the paper's claims.

``validate_all`` runs the evaluation and checks every quantitative
claim the paper makes against the measured value, returning a list of
:class:`ClaimCheck` records (claim id, paper value, measured value,
tolerance band, pass/fail).  This is the backbone of EXPERIMENTS.md's
paper-vs-measured table and doubles as a one-call regression gate::

    from repro.analysis.validation import validate_all, summarize
    checks = validate_all(fast=True)
    print(summarize(checks))
    assert all(c.passed for c in checks if not c.known_deviation)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.colocation import run_colocation
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.overhead import run_overhead
from repro.experiments.table1 import run_table1
from repro.faas.invocation import StartType


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim vs its measured counterpart."""

    claim_id: str
    description: str
    paper_value: str
    measured: float
    band: Tuple[float, float]
    known_deviation: bool = False
    note: str = ""

    @property
    def passed(self) -> bool:
        low, high = self.band
        return low <= self.measured <= high

    def __str__(self) -> str:
        status = "PASS" if self.passed else (
            "DEVIATION" if self.known_deviation else "FAIL"
        )
        return (
            f"[{status}] {self.claim_id}: {self.description} — paper "
            f"{self.paper_value}, measured {self.measured:.4g} "
            f"(accepted {self.band[0]:.4g}..{self.band[1]:.4g})"
        )


def validate_all(fast: bool = True, seed: int = 0) -> List[ClaimCheck]:
    """Run the evaluation and check every claim."""
    reps = 3 if fast else 10
    sweep = (1, 8, 36) if fast else (1, 2, 4, 8, 16, 24, 36)
    checks: List[ClaimCheck] = []

    # -- Table 1 ---------------------------------------------------------
    table1 = run_table1(repetitions=reps, seed=seed)
    warm_fw = table1.cell("firewall", StartType.WARM)
    checks.append(ClaimCheck(
        "T1-warm-init", "warm init time (us)", "1.1 us",
        warm_fw.mean_init_us, (1.0, 1.2),
    ))
    checks.append(ClaimCheck(
        "T1-cold-init", "cold init time (us)", "1.5e6 us",
        table1.cell("firewall", StartType.COLD).mean_init_us,
        (1.4e6, 1.6e6),
    ))
    checks.append(ClaimCheck(
        "T1-restore-init", "restore init time (us)", "1300 us",
        table1.cell("firewall", StartType.RESTORE).mean_init_us,
        (1250, 1350),
    ))
    checks.append(ClaimCheck(
        "T1-warm-pct-cat1", "warm init % for Category 1", "6.07 %",
        warm_fw.mean_init_pct, (4.5, 8.0),
    ))
    checks.append(ClaimCheck(
        "T1-warm-pct-cat3", "warm init % for Category 3", "61.1 %",
        table1.cell("array-filter", StartType.WARM).mean_init_pct,
        (55.0, 68.0),
    ))

    # -- Figure 2 ---------------------------------------------------------
    figure2 = run_figure2(vcpu_counts=sweep, repetitions=reps)
    checks.append(ClaimCheck(
        "F2-hot-share-1", "steps 4+5 share at 1 vCPU", "87.5 %",
        100 * figure2.points[0].hot_share, (86.0, 89.0),
    ))
    checks.append(ClaimCheck(
        "F2-hot-share-36", "steps 4+5 share at 36 vCPUs", "93.1 %",
        100 * figure2.points[-1].hot_share, (90.0, 94.0),
        note="measured 91.8 %, within 1.4 points of the paper",
    ))

    # -- Figure 3 ---------------------------------------------------------
    figure3 = run_figure3(vcpu_counts=sweep, repetitions=reps)
    checks.append(ClaimCheck(
        "F3-coal-min", "coalescing-only min improvement", "16 %",
        100 * figure3.min_improvement("coal"), (14.0, 20.0),
    ))
    checks.append(ClaimCheck(
        "F3-coal-max", "coalescing-only max improvement", "20 %",
        100 * figure3.max_improvement("coal"), (16.0, 23.0),
    ))
    checks.append(ClaimCheck(
        "F3-ppsm", "P2SM-only improvement", "55-69 %",
        100 * figure3.max_improvement("ppsm"), (55.0, 69.0),
    ))
    checks.append(ClaimCheck(
        "F3-horse-flat", "HORSE resume max/min across vCPUs", "constant",
        figure3.horse_flatness(), (1.0, 1.02),
    ))
    checks.append(ClaimCheck(
        "F3-horse-ns", "HORSE resume time (ns)", "~150 ns",
        figure3.mean_ns("horse", sweep[0]), (110.0, 180.0),
    ))
    checks.append(ClaimCheck(
        "F3-horse-speedup", "max HORSE speedup", "up to 7.16x",
        max(figure3.speedup("horse", v) for v in sweep), (7.16, 16.0),
        known_deviation=True,
        note=(
            "exceeds 7.16x because the paper's anchors are mutually "
            "inconsistent; see EXPERIMENTS.md"
        ),
    ))

    # -- §5.2 overhead -----------------------------------------------------
    overhead = run_overhead(vcpu_counts=(1, 36), seed=seed)
    checks.append(ClaimCheck(
        "OV-memory", "P2SM memory for 10 sandboxes (kB)", "~528 kB",
        overhead.memory_delta_bytes(36) / 1000, (500.0, 555.0),
    ))
    checks.append(ClaimCheck(
        "OV-pause-cpu", "pause-phase CPU delta (%)", "<= 0.3 %",
        overhead.pause_cpu_delta_pct(36), (-0.01, 0.3),
    ))
    checks.append(ClaimCheck(
        "OV-resume-cpu", "resume-phase CPU delta (%)", "<= 2.7 %",
        overhead.resume_cpu_delta_pct(36), (-0.01, 2.7),
    ))

    # -- Figure 4 -----------------------------------------------------------
    figure4 = run_figure4(repetitions=reps, seed=seed)
    low, high = figure4.horse_init_pct_range()
    checks.append(ClaimCheck(
        "F4-horse-low", "HORSE min init share (%)", "0.77 %",
        low, (0.5, 1.2),
    ))
    checks.append(ClaimCheck(
        "F4-horse-high", "HORSE max init share (%)", "17.64 %",
        high, (12.0, 20.0),
    ))
    checks.append(ClaimCheck(
        "F4-vs-cold", "HORSE advantage vs cold", "up to 142.84x",
        figure4.horse_advantage(StartType.COLD), (100.0, 160.0),
    ))
    checks.append(ClaimCheck(
        "F4-vs-warm", "HORSE advantage vs warm", "up to 8.95x",
        figure4.horse_advantage(StartType.WARM), (5.0, 11.0),
    ))

    # -- §5.4 colocation -----------------------------------------------------
    colocation = run_colocation(vcpu_counts=(1, 36), seed=seed)
    checks.append(ClaimCheck(
        "CO-p99", "p99 overhead at 36 uLL vCPUs (us)", "~30 us",
        colocation.p99_overhead_us(36), (0.0, 60.0),
    ))
    checks.append(ClaimCheck(
        "CO-mean", "mean latency delta (us)", "none",
        abs(colocation.mean_delta_us(36)), (0.0, 5.0),
    ))
    checks.append(ClaimCheck(
        "CO-p99-at-1", "p99 overhead at 1 uLL vCPU (us)", "none",
        abs(colocation.p99_overhead_us(1)), (0.0, 1.0),
    ))

    return checks


def summarize(checks: List[ClaimCheck]) -> str:
    lines = [str(check) for check in checks]
    passed = sum(1 for c in checks if c.passed)
    deviations = sum(1 for c in checks if not c.passed and c.known_deviation)
    failed = len(checks) - passed - deviations
    lines.append(
        f"\n{passed}/{len(checks)} claims in band, "
        f"{deviations} documented deviations, {failed} failures"
    )
    return "\n".join(lines)


def failed_checks(checks: List[ClaimCheck]) -> List[ClaimCheck]:
    """Checks that failed and are not documented deviations."""
    return [c for c in checks if not c.passed and not c.known_deviation]
