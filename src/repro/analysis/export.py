"""Export experiment results to JSON/CSV for external plotting.

The renderers in :mod:`repro.analysis.figures` print paper-style text;
this module serializes the same data structurally so users can plot
with their own tooling (matplotlib, gnuplot, spreadsheets)::

    from repro.analysis.export import figure3_to_json, write_csv
    payload = figure3_to_json(run_figure3())
    write_csv("figure3.csv", payload["columns"], payload["rows"])
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.experiments.colocation import ColocationResult
from repro.experiments.figure2 import Figure2Result
from repro.experiments.figure3 import Figure3Result
from repro.experiments.figure4 import FIGURE4_SCENARIOS, Figure4Result
from repro.experiments.table1 import Table1Result


def table1_to_json(result: Table1Result) -> Dict[str, Any]:
    rows: List[List[Any]] = []
    for (category, scenario), cell in sorted(
        result.cells.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        rows.append(
            [
                category,
                scenario.value,
                cell.mean_init_us,
                cell.mean_exec_us,
                cell.mean_init_pct,
            ]
        )
    return {
        "artifact": "table1",
        "columns": ["category", "scenario", "init_us", "exec_us", "init_pct"],
        "rows": rows,
    }


def figure2_to_json(result: Figure2Result) -> Dict[str, Any]:
    steps = sorted({step for p in result.points for step in p.mean_step_ns})
    rows = [
        [p.vcpus, p.mean_total_ns]
        + [p.mean_step_ns.get(step, 0.0) for step in steps]
        + [p.hot_share]
        for p in result.points
    ]
    return {
        "artifact": "figure2",
        "columns": ["vcpus", "total_ns"] + steps + ["hot_share"],
        "rows": rows,
    }


def figure3_to_json(result: Figure3Result) -> Dict[str, Any]:
    vcpus = result.vcpu_counts()
    rows = []
    for setup in sorted(result.series):
        for count in vcpus:
            rows.append([setup, count, result.mean_ns(setup, count)])
    return {
        "artifact": "figure3",
        "columns": ["setup", "vcpus", "resume_ns"],
        "rows": rows,
    }


def figure4_to_json(result: Figure4Result) -> Dict[str, Any]:
    rows = []
    for scenario in FIGURE4_SCENARIOS:
        for category in result.categories():
            rows.append(
                [scenario.value, category, result.init_pct(category, scenario)]
            )
    return {
        "artifact": "figure4",
        "columns": ["scenario", "category", "init_pct"],
        "rows": rows,
    }


def colocation_to_json(result: ColocationResult) -> Dict[str, Any]:
    rows = []
    for vcpus in result.vcpu_counts():
        for mode in ("vanilla", "horse"):
            summary = result.run(mode, vcpus).summary()
            rows.append(
                [mode, vcpus, summary.mean_us, summary.p95_us, summary.p99_us]
            )
    return {
        "artifact": "colocation",
        "columns": ["mode", "ull_vcpus", "mean_us", "p95_us", "p99_us"],
        "rows": rows,
    }


def write_json(path: Path | str, payload: Dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def write_csv(
    path: Path | str, columns: Sequence[str], rows: Sequence[Sequence[Any]]
) -> Path:
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for row in rows:
            if len(row) != len(columns):
                raise ValueError(
                    f"row has {len(row)} cells for {len(columns)} columns"
                )
            writer.writerow(row)
    return path
