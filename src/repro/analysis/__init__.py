"""Rendering of experiment results into the paper's tables/figures."""

from repro.analysis.figures import (
    colocation_series,
    figure1_series,
    figure2_series,
    figure3_series,
    figure4_series,
    render_colocation,
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
)
from repro.analysis.export import (
    colocation_to_json,
    figure2_to_json,
    figure3_to_json,
    figure4_to_json,
    table1_to_json,
    write_csv,
    write_json,
)
from repro.analysis.report import ReportConfig, generate_report
from repro.analysis.tables import render_table, render_table1
from repro.analysis.validation import (
    ClaimCheck,
    failed_checks,
    summarize,
    validate_all,
)

__all__ = [
    "colocation_series",
    "figure1_series",
    "figure2_series",
    "figure3_series",
    "figure4_series",
    "render_colocation",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "ReportConfig",
    "generate_report",
    "render_table",
    "render_table1",
    "colocation_to_json",
    "figure2_to_json",
    "figure3_to_json",
    "figure4_to_json",
    "table1_to_json",
    "write_csv",
    "write_json",
    "ClaimCheck",
    "failed_checks",
    "summarize",
    "validate_all",
]
