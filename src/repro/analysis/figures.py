"""Render experiment results as the paper's figure series (text).

Each ``figureN_series`` returns the plottable data (x values plus one
named series per line/bar group), and ``render_figureN`` a plain-text
view of it; the benchmark harness prints these so a reproduction run
shows the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.analysis.tables import render_table
from repro.experiments.colocation import ColocationResult
from repro.experiments.figure2 import Figure2Result
from repro.experiments.figure3 import Figure3Result
from repro.experiments.figure4 import FIGURE4_SCENARIOS, Figure4Result
from repro.experiments.table1 import Table1Result
from repro.faas.invocation import StartType
from repro.hypervisor.pause_resume import HOT_STEPS


# ----------------------------------------------------------------------
# Figure 1: init share per scenario x category
# ----------------------------------------------------------------------
def figure1_series(result: Table1Result) -> Dict[str, List[float]]:
    return {
        scenario.value: values
        for scenario, values in result.figure1_series().items()
    }


def render_figure1(result: Table1Result) -> str:
    categories = result.categories()
    headers = ["scenario"] + [f"{c} init%" for c in categories]
    rows = [
        [name] + [f"{v:.2f}" for v in values]
        for name, values in figure1_series(result).items()
    ]
    return render_table(headers, rows)


# ----------------------------------------------------------------------
# Figure 2: resume breakdown vs vCPUs
# ----------------------------------------------------------------------
def figure2_series(result: Figure2Result) -> Dict[str, List[float]]:
    """Per-step mean ns keyed by step name, plus the hot-step share."""
    steps = sorted({step for p in result.points for step in p.mean_step_ns})
    series: Dict[str, List[float]] = {
        step: [p.mean_step_ns.get(step, 0.0) for p in result.points]
        for step in steps
    }
    series["steps4+5 share %"] = [100.0 * p.hot_share for p in result.points]
    return series


def render_figure2(result: Figure2Result) -> str:
    headers = ["vCPUs", "total ns"] + [step for step in HOT_STEPS] + ["4+5 %"]
    rows = []
    for point in result.points:
        rows.append(
            [
                str(point.vcpus),
                f"{point.mean_total_ns:.0f}",
                *(f"{point.mean_step_ns.get(s, 0.0):.0f}" for s in HOT_STEPS),
                f"{100.0 * point.hot_share:.1f}",
            ]
        )
    return render_table(headers, rows)


# ----------------------------------------------------------------------
# Figure 3: resume time per setup vs vCPUs
# ----------------------------------------------------------------------
def figure3_series(result: Figure3Result) -> Dict[str, List[float]]:
    vcpus = result.vcpu_counts()
    return {
        setup: [result.mean_ns(setup, v) for v in vcpus]
        for setup in result.series
    }


def render_figure3(result: Figure3Result) -> str:
    vcpus = result.vcpu_counts()
    headers = ["setup"] + [f"{v} vCPU" for v in vcpus] + ["max speedup"]
    rows = []
    for setup in ("vanil", "ppsm", "coal", "horse"):
        if setup not in result.series:
            continue
        cells = [f"{result.mean_ns(setup, v):.0f}ns" for v in vcpus]
        speedup = (
            "-"
            if setup == "vanil"
            else f"{max(result.speedup(setup, v) for v in vcpus):.2f}x"
        )
        rows.append([setup] + cells + [speedup])
    return render_table(headers, rows)


# ----------------------------------------------------------------------
# Figure 4: init share for cold/restore/warm/horse x workloads
# ----------------------------------------------------------------------
def figure4_series(result: Figure4Result) -> Dict[str, List[float]]:
    return {
        scenario.value: values for scenario, values in result.series().items()
    }


def render_figure4(result: Figure4Result) -> str:
    categories = result.categories()
    headers = ["scenario"] + [f"{c} init%" for c in categories] + ["vs HORSE"]
    rows = []
    for scenario in FIGURE4_SCENARIOS:
        cells = [f"{result.init_pct(c, scenario):.2f}" for c in categories]
        advantage = (
            "-"
            if scenario is StartType.HORSE
            else f"{result.horse_advantage(scenario):.1f}x"
        )
        rows.append([scenario.value] + cells + [advantage])
    return render_table(headers, rows)


# ----------------------------------------------------------------------
# §5.4 colocation latency table
# ----------------------------------------------------------------------
def colocation_series(result: ColocationResult) -> Dict[str, List[Tuple]]:
    out: Dict[str, List[Tuple]] = {"vanilla": [], "horse": []}
    for vcpus in result.vcpu_counts():
        for mode in ("vanilla", "horse"):
            summary = result.run(mode, vcpus).summary()
            out[mode].append((vcpus, summary.mean_us, summary.p95_us, summary.p99_us))
    return out


def render_colocation(result: ColocationResult) -> str:
    headers = [
        "uLL vCPUs", "mode", "mean (ms)", "p95 (ms)", "p99 (ms)",
        "p99 overhead (us)", "p99 overhead (%)",
    ]
    rows = []
    for vcpus in result.vcpu_counts():
        for mode in ("vanilla", "horse"):
            summary = result.run(mode, vcpus).summary()
            overhead_us = (
                f"{result.p99_overhead_us(vcpus):.1f}" if mode == "horse" else "-"
            )
            overhead_pct = (
                f"{result.p99_overhead_pct(vcpus):.5f}" if mode == "horse" else "-"
            )
            rows.append(
                [
                    str(vcpus),
                    mode,
                    f"{summary.mean_us / 1000:.2f}",
                    f"{summary.p95_us / 1000:.2f}",
                    f"{summary.p99_us / 1000:.2f}",
                    overhead_us,
                    overhead_pct,
                ]
            )
    return render_table(headers, rows)
