"""Bench F4 — regenerates Figure 4 (paper §5.3).

Initialization percentage for cold / restore / warm / HORSE across the
three uLL workloads.  Paper anchors: HORSE init share 0.77-17.64 %,
beating warm by up to 8.95x and cold by up to 142.84x.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import render_figure4
from repro.experiments.figure4 import run_figure4
from repro.faas.invocation import StartType


@pytest.mark.benchmark(group="figure4")
def test_figure4_grid(once):
    result = once(run_figure4, repetitions=10, seed=0)
    emit("Figure 4 — init share incl. HORSE", render_figure4(result))
    low, high = result.horse_init_pct_range()
    assert low == pytest.approx(0.77, abs=0.3)
    assert high == pytest.approx(17.6, abs=3.0)
    assert result.horse_advantage(StartType.COLD) > 100.0
    assert result.horse_advantage(StartType.WARM) > 5.0
