"""Extension benches: SLO attainment, warm-pool keep-alive trade-off,
and the skip-vs-coalesce DVFS ablation (DESIGN.md §5 extensions)."""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.experiments.ablations_energy import ablate_skip_vs_coalesce
from repro.experiments.pool_study import run_pool_study
from repro.experiments.slo import SLO_SCENARIOS, run_slo
from repro.faas.invocation import StartType


@pytest.mark.benchmark(group="extensions")
def test_slo_attainment(once):
    result = once(run_slo, invocations=100, seed=0)
    rows = []
    for category in result.categories():
        rows.append(
            [category]
            + [
                f"{100 * result.attainment(category, scenario):.0f}%"
                for scenario in SLO_SCENARIOS
            ]
        )
    emit(
        "Extension — uLL deadline attainment per start strategy",
        render_table(
            ["category"] + [s.value for s in SLO_SCENARIOS], rows
        ),
    )
    for category in result.categories():
        # >= 0.97, not == 1.0: the firewall's execution envelope clips at
        # exactly its 20 us budget, so a draw at the clip plus HORSE's
        # 132 ns init can legitimately land just over the line.
        assert result.attainment(category, StartType.HORSE) >= 0.97
        assert result.attainment(category, StartType.COLD) == 0.0


@pytest.mark.benchmark(group="extensions")
def test_pool_keepalive_tradeoff(once):
    result = once(run_pool_study, seed=0)
    rows = []
    for name in result.policy_names():
        outcome = result.outcome(name)
        rows.append(
            [
                name,
                str(outcome.triggers),
                f"{100 * outcome.hit_rate:.0f}%",
                str(outcome.cold_starts),
                str(outcome.evictions),
                str(outcome.peak_pooled),
                f"{outcome.mean_init_us / 1000:.0f}ms",
            ]
        )
    emit(
        "Extension — warm-pool hit rate vs keep-alive policy",
        render_table(
            ["policy", "triggers", "hit rate", "colds", "evictions",
             "peak pooled", "mean init"],
            rows,
        ),
    )
    assert (
        result.outcome("fixed-120s").hit_rate
        >= result.outcome("fixed-5s").hit_rate
    )


@pytest.mark.benchmark(group="extensions")
def test_cluster_placement(once):
    """Multi-host extension: placement policy trade-offs under an
    Azure-like trace."""
    from repro.experiments.cluster_study import run_cluster_study

    result = once(run_cluster_study, seed=0)
    rows = []
    for policy in result.policies():
        outcome = result.outcome(policy)
        rows.append(
            [
                policy,
                str(outcome.triggers),
                f"{100 * outcome.cold_rate:.1f}%",
                f"{outcome.balance_cv:.3f}",
                f"{outcome.mean_init_us / 1000:.1f}ms",
            ]
        )
    emit(
        "Extension — cluster placement policies (4 hosts)",
        render_table(
            ["policy", "triggers", "cold rate", "balance CV", "mean init"],
            rows,
        ),
    )
    assert (
        result.outcome("warm-affinity").cold_fallbacks
        <= result.outcome("round-robin").cold_fallbacks
    )


@pytest.mark.benchmark(group="extensions")
def test_restore_prefetch_tradeoff(once):
    """FaaSnap trade-off behind the paper's flat 1300 us restore."""
    from repro.experiments.ablations_restore import ablate_restore_prefetch

    points = once(ablate_restore_prefetch)
    emit(
        "Extension — restore prefetch fraction vs readiness",
        render_table(
            ["prefetch", "restore (us)", "1st-req penalty (us)",
             "effective (us)"],
            [
                [
                    f"{100 * p.prefetch_fraction:.0f}%",
                    f"{p.restore_ns / 1000:.0f}",
                    f"{p.first_request_penalty_ns / 1000:.0f}",
                    f"{p.effective_ready_ns / 1000:.0f}",
                ]
                for p in points
            ],
        ),
    )
    assert points[-1].first_request_penalty_ns == 0


@pytest.mark.benchmark(group="extensions")
def test_transport_sensitivity(once):
    """§2 premise: how fast must the trigger path be for resume time to
    matter?  HORSE's benefit fades from ~46 pp (local) to ~0 (TCP)."""
    from repro.experiments.transport_sensitivity import (
        run_transport_sensitivity,
    )

    result = once(run_transport_sensitivity, invocations=100, seed=0)
    rows = []
    for transport in ("local", "nano-fabric", "kernel-bypass", "tcp"):
        warm = result.cell(transport, StartType.WARM)
        horse = result.cell(transport, StartType.HORSE)
        rows.append(
            [
                transport,
                f"{warm.mean_overhead_pct:.1f}%",
                f"{horse.mean_overhead_pct:.1f}%",
                f"{result.horse_benefit_pct(transport):.1f} pp",
            ]
        )
    emit(
        "Extension — trigger-transport sensitivity (Category 3)",
        render_table(
            ["transport", "warm overhead", "horse overhead", "HORSE benefit"],
            rows,
        ),
    )
    assert result.horse_benefit_pct("local") > 30.0
    assert result.horse_benefit_pct("tcp") < 1.0


@pytest.mark.benchmark(group="extensions")
def test_skip_vs_coalesce_dvfs(once):
    points = once(ablate_skip_vs_coalesce)
    emit(
        "Extension — load update: coalesce (HORSE) vs skip (naive)",
        render_table(
            ["vCPUs", "true load", "coalesce freq err", "skip freq err",
             "skip power deficit"],
            [
                [
                    str(p.vcpus),
                    f"{p.true_load:.1f}",
                    f"{100 * p.coalesced_freq_error:.2f}%",
                    f"{100 * p.skipped_freq_error:.2f}%",
                    f"{p.skipped_power_deficit_watts:.2f} W",
                ]
                for p in points
            ],
        ),
    )
    assert all(p.coalesced_freq_error == 0.0 for p in points)
