"""Bench OBS — observability must be free when switched off.

The instrumentation's contract is that an untraced run (the default
``NULL_OBS`` bundle) pays exactly one ``obs.enabled`` attribute check
per instrumented operation.  This benchmark verifies the guard budget
on a Figure-1-style run: the measured per-check cost, multiplied by the
number of guard evaluations the run performs, must stay under 0.5 % of
the run's untraced wall time (the CI ``overhead`` job's NULL-path
budget; measured share is ~0.02 %).

The number of guard evaluations is counted by running the same
workload once with an *enabled* bundle and summing every recorded
event — each recorded span/instant/metric update corresponds to one
taken guard in the untraced run, so the sum upper-bounds the guards
that can do work.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import emit
from repro.experiments.table1 import run_table1
from repro.obs import MetricRegistry, Observability, Tracer, activate
from repro.obs.context import NULL_OBS


def _measure_guard_cost_ns(iterations: int = 2_000_000) -> float:
    """Per-iteration cost of the NULL fast-path guard, in ns."""
    obs = NULL_OBS
    taken = 0
    start = time.perf_counter()
    for _ in range(iterations):
        if obs.enabled:
            taken += 1  # pragma: no cover - NULL bundle is disabled
    elapsed = time.perf_counter() - start

    # Subtract the bare-loop baseline so only the guard itself counts.
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    baseline = time.perf_counter() - start
    assert taken == 0
    return max(0.0, (elapsed - baseline) / iterations * 1e9)


def _count_obs_events() -> int:
    """Observability events on one fast Figure-1-style run."""
    obs = Observability(Tracer(), MetricRegistry())
    with activate(obs):
        run_table1(repetitions=3, seed=0)
    counters = sum(c.value for c in obs.metrics.counters().values())
    histograms = sum(h.count for h in obs.metrics.histograms().values())
    return len(obs.tracer.spans) + counters + histograms


@pytest.mark.benchmark(group="obs-overhead")
def test_null_obs_guard_overhead_under_half_pct(once):
    once(run_table1, repetitions=3, seed=0)
    # pytest-benchmark keeps its own stats; re-time directly so the
    # budget math below uses a plain float.
    start = time.perf_counter()
    run_table1(repetitions=3, seed=0)
    null_seconds = time.perf_counter() - start

    guard_ns = _measure_guard_cost_ns()
    events = _count_obs_events()
    guard_total_s = events * guard_ns / 1e9
    share = guard_total_s / null_seconds
    emit(
        "Observability NULL-path overhead",
        f"untraced run      {null_seconds * 1e3:8.1f} ms\n"
        f"guard cost        {guard_ns:8.2f} ns/check\n"
        f"guard sites hit   {events:8d}\n"
        f"guard budget      {guard_total_s * 1e3:8.3f} ms "
        f"({share * 100:.3f} % of run)",
    )
    assert share < 0.005, (
        f"NULL-tracer guard budget is {share * 100:.3f} % of the untraced "
        f"run (limit 0.5 %)"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_enabled_obs_overhead_reported(once):
    """Informative: full tracing cost on the same run (no assertion —
    enabled tracing is opt-in and allowed to cost)."""
    start = time.perf_counter()
    run_table1(repetitions=3, seed=0)
    null_seconds = time.perf_counter() - start

    obs = Observability(Tracer(), MetricRegistry())
    start = time.perf_counter()
    with activate(obs):
        once(run_table1, repetitions=3, seed=0)
    enabled_seconds = time.perf_counter() - start

    emit(
        "Observability enabled-path cost",
        f"untraced {null_seconds * 1e3:.1f} ms, "
        f"traced {enabled_seconds * 1e3:.1f} ms "
        f"({len(obs.tracer.spans)} spans)",
    )
