"""Bench CO — regenerates the §5.4 colocation study.

Azure-trace-driven thumbnail invocations next to 10 uLL resumes/s;
reports mean / p95 / p99 latency for vanilla vs HORSE across the uLL
vCPU sweep.  Paper anchors: mean/p95 unchanged; p99 overhead up to
~30 us (0.00107 %) at 36 vCPUs.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import render_colocation
from repro.experiments.colocation import ULL_VCPU_SWEEP, run_colocation


@pytest.mark.benchmark(group="colocation")
def test_colocation_sweep(once):
    result = once(run_colocation, vcpu_counts=ULL_VCPU_SWEEP, seed=0)
    emit("§5.4 colocation — thumbnail latency vanilla vs HORSE",
         render_colocation(result))
    worst = max(result.vcpu_counts())
    assert 0.0 <= result.p99_overhead_us(worst) <= 60.0
    assert result.p99_overhead_pct(worst) <= 0.005
    vanil_mean = result.run("vanilla", worst).summary().mean_us
    assert abs(result.mean_delta_us(worst)) / vanil_mean < 1e-5
