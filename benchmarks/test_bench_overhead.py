"""Bench OV — regenerates the §5.2 overhead study.

10 busy background sandboxes + 10 uLL sandboxes paused 5 s then
resumed, sweeping uLL vCPUs; reports HORSE's memory and CPU overhead
against vanilla.  Paper anchors: ~528 kB memory, pause CPU <= 0.3 %,
resume CPU <= 2.7 %.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.experiments.overhead import run_overhead


@pytest.mark.benchmark(group="overhead")
def test_overhead_sweep(once):
    result = once(run_overhead, vcpu_counts=(1, 8, 16, 36), seed=0)
    rows = []
    for vcpus in result.vcpu_counts():
        rows.append(
            [
                str(vcpus),
                f"{result.memory_delta_bytes(vcpus) / 1000:.1f}",
                f"{result.run('horse', vcpus).memory_overhead_pct:.4f}",
                f"{result.pause_cpu_delta_pct(vcpus):.6f}",
                f"{result.resume_cpu_delta_pct(vcpus):.6f}",
            ]
        )
    emit(
        "§5.2 overhead (paper: ~528 kB, pause <= 0.3 %, resume <= 2.7 %)",
        render_table(
            ["uLL vCPUs", "mem delta (kB)", "mem %", "pause CPU %", "resume CPU %"],
            rows,
        ),
    )
    assert result.memory_delta_bytes(36) == pytest.approx(528_000, rel=0.05)
    assert result.pause_cpu_delta_pct(36) <= 0.3
    assert result.resume_cpu_delta_pct(36) <= 2.7
    assert result.run("horse", 36).memory_overhead_pct < 1.0
