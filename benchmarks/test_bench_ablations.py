"""Ablation benches (DESIGN.md §5): design-choice studies beyond the
paper's headline artifacts.

* ull_runqueue count: balancing, refresh cost, resume flatness;
* precompute maintenance vs queue churn;
* scheduler/platform sensitivity (Firecracker/CFS vs Xen/credit2);
* per-step attribution of the HORSE saving.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table
from repro.experiments.ablations import (
    ablate_mechanism_split,
    ablate_platform,
    ablate_precompute_churn,
    ablate_ull_runqueue_count,
)
from repro.hypervisor.pause_resume import STEP_MERGE


@pytest.mark.benchmark(group="ablations")
def test_ull_runqueue_count(once):
    points = once(ablate_ull_runqueue_count, queue_counts=(1, 2, 4, 8))
    emit(
        "Ablation — reserved ull_runqueue count",
        render_table(
            ["queues", "max imbalance", "refresh entries/resume", "resume ns"],
            [
                [
                    str(p.reserved_queues),
                    str(p.max_assignment_imbalance),
                    f"{p.refresh_entries_per_resume:.1f}",
                    f"{p.mean_resume_ns:.0f}",
                ]
                for p in points
            ],
        ),
    )
    assert all(p.max_assignment_imbalance <= 1 for p in points)


@pytest.mark.benchmark(group="ablations")
def test_precompute_churn(once):
    points = once(ablate_precompute_churn, churn_levels=(0, 10, 50, 200))
    emit(
        "Ablation — P2SM precompute refresh vs ull_runqueue churn",
        render_table(
            ["churn events", "refresh ops", "entries rebuilt", "entries/event"],
            [
                [
                    str(p.churn_events),
                    str(p.refresh_operations),
                    str(p.refresh_entries),
                    f"{p.entries_per_event:.1f}",
                ]
                for p in points
            ],
        ),
    )
    entries = [p.refresh_entries for p in points]
    assert entries == sorted(entries)


@pytest.mark.benchmark(group="ablations")
def test_platform_sensitivity(once):
    comparisons = once(ablate_platform, vcpus=36, repetitions=5)
    emit(
        "Ablation — scheduler/platform sensitivity (36 vCPUs)",
        render_table(
            ["platform", "vanil ns", "horse ns", "speedup"],
            [
                [
                    c.platform,
                    f"{c.vanil_ns:.0f}",
                    f"{c.horse_ns:.0f}",
                    f"{c.speedup:.2f}x",
                ]
                for c in comparisons
            ],
        ),
    )
    assert all(c.speedup > 5.0 for c in comparisons)


@pytest.mark.benchmark(group="ablations")
def test_dispatch_interference(once):
    """Mechanistic §5.4 validation: merge threads preempt through the
    real dispatcher; mean intact, tail shifted."""
    from repro.experiments.ablations_dispatch import run_dispatch_interference

    result = once(run_dispatch_interference, seed=0)
    emit(
        "Ablation — dispatcher-driven merge-thread preemption",
        render_table(
            ["preemptions", "delay each (us)", "mean delta (us)", "p99 delta (us)"],
            [[
                str(result.preemptions),
                f"{result.delay_per_preemption_us:.2f}",
                f"{result.mean_delta_us:.2f}",
                f"{result.p99_delta_us:.2f}",
            ]],
        ),
    )
    assert result.p99_delta_us >= result.mean_delta_us


@pytest.mark.benchmark(group="ablations")
def test_mechanism_split(once):
    split = once(ablate_mechanism_split, vcpus=36)
    emit(
        "Ablation — per-step attribution of the HORSE saving (36 vCPUs)",
        render_table(
            ["step", "vanil ns", "horse ns", "saving ns", "share"],
            [
                [
                    step,
                    f"{vanil:.0f}",
                    f"{horse:.0f}",
                    f"{split.saving_ns(step):.0f}",
                    f"{100 * split.share_of_saving(step):.1f}%",
                ]
                for step, (vanil, horse) in split.steps.items()
            ],
        ),
    )
    assert split.share_of_saving(STEP_MERGE) > 0.5
