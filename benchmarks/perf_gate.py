#!/usr/bin/env python
"""Standalone entry point for the sim-kernel performance gate.

Equivalent to ``repro bench``; kept under benchmarks/ so CI and local
runs can invoke it without installing the package::

    python benchmarks/perf_gate.py --quick --check --require-speedup 1.5

See :mod:`repro.perf.gate` for the bench definitions, the
``BENCH_sim_kernel.json`` row schema, and the normalization the
regression check applies.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.perf.gate import main

if __name__ == "__main__":
    raise SystemExit(main())
