"""Bench F1 — regenerates Figure 1 (paper §2).

Initialization share of the full trigger pipeline per scenario and uLL
category.  Paper anchors: cold/restore >= 98.7 %, warm 6.07 / 42.3 /
61.1 % for categories 1/2/3.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import figure1_series, render_figure1
from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="figure1")
def test_figure1_series(once):
    result = once(run_table1, repetitions=10, seed=0)
    emit("Figure 1 — init share per scenario x category", render_figure1(result))
    series = figure1_series(result)
    # cold bar is always the tallest; warm always the smallest.
    for index in range(3):
        assert series["cold"][index] >= series["restore"][index]
        assert series["restore"][index] >= series["warm"][index]
