"""Bench T1 — regenerates Table 1 (paper §2).

Prints the same three rows the paper reports (initialization time,
average execution time, initialization percentage) for cold / restore /
warm across the three uLL categories.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import render_table1
from repro.experiments.table1 import run_table1
from repro.faas.invocation import StartType


@pytest.mark.benchmark(group="table1")
def test_table1_grid(once):
    result = once(run_table1, repetitions=10, seed=0)
    emit("Table 1 (paper: cold ~1.5e6 us, restore ~1300 us, warm ~1.1 us)",
         render_table1(result))
    # Guard the headline shape while benchmarking.
    assert result.cell("firewall", StartType.WARM).mean_init_pct < 10.0
    assert result.cell("array-filter", StartType.WARM).mean_init_pct > 55.0


@pytest.mark.benchmark(group="table1")
def test_warm_start_operation(benchmark):
    """Micro: one warm (vanilla) resume, the operation behind the
    Table 1 'warm' column."""
    from repro.experiments.runner import fresh_platform, paused_sandbox

    def setup():
        virt = fresh_platform()
        return (virt, paused_sandbox(virt, vcpus=1)), {}

    def warm_resume(virt, sandbox):
        return virt.vanilla.resume(sandbox, 0)

    benchmark.pedantic(warm_resume, setup=setup, rounds=30)
