"""Bench F3 — regenerates Figure 3 (paper §5.1).

Resume time under vanil / ppsm / coal / horse across the vCPU sweep.
Paper bands: coal 16-20 %, ppsm 55-69 %, HORSE flat ~150 ns with >=
7.16x max speedup.  Also micro-benchmarks the two core operations in
real wall time: the O(1) P2SM splice vs the O(n) reference merge.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import render_figure3
from repro.core.hot_resume import HorseConfig, HorsePauseResume
from repro.core.linked_list import SortedLinkedList
from repro.core.p2sm import P2SMState, sorted_merge_reference
from repro.experiments.figure3 import run_figure3
from repro.experiments.runner import VCPU_SWEEP, fresh_platform
from repro.hypervisor.sandbox import Sandbox


@pytest.mark.benchmark(group="figure3")
def test_figure3_sweep(once):
    result = once(run_figure3, vcpu_counts=VCPU_SWEEP, repetitions=10)
    emit("Figure 3 — resume time per setup vs vCPUs", render_figure3(result))
    assert 0.14 <= result.min_improvement("coal")
    assert result.max_improvement("coal") <= 0.23
    assert 0.55 <= result.min_improvement("ppsm")
    assert result.max_improvement("ppsm") <= 0.69
    assert result.horse_flatness() == pytest.approx(1.0, abs=0.02)
    assert max(result.speedup("horse", v) for v in result.vcpu_counts()) >= 7.16


@pytest.mark.benchmark(group="figure3-micro")
def test_horse_resume_operation(benchmark):
    """Micro: the full HORSE fast-path resume (wall time)."""

    def setup():
        virt = fresh_platform()
        horse = HorsePauseResume(
            virt.host, virt.policy, virt.costs, config=HorseConfig.full()
        )
        sandbox = Sandbox(vcpus=36, memory_mb=512, is_ull=True)
        virt.vanilla.place_initial(sandbox, 0)
        horse.pause(sandbox, 0)
        return (horse, sandbox), {}

    def resume(horse, sandbox):
        return horse.resume(sandbox, 0)

    benchmark.pedantic(resume, setup=setup, rounds=20)


@pytest.mark.benchmark(group="figure3-micro")
@pytest.mark.parametrize("size", [100, 1000])
def test_p2sm_splice_vs_reference_merge(benchmark, size):
    """Micro: P2SM's merge phase is O(#positions) pointer writes while
    the reference sorted merge scans the target list — the wall-time gap
    should grow with the target size."""

    def setup():
        target = SortedLinkedList(key=lambda v: v)
        for value in range(0, size * 2, 2):
            target.insert_sorted(value)
        state = P2SMState([size * 2 + 1, size * 2 + 3], target)
        return (state,), {}

    benchmark.pedantic(lambda state: state.merge(), setup=setup, rounds=20)


@pytest.mark.benchmark(group="figure3-micro")
@pytest.mark.parametrize("queue_size", [10, 100, 1000])
def test_p2sm_precompute_scaling(benchmark, queue_size):
    """Micro: the pause-time precompute (arrayB + posA rebuild) is the
    cost P2SM shifts off the resume path; its wall time grows with the
    target queue size — measured here so the O(|A|+|B|) claim of
    §4.1.1 is visible in real time."""

    def setup():
        target = SortedLinkedList(key=lambda v: v)
        for value in range(queue_size):
            target.insert_sorted(value)
        state = P2SMState(list(range(queue_size, queue_size + 8)), target)
        return (state,), {}

    benchmark.pedantic(lambda state: state.refresh(), setup=setup, rounds=20)


@pytest.mark.benchmark(group="figure3-micro")
@pytest.mark.parametrize("size", [100, 1000])
def test_reference_merge_baseline(benchmark, size):
    def setup():
        target = SortedLinkedList(key=lambda v: v)
        for value in range(0, size * 2, 2):
            target.insert_sorted(value)
        return (target,), {}

    benchmark.pedantic(
        lambda target: sorted_merge_reference(
            target, [size * 2 + 1, size * 2 + 3]
        ),
        setup=setup,
        rounds=20,
    )
