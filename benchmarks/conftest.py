"""Shared benchmark fixtures.

Each ``test_bench_*.py`` module regenerates one paper artifact (table
or figure): it runs the corresponding experiment driver under
pytest-benchmark and prints the same rows/series the paper reports.
Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def emit(title: str, body: str) -> None:
    """Print a rendered artifact so a benchmark run shows the paper's
    rows (visible with -s; captured otherwise)."""
    print(f"\n=== {title} ===\n{body}\n")


@pytest.fixture
def once(benchmark):
    """Run a heavy experiment driver exactly once under the benchmark
    timer (autocalibration would re-run multi-second drivers)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
