"""Bench F2 — regenerates Figure 2 (paper §3.2).

Per-step breakdown of the vanilla resume over the 1-36 vCPU sweep;
steps 4 (sorted merge) + 5 (load update) must dominate (87.5-93.1 %).
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.figures import render_figure2
from repro.experiments.figure2 import run_figure2
from repro.experiments.runner import VCPU_SWEEP, fresh_platform, paused_sandbox


@pytest.mark.benchmark(group="figure2")
def test_figure2_breakdown(once):
    result = once(run_figure2, vcpu_counts=VCPU_SWEEP, repetitions=10)
    emit("Figure 2 — vanilla resume breakdown vs vCPUs", render_figure2(result))
    assert result.hot_shares()[0] == pytest.approx(0.875, abs=0.01)
    assert result.hot_shares()[-1] >= 0.91


@pytest.mark.benchmark(group="figure2")
@pytest.mark.parametrize("vcpus", [1, 8, 36])
def test_vanilla_resume_operation(benchmark, vcpus):
    """Micro: the vanilla resume operation itself at several sizes —
    real wall time of the reproduction's data-structure work."""

    def setup():
        virt = fresh_platform()
        return (virt, paused_sandbox(virt, vcpus=vcpus)), {}

    def resume(virt, sandbox):
        return virt.vanilla.resume(sandbox, 0)

    benchmark.pedantic(resume, setup=setup, rounds=20)
