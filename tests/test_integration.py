"""End-to-end integration: multi-function platforms, determinism,
failure behavior, and cross-layer invariants."""

import pytest

from repro.faas import FaaSPlatform, FunctionSpec, StartType
from repro.faas.startup import PoolMissError
from repro.hypervisor.sandbox import SandboxState
from repro.sim.units import SECOND, seconds
from repro.workloads import (
    ArrayFilterWorkload,
    FirewallWorkload,
    MlInferenceWorkload,
    NatWorkload,
    OrderRiskWorkload,
    ThumbnailWorkload,
)


def build_multi_function_platform(seed=11):
    faas = FaaSPlatform.build("firecracker", seed=seed)
    for spec in (
        FunctionSpec("firewall", FirewallWorkload()),
        FunctionSpec("nat", NatWorkload()),
        FunctionSpec("filter", ArrayFilterWorkload()),
        FunctionSpec("inference", MlInferenceWorkload()),
        FunctionSpec("risk", OrderRiskWorkload()),
        FunctionSpec("thumbnail", ThumbnailWorkload(), vcpus=2, memory_mb=1024),
    ):
        faas.register(spec)
    return faas


class TestMultiFunctionPlatform:
    def test_mixed_ull_and_long_running_traffic(self):
        faas = build_multi_function_platform()
        for name in ("firewall", "nat", "filter", "inference", "risk"):
            faas.provision_warm(name, count=2)
        faas.provision_warm("thumbnail", count=2, use_horse=False)

        invocations = []
        for round_index in range(3):
            for name in ("firewall", "nat", "filter", "inference", "risk"):
                invocations.append(
                    faas.trigger(name, StartType.HORSE, run_logic=True)
                )
            invocations.append(faas.trigger("thumbnail", StartType.WARM,
                                            run_logic=True))
            faas.engine.run(until=faas.engine.now + seconds(5))

        assert all(inv.completed for inv in invocations)
        assert all(inv.error is None for inv in invocations)
        ull = [i for i in invocations if i.function_name != "thumbnail"]
        assert all(i.initialization_ns < 200 for i in ull)
        long_running = [i for i in invocations if i.function_name == "thumbnail"]
        assert all(i.initialization_ns > 500 for i in long_running)

    def test_host_memory_balances_after_evictions(self):
        faas = build_multi_function_platform()
        faas.provision_warm("firewall", count=4)
        used_after_provision = faas.virt.host.memory_used_mb
        assert used_after_provision == 4 * 512
        faas.engine.run(until=seconds(700))  # all keep-alives expire
        assert faas.virt.host.memory_used_mb == 0

    def test_ull_manager_has_no_leaked_assignments(self):
        faas = build_multi_function_platform()
        faas.provision_warm("firewall", count=3)
        for _ in range(6):
            faas.trigger("firewall", StartType.HORSE)
            faas.engine.run(until=faas.engine.now + seconds(1))
        # all sandboxes back in the pool, each with a live assignment
        counts = faas.ull_manager.assignment_counts()
        assert sum(counts.values()) == 3

    def test_run_queues_stay_sorted_through_churn(self):
        faas = build_multi_function_platform()
        faas.provision_warm("firewall", count=2)
        faas.provision_warm("nat", count=2)
        for _ in range(10):
            faas.trigger("firewall", StartType.HORSE)
            faas.trigger("nat", StartType.HORSE)
            faas.engine.run(until=faas.engine.now + seconds(1))
        for runqueue in faas.virt.host.runqueues.values():
            runqueue.check_invariants()


class TestDeterminism:
    def _run(self, seed):
        faas = build_multi_function_platform(seed=seed)
        faas.provision_warm("firewall", count=1)
        timeline = []
        for _ in range(5):
            invocation = faas.trigger("firewall", StartType.HORSE)
            faas.engine.run(until=faas.engine.now + seconds(1))
            timeline.append(
                (invocation.initialization_ns, invocation.execution_ns)
            )
        return timeline

    def test_same_seed_same_timeline(self):
        assert self._run(5) == self._run(5)

    def test_different_seed_different_execution_draws(self):
        a = self._run(5)
        b = self._run(6)
        assert [x[1] for x in a] != [x[1] for x in b]


class TestFailureBehavior:
    def test_pool_miss_is_loud_not_silent(self):
        faas = build_multi_function_platform()
        with pytest.raises(PoolMissError):
            faas.trigger("firewall", StartType.WARM)

    def test_memory_exhaustion_raises(self):
        faas = FaaSPlatform.build("firecracker")
        faas.register(
            FunctionSpec("big", FirewallWorkload(), memory_mb=64 * 1024)
        )
        faas.provision_warm("big", count=1)
        # Host has 128 GB: the third 64 GB sandbox must fail cleanly.
        with pytest.raises(MemoryError):
            faas.provision_warm("big", count=2)

    def test_failed_function_logic_is_recorded_not_raised(self):
        class ExplodingWorkload(FirewallWorkload):
            name = "exploding"

            def execute(self, payload):
                raise RuntimeError("function bug")

        faas = FaaSPlatform.build("firecracker")
        faas.register(FunctionSpec("exploding", ExplodingWorkload()))
        invocation = faas.trigger("exploding", StartType.COLD, run_logic=True)
        faas.engine.run(until=seconds(3))
        assert invocation.completed
        assert invocation.error is not None
        assert "function bug" in invocation.error

    def test_no_return_to_pool_leaves_sandbox_running(self):
        faas = build_multi_function_platform()
        faas.provision_warm("firewall", count=1)
        invocation = faas.trigger(
            "firewall", StartType.HORSE, return_to_pool=False
        )
        faas.engine.run(until=seconds(1))
        assert invocation.completed
        assert faas.pool.size("firewall") == 0


class TestXenPlatformEndToEnd:
    def test_full_cycle_on_xen(self):
        faas = FaaSPlatform.build("xen", seed=1)
        faas.register(FunctionSpec("firewall", FirewallWorkload()))
        faas.provision_warm("firewall", count=1)
        horse_inv = faas.trigger("firewall", StartType.HORSE)
        faas.engine.run(until=seconds(1))
        assert horse_inv.completed
        assert horse_inv.initialization_ns < 200

    def test_xen_warm_slower_than_firecracker_warm(self):
        results = {}
        for platform in ("firecracker", "xen"):
            faas = FaaSPlatform.build(platform, seed=1)
            faas.register(FunctionSpec("firewall", FirewallWorkload()))
            faas.provision_warm("firewall", count=1, use_horse=False)
            invocation = faas.trigger("firewall", StartType.WARM)
            faas.engine.run(until=seconds(1))
            results[platform] = invocation.initialization_ns
        assert results["xen"] > results["firecracker"]
