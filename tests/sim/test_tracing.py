"""TraceLog and platform instrumentation."""

import pytest

from repro.sim.tracing import NULL_TRACE, TraceEvent, TraceLog


class TestTraceLog:
    def test_record_and_len(self):
        log = TraceLog()
        log.record(10, "pool", "acquire", function="fw")
        assert len(log) == 1
        event = log.last()
        assert event.time_ns == 10
        assert event.details == {"function": "fw"}

    def test_filter_by_subsystem_and_operation(self):
        log = TraceLog()
        log.record(1, "pool", "acquire")
        log.record(2, "gateway", "trigger")
        log.record(3, "pool", "release")
        assert [e.operation for e in log.events(subsystem="pool")] == [
            "acquire", "release",
        ]
        assert len(log.events(operation="trigger")) == 1

    def test_filter_since(self):
        log = TraceLog()
        log.record(1, "a", "x")
        log.record(10, "a", "y")
        assert [e.operation for e in log.events(since_ns=5)] == ["y"]

    def test_operations_sequence(self):
        log = TraceLog()
        for operation in ("a", "b", "a"):
            log.record(0, "s", operation)
        assert log.operations("s") == ["a", "b", "a"]

    def test_capacity_drops_excess(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(i, "s", "op")
        assert len(log) == 2
        assert log.dropped == 3

    def test_capacity_is_ring_keeping_newest(self):
        # Eviction is oldest-first: the survivors are the most recent
        # events, and len + dropped equals the total ever recorded.
        log = TraceLog(capacity=3)
        for i in range(10):
            log.record(i, "s", f"op{i}")
        assert [e.time_ns for e in log] == [7, 8, 9]
        assert log.operations("s") == ["op7", "op8", "op9"]
        assert len(log) + log.dropped == 10
        assert log.last() is not None and log.last().time_ns == 9
        assert "op9" in log.render(limit=2)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(capacity=0)

    def test_clear(self):
        log = TraceLog()
        log.record(0, "s", "op")
        log.clear()
        assert len(log) == 0
        assert log.last() is None

    def test_render_tail(self):
        log = TraceLog()
        for i in range(60):
            log.record(i, "s", f"op{i}")
        text = log.render(limit=10)
        assert "op59" in text and "earlier events" in text

    def test_event_str(self):
        event = TraceEvent(5, "pool", "acquire", details={"f": "fw"})
        assert "pool.acquire" in str(event)
        assert "f=fw" in str(event)


class TestNullTrace:
    def test_swallows_everything(self):
        NULL_TRACE.record(0, "s", "op", a=1)
        assert len(NULL_TRACE) == 0
        assert not NULL_TRACE.enabled


class TestPlatformInstrumentation:
    def test_gateway_and_pool_emit_events(self):
        from repro.faas import FaaSPlatform, FunctionSpec, StartType
        from repro.hypervisor.platform import firecracker_platform
        from repro.sim.engine import Engine
        from repro.sim.rng import RngRegistry
        from repro.sim.units import seconds
        from repro.workloads import FirewallWorkload

        log = TraceLog()
        faas = FaaSPlatform(
            engine=Engine(),
            virt=firecracker_platform(),
            rngs=RngRegistry(0),
            trace=log,
        )
        faas.register(FunctionSpec("fw", FirewallWorkload()))
        faas.provision_warm("fw", count=1)
        faas.trigger("fw", StartType.HORSE)
        faas.engine.run(until=seconds(1))
        assert log.operations("gateway") == ["trigger", "complete"]
        # provision release, acquire on trigger, release on completion
        assert log.operations("pool") == ["release", "acquire", "release"]

    def test_default_platform_traces_nothing(self):
        from repro.faas import FaaSPlatform

        faas = FaaSPlatform.build("firecracker")
        assert not faas.trace.enabled
