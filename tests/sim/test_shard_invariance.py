"""Shard invariance: the worker count must never change the simulation.

The sharded execution layer's hard contract (DESIGN.md §12) is that
``shards`` is purely an execution knob: same seed ⇒ byte-identical
merged trace, rendered output, and invariant verdicts for ANY worker
count.  This suite enforces the contract at three levels:

* hypothesis properties over random ``(seed, failure-rate, host-count,
  group-count, shard-count)`` tuples, comparing every sharded run
  against the single-shard reference byte for byte;
* one real-process test (fork/spawn pool, shards 1/2/4/8) proving the
  process boundary itself leaks nothing — id counters, pool ordering,
  pickling round-trips;
* pinned unit tests for the deterministic primitives the contract
  rests on: the cell→worker partition, the merge tie-breaks, and the
  conservative-lookahead window driver.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.sharded_chaos import (
    ShardedChaosConfig,
    run_sharded_chaos,
    trace_jsonl,
    render_sharded_chaos,
)
from repro.sim.engine import Engine
from repro.sim.event import EventPriority
from repro.sim.sharding import (
    assign_cells,
    merge_records,
    merged_pending,
    windowed_run,
)

import pytest


def _snapshot(config, shards, parallel=None):
    """Everything the invariance contract covers, as comparable bytes."""
    result = run_sharded_chaos(
        config, shards=shards, modes=("breaker",), parallel=parallel
    )
    verdicts = tuple(
        (mode, outcome.ok, tuple(outcome.violations))
        for mode, outcome in result.outcomes.items()
    )
    return (
        trace_jsonl(result),
        render_sharded_chaos(result),
        result.ok,
        verdicts,
    )


class TestShardInvarianceProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        failure_rate=st.sampled_from([0.0, 0.05, 0.2, 0.5]),
        hosts=st.integers(min_value=2, max_value=3),
        groups=st.integers(min_value=1, max_value=4),
        shards=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_shard_count_matches_single_shard(
        self, seed, failure_rate, hosts, groups, shards
    ):
        config = ShardedChaosConfig(
            groups=groups,
            hosts=hosts,
            failure_rate=failure_rate,
            requests=40,
            drain_s=5.0,
            seed=seed,
        )
        # parallel=False exercises the identical partition, window
        # drivers, and merge — only the OS processes are skipped, which
        # keeps hypothesis's example budget affordable.  The real
        # process boundary is covered below and by the CI diff job.
        reference = _snapshot(config, shards=1)
        sharded = _snapshot(config, shards=shards, parallel=False)
        assert sharded == reference

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        shards=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=8, deadline=None)
    def test_verdicts_and_trace_stable_under_reshard(self, seed, shards):
        """Resharding an already-sharded layout is also invariant."""
        config = ShardedChaosConfig(
            groups=3, hosts=2, requests=30, drain_s=5.0, seed=seed
        )
        a = _snapshot(config, shards=shards, parallel=False)
        b = _snapshot(config, shards=shards + 1, parallel=False)
        assert a == b


class TestShardInvarianceRealProcesses:
    def test_worker_processes_match_inline_run(self):
        """Fork/spawn pool at 2/4/8 workers == the inline single shard.

        This is the one place the actual process boundary is crossed in
        the tier-1 suite: pickling of configs/outcomes, pool result
        ordering, and process-global id counters all sit on this path.
        """
        config = ShardedChaosConfig(
            groups=4, hosts=2, requests=80, drain_s=10.0, seed=11
        )
        reference = _snapshot(config, shards=1)
        for shards in (2, 4, 8):
            assert _snapshot(config, shards=shards) == reference


class TestAssignCells:
    @given(
        cells=st.integers(min_value=0, max_value=64),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60)
    def test_partition_is_exact_and_balanced(self, cells, shards):
        assignment = assign_cells(cells, shards)
        assert len(assignment) == shards
        flat = [cell for batch in assignment for cell in batch]
        assert sorted(flat) == list(range(cells))  # exact cover, no dups
        sizes = [len(batch) for batch in assignment]
        assert max(sizes) - min(sizes) <= 1  # balanced to within one

    def test_round_robin_layout_is_pinned(self):
        assert assign_cells(7, 3) == ((0, 3, 6), (1, 4), (2, 5))

    def test_more_shards_than_cells_yields_empty_batches(self):
        assert assign_cells(2, 4) == ((0,), (1,), (), ())

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError, match="cell count"):
            assign_cells(-1, 2)
        with pytest.raises(ValueError, match="shard count"):
            assign_cells(4, 0)


class TestMergeRecords:
    def test_equal_timestamps_break_by_shard_then_stream_order(self):
        shard0 = [{"t": 5, "shard": 0, "n": "a"}, {"t": 5, "shard": 0, "n": "b"}]
        shard1 = [{"t": 5, "shard": 1, "n": "c"}, {"t": 2, "shard": 1, "n": "d"}]
        merged = merge_records([shard0, shard1])
        assert [record["n"] for record in merged] == ["d", "a", "b", "c"]

    def test_single_stream_order_is_preserved_verbatim(self):
        stream = [{"t": 3, "shard": 0}, {"t": 1, "shard": 0}, {"t": 1, "shard": 0}]
        # Within one shard the stream's own order is preserved only for
        # equal timestamps; the merge still sorts by time first.
        merged = merge_records([stream])
        assert [record["t"] for record in merged] == [1, 1, 3]
        assert merged[0] is stream[1] and merged[1] is stream[2]

    @given(
        streams=st.lists(
            st.lists(st.integers(min_value=0, max_value=20), max_size=10),
            max_size=4,
        )
    )
    @settings(max_examples=50)
    def test_merge_is_a_stable_total_order(self, streams):
        per_shard = [
            [{"t": t, "shard": shard} for t in sorted(times)]
            for shard, times in enumerate(streams)
        ]
        merged = merge_records(per_shard)
        keyed = [(record["t"], record["shard"]) for record in merged]
        assert keyed == sorted(keyed)
        assert len(merged) == sum(len(stream) for stream in per_shard)


class TestMergedPending:
    def test_cross_shard_tie_break_is_shard_id_then_sequence(self):
        """At equal (time, priority) the lower shard id drains first.

        Pinning this is satellite work for the merged multi-shard
        ``pending_events`` view: per-engine sequence counters are
        independent, so shard id is the only meaningful cross-shard
        tie-break.
        """
        engines = [Engine(), Engine()]
        # Schedule in an order that would betray wall-clock or global
        # counters: shard 1 first, then shard 0, same instants.
        engines[1].schedule_at(10, lambda: None, label="s1-a")
        engines[0].schedule_at(10, lambda: None, label="s0-a")
        engines[0].schedule_at(10, lambda: None, label="s0-b")
        engines[1].schedule_at(5, lambda: None, label="s1-b")
        snapshot = merged_pending(engines)
        assert [(shard, event.label) for shard, event in snapshot] == [
            (1, "s1-b"),
            (0, "s0-a"),
            (0, "s0-b"),
            (1, "s1-a"),
        ]

    def test_priority_orders_before_shard(self):
        engines = [Engine(), Engine()]
        engines[0].schedule_at(
            7, lambda: None, priority=EventPriority.NORMAL, label="normal"
        )
        engines[1].schedule_at(
            7, lambda: None, priority=EventPriority.FAILURE, label="failure"
        )
        snapshot = merged_pending(engines)
        assert [event.label for _shard, event in snapshot] == [
            "failure",
            "normal",
        ]

    def test_cancelled_events_are_excluded(self):
        engine = Engine()
        keep = engine.schedule_at(3, lambda: None, label="keep")
        drop = engine.schedule_at(3, lambda: None, label="drop")
        drop.cancel()
        snapshot = merged_pending([engine])
        assert [event.label for _shard, event in snapshot] == ["keep"]
        assert keep is snapshot[0][1]


class TestWindowedRun:
    def _drive(self, deliveries, lookahead, drain_until):
        engine = Engine()
        fired = []
        wrapped = [
            (when, lambda when=when, tag=tag: fired.append((when, tag)))
            for when, tag in deliveries
        ]
        windows = windowed_run(engine, wrapped, lookahead, drain_until)
        return engine, fired, windows

    @given(
        times=st.lists(
            st.integers(min_value=1, max_value=100_000), min_size=1, max_size=30
        ),
        lookahead=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=60)
    def test_windowed_delivery_equals_upfront_schedule(self, times, lookahead):
        """The lookahead windows are invisible: same events, same order
        as scheduling the whole stream upfront and running once."""
        deliveries = [(when, index) for index, when in enumerate(sorted(times))]
        drain = max(times) + 1
        _engine, fired, _windows = self._drive(deliveries, lookahead, drain)

        reference_engine = Engine()
        reference = []
        for when, tag in deliveries:
            reference_engine.schedule_at(
                when,
                lambda when=when, tag=tag: reference.append((when, tag)),
                transient=True,
            )
        reference_engine.run()
        assert fired == reference

    def test_fast_forward_skips_empty_windows(self):
        # Two deliveries a simulated minute apart with a 100 µs
        # lookahead: crawling would take ~600k windows, the null-message
        # fast-forward takes two (plus the final drain).
        deliveries = [(1_000, "a"), (60_000_000_000, "b")]
        _engine, fired, windows = self._drive(
            deliveries, lookahead=100_000, drain_until=60_000_000_001
        )
        assert [tag for _when, tag in fired] == ["a", "b"]
        assert windows <= 4

    def test_engine_never_runs_past_drain_horizon(self):
        engine, _fired, _windows = self._drive(
            [(50, "only")], lookahead=10, drain_until=200
        )
        assert engine.now == 200

    def test_lookahead_must_be_positive(self):
        with pytest.raises(ValueError, match="lookahead"):
            windowed_run(Engine(), [], lookahead_ns=0, drain_until=10)

    def test_empty_stream_still_drains(self):
        engine = Engine()
        windows = windowed_run(engine, [], lookahead_ns=100, drain_until=500)
        assert windows == 1
        assert engine.now == 500
